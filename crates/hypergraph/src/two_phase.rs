//! 2PS-HL: the two-phase streaming algorithm generalised to hyperedges.
//!
//! Phase structure identical to 2PS-L (see crate docs). The key property is
//! preserved: the scoring candidate set of a hyperedge is the set of
//! partitions its members' clusters map to — at most `arity` candidates,
//! independent of `k` — so the run-time stays `O(Σ arity)` ≈ linear in the
//! stream size.
//!
//! Scoring of candidate partition `p` for hyperedge `h` generalises the
//! paper's `s(u, v, p)`:
//!
//! ```text
//! s(h, p) = Σ_{v ∈ h} [v replicated on p] · (1 + (1 − d_v / Σ_u d_u))
//!         + Σ_{v ∈ h, c(v)→p} vol(c(v)) / Σ_u vol(c(u))
//! ```
//!
//! i.e. replicas of low-degree members pull hardest (the HDRF insight) and
//! the partition hosting the largest share of member-cluster volume gets the
//! volume bonus (2PS-L's novelty).

use std::io;

use tps_clustering::model::{Clustering, NO_CLUSTER};
use tps_core::balance::PartitionLoads;
use tps_core::two_phase::mapping::ClusterPlacement;
use tps_graph::hash::seeded_hash_to_partition;
use tps_metrics::bitmatrix::ReplicationMatrix;

use crate::model::{hyper_degrees, Hyperedge, HyperedgeStream};
use crate::HyperPartitioner;

/// Configuration of 2PS-HL.
#[derive(Clone, Copy, Debug)]
pub struct TwoPhaseHyperConfig {
    /// Clustering passes (re-streaming), as in 2PS-L.
    pub clustering_passes: u32,
    /// Volume cap factor over the fair share `total_pins / k`.
    pub volume_cap_factor: f64,
    /// Seed of the hash fallback.
    pub hash_seed: u64,
}

impl Default for TwoPhaseHyperConfig {
    fn default() -> Self {
        TwoPhaseHyperConfig {
            clustering_passes: 1,
            volume_cap_factor: 0.5,
            hash_seed: 0x2B5C_0DE0_4B1D_0001,
        }
    }
}

/// The 2PS-HL partitioner.
#[derive(Clone, Debug, Default)]
pub struct TwoPhaseHyperPartitioner {
    config: TwoPhaseHyperConfig,
}

impl TwoPhaseHyperPartitioner {
    /// Create with `config`.
    pub fn new(config: TwoPhaseHyperConfig) -> Self {
        assert!(config.clustering_passes >= 1);
        assert!(config.volume_cap_factor > 0.0);
        TwoPhaseHyperPartitioner { config }
    }
}

/// One clustering pass: within each hyperedge, members migrate toward the
/// member cluster with the largest volume, under the cap — the multi-way
/// generalisation of Algorithm 1.
fn clustering_pass(
    stream: &mut dyn HyperedgeStream,
    degrees: &[u32],
    max_vol: u64,
    clustering: &mut Clustering,
) -> io::Result<()> {
    stream.reset()?;
    while let Some(h) = stream.next_hyperedge()? {
        // Assign fresh clusters to new members.
        for &v in h.pins() {
            if clustering.raw_cluster_of(v) == NO_CLUSTER {
                clustering.create_cluster(v, degrees[v as usize] as u64);
            }
        }
        if h.arity() < 2 {
            continue;
        }
        // Heaviest member cluster is the migration target (ties: first pin).
        let target = h
            .pins()
            .iter()
            .map(|&v| clustering.raw_cluster_of(v))
            .max_by_key(|&c| clustering.volume(c))
            .expect("non-empty hyperedge");
        if clustering.volume(target) > max_vol {
            continue;
        }
        for &v in h.pins() {
            let cv = clustering.raw_cluster_of(v);
            if cv == target {
                continue;
            }
            if clustering.volume(cv) > max_vol {
                continue;
            }
            let dv = degrees[v as usize] as u64;
            if clustering.volume(target) + dv <= max_vol {
                clustering.migrate(v, dv, target);
            }
        }
    }
    Ok(())
}

impl HyperPartitioner for TwoPhaseHyperPartitioner {
    fn name(&self) -> String {
        "2PS-HL".to_string()
    }

    fn partition(
        &mut self,
        stream: &mut dyn HyperedgeStream,
        k: u32,
        alpha: f64,
        assign: &mut dyn FnMut(&Hyperedge, u32),
    ) -> io::Result<()> {
        assert!(k > 0, "k must be positive");
        // Discover sizes (streams in this crate always carry hints; fall
        // back to a discovery pass otherwise).
        let (num_vertices, num_hyperedges) = match (stream.num_vertices_hint(), stream.len_hint()) {
            (Some(v), Some(h)) => (v, h),
            _ => {
                let mut v = 0u64;
                let mut n = 0u64;
                stream.reset()?;
                while let Some(h) = stream.next_hyperedge()? {
                    n += 1;
                    for &pin in h.pins() {
                        v = v.max(pin as u64 + 1);
                    }
                }
                (v, n)
            }
        };
        if num_hyperedges == 0 {
            return Ok(());
        }

        // Phase 0: degrees.
        let degrees = hyper_degrees(stream, num_vertices)?;
        let total_pins: u64 = degrees.iter().map(|&d| d as u64).sum();

        // Phase 1: clustering.
        let cap =
            ((total_pins as f64 * self.config.volume_cap_factor / k as f64).ceil() as u64).max(1);
        let mut clustering = Clustering::empty(num_vertices);
        for _ in 0..self.config.clustering_passes {
            clustering_pass(stream, &degrees, cap, &mut clustering)?;
        }

        // Phase 2a: map clusters to partitions.
        let placement = ClusterPlacement::sorted_list_schedule(&clustering, k);

        let mut v2p = ReplicationMatrix::new(num_vertices, k);
        let mut loads = PartitionLoads::new(k, num_hyperedges, alpha);
        let mut candidates: Vec<u32> = Vec::with_capacity(8);

        // Pre-partition condition: all member clusters on one partition.
        let common_partition = |h: &Hyperedge, clustering: &Clustering| -> Option<u32> {
            let mut common: Option<u32> = None;
            for &v in h.pins() {
                let p = placement.partition_of(clustering.raw_cluster_of(v));
                match common {
                    None => common = Some(p),
                    Some(c) if c == p => {}
                    _ => return None,
                }
            }
            common
        };

        // Phase 2b: pre-partitioning pass.
        let commit = |h: &Hyperedge,
                      p: u32,
                      v2p: &mut ReplicationMatrix,
                      loads: &mut PartitionLoads,
                      assign: &mut dyn FnMut(&Hyperedge, u32)| {
            for &v in h.pins() {
                v2p.set(v, p);
            }
            loads.add(p);
            assign(h, p);
        };
        let fallback = |h: &Hyperedge, loads: &PartitionLoads, seed: u64| -> u32 {
            // Hash the highest-degree pin (the DBH-style fallback).
            let hv = *h
                .pins()
                .iter()
                .max_by_key(|&&v| degrees[v as usize])
                .expect("non-empty");
            let p = seeded_hash_to_partition(hv, seed, loads.k());
            if loads.is_full(p) {
                loads.least_loaded()
            } else {
                p
            }
        };

        stream.reset()?;
        while let Some(h) = stream.next_hyperedge()? {
            if let Some(p) = common_partition(h, &clustering) {
                let p = if loads.is_full(p) {
                    fallback(h, &loads, self.config.hash_seed)
                } else {
                    p
                };
                commit(h, p, &mut v2p, &mut loads, assign);
            }
        }

        // Phase 2c: bounded scoring over the member clusters' partitions.
        stream.reset()?;
        while let Some(h) = stream.next_hyperedge()? {
            if common_partition(h, &clustering).is_some() {
                continue; // already assigned in the pre-partitioning pass
            }
            candidates.clear();
            let mut vol_sum = 0u64;
            for &v in h.pins() {
                let c = clustering.raw_cluster_of(v);
                vol_sum += clustering.volume(c);
                let p = placement.partition_of(c);
                if !candidates.contains(&p) {
                    candidates.push(p);
                }
            }
            let d_sum: u64 = h.pins().iter().map(|&v| degrees[v as usize] as u64).sum();
            let mut best: Option<(f64, u32)> = None;
            for &p in &candidates {
                if loads.is_full(p) {
                    continue;
                }
                let mut score = 0.0;
                for &v in h.pins() {
                    if v2p.get(v, p) {
                        score += 1.0 + (1.0 - degrees[v as usize] as f64 / d_sum.max(1) as f64);
                    }
                    let c = clustering.raw_cluster_of(v);
                    if placement.partition_of(c) == p {
                        score += clustering.volume(c) as f64 / vol_sum.max(1) as f64;
                    }
                }
                if best.is_none_or(|(bs, _)| score > bs) {
                    best = Some((score, p));
                }
            }
            let p = match best {
                Some((_, p)) => p,
                None => fallback(h, &loads, self.config.hash_seed),
            };
            let p = if loads.is_full(p) {
                loads.least_loaded()
            } else {
                p
            };
            commit(h, p, &mut v2p, &mut loads, assign);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{planted_hypergraph, PlantedHyperConfig};
    use crate::metrics::HyperQualityTracker;
    use crate::model::InMemoryHypergraph;

    fn run(hg: &InMemoryHypergraph, k: u32) -> tps_metrics::quality::PartitionMetrics {
        let mut p = TwoPhaseHyperPartitioner::default();
        let mut tracker = HyperQualityTracker::new(hg.num_vertices(), k);
        let mut s = hg.stream();
        let mut count = 0u64;
        p.partition(&mut s, k, 1.05, &mut |h, part| {
            tracker.record(h, part);
            count += 1;
        })
        .unwrap();
        assert_eq!(count, hg.num_hyperedges());
        tracker.finish()
    }

    #[test]
    fn assigns_every_hyperedge_within_cap() {
        let hg = planted_hypergraph(&PlantedHyperConfig::default(), 3);
        let k = 8;
        let m = run(&hg, k);
        assert_eq!(m.num_edges, hg.num_hyperedges());
        let cap = PartitionLoads::new(k, hg.num_hyperedges(), 1.05).cap();
        assert!(m.max_load <= cap, "max {} cap {cap}", m.max_load);
    }

    #[test]
    fn exploits_planted_structure() {
        let hg = planted_hypergraph(&PlantedHyperConfig::default(), 7);
        let k = 8;
        let tps = run(&hg, k);
        // Hash baseline for comparison.
        let mut hash = crate::baselines::RandomHyperPartitioner::default();
        let mut tracker = HyperQualityTracker::new(hg.num_vertices(), k);
        let mut s = hg.stream();
        crate::HyperPartitioner::partition(&mut hash, &mut s, k, 1.05, &mut |h, p| {
            tracker.record(h, p)
        })
        .unwrap();
        let rnd = tracker.finish();
        assert!(
            tps.replication_factor < rnd.replication_factor * 0.8,
            "2PS-HL {} vs random {}",
            tps.replication_factor,
            rnd.replication_factor
        );
    }

    #[test]
    fn graph_edges_as_two_pin_hyperedges() {
        // Sanity: the algorithm handles the degenerate 2-pin case (ordinary
        // graphs) and singleton hyperedges.
        let hg = InMemoryHypergraph::new(vec![
            Hyperedge::new(vec![0, 1]),
            Hyperedge::new(vec![1, 2]),
            Hyperedge::new(vec![3]),
        ]);
        let m = run(&hg, 2);
        assert_eq!(m.num_edges, 3);
    }

    #[test]
    fn deterministic() {
        let hg = planted_hypergraph(&PlantedHyperConfig::default(), 11);
        let collect = || {
            let mut p = TwoPhaseHyperPartitioner::default();
            let mut out = Vec::new();
            let mut s = hg.stream();
            p.partition(&mut s, 4, 1.05, &mut |h, part| out.push((h.clone(), part)))
                .unwrap();
            out
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn k_one() {
        let hg = planted_hypergraph(
            &PlantedHyperConfig {
                hyperedges: 50,
                ..Default::default()
            },
            2,
        );
        let m = run(&hg, 1);
        assert_eq!(m.loads, vec![50]);
    }

    #[test]
    fn empty_hypergraph_is_noop() {
        let hg = InMemoryHypergraph::new(vec![]);
        let mut p = TwoPhaseHyperPartitioner::default();
        let mut s = hg.stream();
        let mut called = false;
        p.partition(&mut s, 4, 1.05, &mut |_, _| called = true)
            .unwrap();
        assert!(!called);
    }
}
