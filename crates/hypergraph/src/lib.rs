//! 2PS-HL — the paper's declared future work (§VII): "we plan to investigate
//! the generalization of 2PS-L to hypergraphs".
//!
//! A hyperedge connects an arbitrary *set* of vertices (group relationships:
//! co-authorships, multi-way transactions, net-lists). **Hyperedge
//! partitioning** splits the hyperedge set into `k` balanced parts so that
//! vertex replication — a vertex is replicated on every partition holding
//! one of its hyperedges — is minimised; it is the direct generalisation of
//! the paper's edge-partitioning problem (an edge is a 2-pin hyperedge).
//!
//! The generalisation follows the 2PS-L recipe phase by phase:
//!
//! 1. **degree pass** — vertex degree = number of incident hyperedges
//!    (pins), so cluster volumes remain boundable;
//! 2. **streaming clustering** — for each hyperedge, the lighter member
//!    clusters migrate toward the heaviest member cluster, under the same
//!    volume cap (`cap_factor · total_pins / k`);
//! 3. **mapping** — Graham sorted-list scheduling of clusters to partitions;
//! 4. **pre-partitioning** — hyperedges whose members' clusters co-locate on
//!    one partition go there directly;
//! 5. **bounded scoring** — remaining hyperedges are scored only against the
//!    *distinct partitions of their members' clusters* (at most `|e|`, and
//!    typically ≪ k candidates), keeping the run-time independent of `k` —
//!    exactly the property that makes 2PS-L linear.
//!
//! Baselines: hashed assignment and a streaming min-max greedy in the spirit
//! of Alistarh et al. (NIPS 2015), the comparison point the paper's related
//! work names for streaming hypergraph partitioning.

pub mod baselines;
pub mod gen;
pub mod metrics;
pub mod model;
pub mod two_phase;

pub use metrics::HyperQualityTracker;
pub use model::{Hyperedge, HyperedgeStream, InMemoryHypergraph};
pub use two_phase::{TwoPhaseHyperConfig, TwoPhaseHyperPartitioner};

use std::io;

/// The hypergraph counterpart of [`tps_core::Partitioner`].
pub trait HyperPartitioner {
    /// Algorithm name for reports.
    fn name(&self) -> String;

    /// Assign every hyperedge of the stream to one of `k` partitions,
    /// calling `assign(hyperedge_index, partition)` exactly once per
    /// hyperedge.
    fn partition(
        &mut self,
        stream: &mut dyn HyperedgeStream,
        k: u32,
        alpha: f64,
        assign: &mut dyn FnMut(&Hyperedge, u32),
    ) -> io::Result<()>;
}
