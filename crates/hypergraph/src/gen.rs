//! Planted-community hypergraph generator.
//!
//! Mirrors the graph-side planted generator: vertices belong to communities,
//! most hyperedges draw all pins from one community, a `mixing` fraction
//! draws pins across communities. Arity is sampled from a small geometric
//! range (co-authorship-like).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::model::{Hyperedge, InMemoryHypergraph};

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct PlantedHyperConfig {
    /// Number of vertices.
    pub vertices: u64,
    /// Number of hyperedges.
    pub hyperedges: u64,
    /// Community size (uniform for simplicity).
    pub community_size: u64,
    /// Fraction of hyperedges drawing pins across communities.
    pub mixing: f64,
    /// Minimum pins per hyperedge.
    pub min_arity: usize,
    /// Maximum pins per hyperedge.
    pub max_arity: usize,
}

impl Default for PlantedHyperConfig {
    fn default() -> Self {
        PlantedHyperConfig {
            vertices: 2_000,
            hyperedges: 4_000,
            community_size: 40,
            mixing: 0.1,
            min_arity: 2,
            max_arity: 6,
        }
    }
}

/// Generate a planted hypergraph (deterministic per seed).
pub fn planted_hypergraph(cfg: &PlantedHyperConfig, seed: u64) -> InMemoryHypergraph {
    assert!(cfg.vertices >= cfg.community_size && cfg.community_size >= 1);
    assert!(cfg.min_arity >= 1 && cfg.max_arity >= cfg.min_arity);
    assert!((0.0..=1.0).contains(&cfg.mixing));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4B1D_6E6E);
    let communities = cfg.vertices / cfg.community_size;
    let mut hyperedges = Vec::with_capacity(cfg.hyperedges as usize);
    for _ in 0..cfg.hyperedges {
        let arity = rng.gen_range(cfg.min_arity..=cfg.max_arity);
        let cross = rng.gen::<f64>() < cfg.mixing;
        let mut pins = Vec::with_capacity(arity);
        if cross || communities <= 1 {
            for _ in 0..arity {
                pins.push(rng.gen_range(0..cfg.vertices) as u32);
            }
        } else {
            let c = rng.gen_range(0..communities);
            let start = c * cfg.community_size;
            for _ in 0..arity {
                pins.push((start + rng.gen_range(0..cfg.community_size)) as u32);
            }
        }
        hyperedges.push(Hyperedge::new(pins));
    }
    InMemoryHypergraph::new(hyperedges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = PlantedHyperConfig::default();
        let a = planted_hypergraph(&cfg, 5);
        let b = planted_hypergraph(&cfg, 5);
        assert_eq!(a.hyperedges(), b.hyperedges());
    }

    #[test]
    fn respects_counts_and_arity() {
        let cfg = PlantedHyperConfig {
            hyperedges: 500,
            ..Default::default()
        };
        let hg = planted_hypergraph(&cfg, 1);
        assert_eq!(hg.num_hyperedges(), 500);
        for h in hg.hyperedges() {
            assert!(h.arity() >= 1 && h.arity() <= cfg.max_arity);
        }
    }

    #[test]
    fn most_hyperedges_are_intra_community() {
        let cfg = PlantedHyperConfig::default();
        let hg = planted_hypergraph(&cfg, 9);
        let intra = hg
            .hyperedges()
            .iter()
            .filter(|h| {
                let c0 = h.pins()[0] as u64 / cfg.community_size;
                h.pins()
                    .iter()
                    .all(|&v| v as u64 / cfg.community_size == c0)
            })
            .count();
        let frac = intra as f64 / hg.num_hyperedges() as f64;
        assert!(frac > 0.8, "intra fraction {frac}");
    }
}
