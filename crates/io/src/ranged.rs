//! Range-addressable file sources — chunk-range scheduling for the
//! chunk-parallel partitioner.
//!
//! Implements [`RangedEdgeSource`] (see `tps_graph::ranged`) for both
//! on-disk formats, so `tps-core`'s `ParallelRunner` can open one
//! independent cursor per worker thread:
//!
//! * **v1** (`TPSBEL1`) — records are fixed-width, so a range `[a, b)` is a
//!   single seek to `HEADER + 8·a` and a countdown.
//! * **v2** (`TPSBEL2`) — the chunk **index footer** is read once at open
//!   and a prefix-sum over per-chunk edge counts is kept; a range cursor
//!   binary-searches the chunk containing its start edge, decodes whole
//!   chunks (checksums verified as in a sequential pass) and skips the
//!   intra-chunk prefix. Workers therefore schedule disjoint chunk ranges
//!   off one shared index with no coordination.
//!
//! Ranges are expressed in *edge indices*, not storage offsets, so a
//! parallel partitioning run makes identical per-thread decisions whether
//! the graph lives in memory, in a v1 file or in a v2 file.
//!
//! [`open_ranged`] is the front door (format sniffing via
//! [`crate::detect_format`]). [`RangedPrefetchSource`] wraps either source
//! so each worker's range stream is additionally double-buffered by a
//! background reader thread ([`crate::prefetch`]), overlapping chunk decode
//! and disk I/O with partitioning CPU per worker.

use std::fs::File;
use std::io::{self, BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use tps_graph::formats::binary as v1;
use tps_graph::ranged::{check_range, RangedEdgeSource};
use tps_graph::stream::EdgeStream;
use tps_graph::types::{Edge, GraphInfo};

use crate::prefetch::{ChunkSource, PrefetchConfig, PrefetchReader};
use crate::v2::{read_chunk_at, read_layout, ChunkMeta, V2Layout};
use crate::EdgeFileFormat;

/// A [`RangedEdgeSource`] over a v1 fixed-width `.bel` file.
pub struct RangedV1File {
    path: PathBuf,
    info: GraphInfo,
}

impl RangedV1File {
    /// Open `path` and validate the v1 header.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let info = v1::read_header(&mut file)?;
        Ok(RangedV1File { path, info })
    }

    fn open_range_stream(&self, start: u64, end: u64) -> io::Result<V1RangeStream> {
        check_range(start, end, self.info.num_edges)?;
        let file = File::open(&self.path)?;
        let mut stream = V1RangeStream {
            reader: BufReader::with_capacity(1 << 16, file),
            start,
            end,
            pos: start,
        };
        stream.seek_to_start()?;
        Ok(stream)
    }
}

impl RangedEdgeSource for RangedV1File {
    fn info(&self) -> GraphInfo {
        self.info
    }

    fn open_range(&self, start: u64, end: u64) -> io::Result<Box<dyn EdgeStream + '_>> {
        Ok(Box::new(self.open_range_stream(start, end)?))
    }
}

struct V1RangeStream {
    reader: BufReader<File>,
    start: u64,
    end: u64,
    pos: u64,
}

impl V1RangeStream {
    fn seek_to_start(&mut self) -> io::Result<()> {
        self.reader.seek(SeekFrom::Start(
            v1::HEADER_LEN + self.start * v1::EDGE_RECORD_LEN,
        ))?;
        self.pos = self.start;
        Ok(())
    }
}

impl EdgeStream for V1RangeStream {
    fn reset(&mut self) -> io::Result<()> {
        self.seek_to_start()
    }

    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        if self.pos >= self.end {
            return Ok(None);
        }
        let mut rec = [0u8; v1::EDGE_RECORD_LEN as usize];
        self.reader.read_exact(&mut rec)?;
        self.pos += 1;
        Ok(Some(Edge {
            src: u32::from_le_bytes(rec[0..4].try_into().unwrap()),
            dst: u32::from_le_bytes(rec[4..8].try_into().unwrap()),
        }))
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.end - self.start)
    }
}

/// A [`RangedEdgeSource`] over a v2 chunked file, scheduling chunk ranges
/// off the shared index footer.
pub struct RangedV2File {
    path: PathBuf,
    layout: V2Layout,
    /// `cum[i]` = edges in chunks `0..i`; `cum[num_chunks]` = `|E|`.
    cum: Vec<u64>,
}

impl RangedV2File {
    /// Open `path`, validating header, index and trailer.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let layout = read_layout(&mut file)?;
        let mut cum = Vec::with_capacity(layout.chunks.len() + 1);
        let mut total = 0u64;
        cum.push(0);
        for c in &layout.chunks {
            total += c.edge_count as u64;
            cum.push(total);
        }
        Ok(RangedV2File { path, layout, cum })
    }

    /// The chunk directory (shared, read-only — workers schedule off it).
    pub fn chunks(&self) -> &[ChunkMeta] {
        &self.layout.chunks
    }

    fn open_range_with<C, U>(
        &self,
        chunks: C,
        cum: U,
        start: u64,
        end: u64,
    ) -> io::Result<V2RangeStream<C, U>>
    where
        C: AsRef<[ChunkMeta]>,
        U: AsRef<[u64]>,
    {
        check_range(start, end, self.layout.info.num_edges)?;
        let file = File::open(&self.path)?;
        let verified = vec![false; chunks.as_ref().len()];
        let mut stream = V2RangeStream {
            reader: BufReader::with_capacity(1 << 16, file),
            chunks,
            cum,
            start,
            end,
            next_chunk: 0,
            emitted: 0,
            scratch: Vec::new(),
            buf: Vec::new(),
            buf_pos: 0,
            verified,
        };
        stream.rewind()?;
        Ok(stream)
    }
}

impl RangedEdgeSource for RangedV2File {
    fn info(&self) -> GraphInfo {
        self.layout.info
    }

    fn open_range(&self, start: u64, end: u64) -> io::Result<Box<dyn EdgeStream + '_>> {
        Ok(Box::new(self.open_range_with(
            self.layout.chunks.as_slice(),
            self.cum.as_slice(),
            start,
            end,
        )?))
    }
}

/// A stream over edges `[start, end)` of a v2 file, decoding whole chunks
/// and skipping the intra-chunk prefix. Generic over borrowed or owned
/// chunk-directory storage (owned streams can migrate to a prefetch
/// thread).
struct V2RangeStream<C, U> {
    reader: BufReader<File>,
    chunks: C,
    cum: U,
    start: u64,
    end: u64,
    /// Next chunk index to decode sequentially.
    next_chunk: usize,
    /// Edges already handed out of this range.
    emitted: u64,
    scratch: Vec<u8>,
    buf: Vec<Edge>,
    buf_pos: usize,
    /// Chunks whose checksum this cursor already verified — multi-pass
    /// workers (`reset` + re-stream) decode proven chunks checksum-free.
    verified: Vec<bool>,
}

impl<C: AsRef<[ChunkMeta]>, U: AsRef<[u64]>> V2RangeStream<C, U> {
    /// Position at the chunk containing `start` and skip the intra-chunk
    /// prefix (decoding is chunk-at-a-time; varints cannot be entered
    /// mid-stream).
    fn rewind(&mut self) -> io::Result<()> {
        self.emitted = 0;
        self.buf.clear();
        self.buf_pos = 0;
        if self.start >= self.end || self.chunks.as_ref().is_empty() {
            return Ok(());
        }
        // Last chunk whose cumulative start is <= `start`.
        self.next_chunk = self
            .cum
            .as_ref()
            .partition_point(|&c| c <= self.start)
            .saturating_sub(1);
        self.reader.seek(SeekFrom::Start(
            self.chunks.as_ref()[self.next_chunk].offset,
        ))?;
        let skip = self.start - self.cum.as_ref()[self.next_chunk];
        self.decode_next_chunk()?;
        self.buf_pos = skip as usize;
        Ok(())
    }

    /// Decode chunk `next_chunk` into `buf` and advance the counter.
    fn decode_next_chunk(&mut self) -> io::Result<()> {
        let meta = self.chunks.as_ref()[self.next_chunk];
        self.buf.clear();
        self.buf_pos = 0;
        let verify = !self.verified[self.next_chunk];
        let mut buf = std::mem::take(&mut self.buf);
        let r = read_chunk_at(&mut self.reader, meta, verify, &mut self.scratch, &mut buf);
        self.buf = buf;
        r?;
        self.verified[self.next_chunk] = true;
        self.next_chunk += 1;
        Ok(())
    }
}

impl<C: AsRef<[ChunkMeta]>, U: AsRef<[u64]>> EdgeStream for V2RangeStream<C, U> {
    fn reset(&mut self) -> io::Result<()> {
        self.rewind()
    }

    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        loop {
            if self.emitted >= self.end - self.start {
                return Ok(None);
            }
            if self.buf_pos < self.buf.len() {
                let e = self.buf[self.buf_pos];
                self.buf_pos += 1;
                self.emitted += 1;
                return Ok(Some(e));
            }
            if self.next_chunk >= self.chunks.as_ref().len() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "v2 chunk directory exhausted before range end",
                ));
            }
            self.decode_next_chunk()?;
        }
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.end - self.start)
    }
}

/// A [`RangedEdgeSource`] over a memory-mapped v1 `.bel` file: one shared
/// read-only mapping, zero-copy range cursors with per-worker offsets.
///
/// Every worker's range stream is a `(start, end, cursor)` triple over the
/// same mapped payload — no per-worker file handles, no read syscalls, no
/// decode buffers. `reset` is a cursor assignment. This is the fastest
/// parallel backend on a warm page cache (the decode copy of the buffered
/// readers disappears); on a cold cache the kernel's readahead serves
/// interleaved workers nearly as well as dedicated cursors.
pub struct RangedMmapV1File {
    map: crate::mmap::Mmap,
    info: GraphInfo,
}

impl RangedMmapV1File {
    /// Map `path` and validate the v1 header.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = File::open(path.as_ref())?;
        let map = crate::mmap::Mmap::map(&file)?;
        let mut cursor = map.as_slice();
        let info = v1::read_header(&mut cursor)?;
        // The edge count is untrusted file input: a corrupt header must
        // become an error here, not a wrapped multiply and a later panic.
        let need = info
            .num_edges
            .checked_mul(v1::EDGE_RECORD_LEN)
            .and_then(|payload| payload.checked_add(v1::HEADER_LEN))
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "header promises an impossible edge count {}",
                        info.num_edges
                    ),
                )
            })?;
        if (map.as_slice().len() as u64) < need {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "file holds {} bytes, header promises {need}",
                    map.as_slice().len()
                ),
            ));
        }
        Ok(RangedMmapV1File { map, info })
    }

    /// The raw edge records (shared zero-copy view past the header).
    fn payload(&self) -> &[u8] {
        let start = v1::HEADER_LEN as usize;
        let len = (self.info.num_edges * v1::EDGE_RECORD_LEN) as usize;
        &self.map.as_slice()[start..start + len]
    }
}

impl RangedEdgeSource for RangedMmapV1File {
    fn info(&self) -> GraphInfo {
        self.info
    }

    fn open_range(&self, start: u64, end: u64) -> io::Result<Box<dyn EdgeStream + '_>> {
        check_range(start, end, self.info.num_edges)?;
        Ok(Box::new(MmapV1RangeStream {
            payload: self.payload(),
            start,
            end,
            pos: start,
        }))
    }
}

/// A zero-copy cursor over records `[start, end)` of a shared v1 mapping.
struct MmapV1RangeStream<'a> {
    payload: &'a [u8],
    start: u64,
    end: u64,
    pos: u64,
}

impl EdgeStream for MmapV1RangeStream<'_> {
    fn reset(&mut self) -> io::Result<()> {
        self.pos = self.start;
        Ok(())
    }

    #[inline]
    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        if self.pos >= self.end {
            return Ok(None);
        }
        let e = crate::mmap::edge_at(self.payload, self.pos as usize);
        self.pos += 1;
        Ok(Some(e))
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.end - self.start)
    }
}

/// A [`RangedEdgeSource`] over a memory-mapped v2 chunked file: chunk-index
/// scheduling as in [`RangedV2File`], but chunks are decoded straight out of
/// the shared mapping (checksums still verified) instead of through
/// per-worker file handles.
pub struct RangedMmapV2File {
    map: crate::mmap::Mmap,
    layout: V2Layout,
    /// `cum[i]` = edges in chunks `0..i`; `cum[num_chunks]` = `|E|`.
    cum: Vec<u64>,
}

impl RangedMmapV2File {
    /// Map `path`, validating header, index and trailer.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let mut file = File::open(path.as_ref())?;
        let layout = read_layout(&mut file)?;
        let map = crate::mmap::Mmap::map(&file)?;
        let mut cum = Vec::with_capacity(layout.chunks.len() + 1);
        let mut total = 0u64;
        cum.push(0);
        for c in &layout.chunks {
            total += c.edge_count as u64;
            cum.push(total);
        }
        Ok(RangedMmapV2File { map, layout, cum })
    }
}

impl RangedEdgeSource for RangedMmapV2File {
    fn info(&self) -> GraphInfo {
        self.layout.info
    }

    fn open_range(&self, start: u64, end: u64) -> io::Result<Box<dyn EdgeStream + '_>> {
        check_range(start, end, self.layout.info.num_edges)?;
        let mut stream = MmapV2RangeStream {
            bytes: self.map.as_slice(),
            chunks: &self.layout.chunks,
            cum: &self.cum,
            start,
            end,
            next_chunk: 0,
            emitted: 0,
            buf: Vec::new(),
            buf_pos: 0,
            verified: vec![false; self.layout.chunks.len()],
        };
        stream.rewind()?;
        Ok(Box::new(stream))
    }
}

/// A cursor over edges `[start, end)` of a shared v2 mapping, decoding whole
/// chunks from the mapped bytes and skipping the intra-chunk prefix.
struct MmapV2RangeStream<'a> {
    bytes: &'a [u8],
    chunks: &'a [ChunkMeta],
    cum: &'a [u64],
    start: u64,
    end: u64,
    next_chunk: usize,
    emitted: u64,
    buf: Vec<Edge>,
    buf_pos: usize,
    /// Chunks whose checksum this cursor already verified (see
    /// [`V2RangeStream::verified`]).
    verified: Vec<bool>,
}

impl MmapV2RangeStream<'_> {
    fn rewind(&mut self) -> io::Result<()> {
        self.emitted = 0;
        self.buf.clear();
        self.buf_pos = 0;
        if self.start >= self.end || self.chunks.is_empty() {
            return Ok(());
        }
        self.next_chunk = self
            .cum
            .partition_point(|&c| c <= self.start)
            .saturating_sub(1);
        let skip = self.start - self.cum[self.next_chunk];
        self.decode_next_chunk()?;
        self.buf_pos = skip as usize;
        Ok(())
    }

    fn decode_next_chunk(&mut self) -> io::Result<()> {
        self.buf.clear();
        self.buf_pos = 0;
        let verify = !self.verified[self.next_chunk];
        crate::v2::decode_chunk_slice(
            self.bytes,
            self.chunks[self.next_chunk],
            verify,
            &mut self.buf,
        )?;
        self.verified[self.next_chunk] = true;
        self.next_chunk += 1;
        Ok(())
    }
}

impl EdgeStream for MmapV2RangeStream<'_> {
    fn reset(&mut self) -> io::Result<()> {
        self.rewind()
    }

    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        loop {
            if self.emitted >= self.end - self.start {
                return Ok(None);
            }
            if self.buf_pos < self.buf.len() {
                let e = self.buf[self.buf_pos];
                self.buf_pos += 1;
                self.emitted += 1;
                return Ok(Some(e));
            }
            if self.next_chunk >= self.chunks.len() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "v2 chunk directory exhausted before range end",
                ));
            }
            self.decode_next_chunk()?;
        }
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.end - self.start)
    }
}

/// Open `path` (v1 or v2, sniffed by magic) as a ranged source.
pub fn open_ranged<P: AsRef<Path>>(path: P) -> io::Result<Box<dyn RangedEdgeSource>> {
    let path = path.as_ref();
    match crate::detect_format(path)? {
        EdgeFileFormat::V1 => Ok(Box::new(RangedV1File::open(path)?)),
        EdgeFileFormat::V2 => Ok(Box::new(RangedV2File::open(path)?)),
    }
}

/// Like [`open_ranged`], serving every range as a zero-copy (v1) or
/// in-mapping-decoded (v2) cursor over one shared memory mapping.
pub fn open_ranged_mmap<P: AsRef<Path>>(path: P) -> io::Result<Box<dyn RangedEdgeSource>> {
    let path = path.as_ref();
    match crate::detect_format(path)? {
        EdgeFileFormat::V1 => Ok(Box::new(RangedMmapV1File::open(path)?)),
        EdgeFileFormat::V2 => Ok(Box::new(RangedMmapV2File::open(path)?)),
    }
}

/// Open `path` as a ranged source with the requested [`ReaderBackend`](crate::ReaderBackend) —
/// the parallel/distributed analogue of [`crate::open_edge_stream`].
pub fn open_ranged_backend<P: AsRef<Path>>(
    path: P,
    backend: crate::ReaderBackend,
) -> io::Result<Box<dyn RangedEdgeSource>> {
    match backend {
        crate::ReaderBackend::Buffered => open_ranged(path),
        crate::ReaderBackend::Mmap => open_ranged_mmap(path),
        crate::ReaderBackend::Prefetch => open_ranged_prefetch(path),
    }
}

/// Like [`open_ranged`], with every range stream double-buffered by a
/// background prefetch thread.
pub fn open_ranged_prefetch<P: AsRef<Path>>(path: P) -> io::Result<Box<dyn RangedEdgeSource>> {
    let path = path.as_ref();
    match crate::detect_format(path)? {
        EdgeFileFormat::V1 => Ok(Box::new(RangedPrefetchSource::new(RangedV1File::open(
            path,
        )?))),
        EdgeFileFormat::V2 => Ok(Box::new(RangedPrefetchSource::new(RangedV2File::open(
            path,
        )?))),
    }
}

/// Sources that can open an *owned* (`'static` + [`Send`]) range stream, as
/// required to move the stream onto a prefetch worker thread.
pub trait RangedReopen {
    /// Open `[start, end)` as an owned stream (fresh file handle, owned
    /// metadata).
    fn open_range_owned(
        &self,
        start: u64,
        end: u64,
    ) -> io::Result<Box<dyn EdgeStream + Send + 'static>>;
}

impl RangedReopen for RangedV1File {
    fn open_range_owned(
        &self,
        start: u64,
        end: u64,
    ) -> io::Result<Box<dyn EdgeStream + Send + 'static>> {
        Ok(Box::new(self.open_range_stream(start, end)?))
    }
}

impl RangedReopen for RangedV2File {
    fn open_range_owned(
        &self,
        start: u64,
        end: u64,
    ) -> io::Result<Box<dyn EdgeStream + Send + 'static>> {
        Ok(Box::new(self.open_range_with(
            self.layout.chunks.clone(),
            self.cum.clone(),
            start,
            end,
        )?))
    }
}

/// Wraps a ranged source so each range stream is served by a background
/// prefetch thread (double-buffered, see [`crate::prefetch`]): chunk decode
/// and disk reads overlap with the consumer's partitioning work, per worker.
pub struct RangedPrefetchSource<S> {
    inner: S,
    config: PrefetchConfig,
}

impl<S: RangedEdgeSource + RangedReopen> RangedPrefetchSource<S> {
    /// Wrap `inner` with the default prefetch configuration.
    pub fn new(inner: S) -> Self {
        RangedPrefetchSource {
            inner,
            config: PrefetchConfig::default(),
        }
    }

    /// Wrap `inner` with an explicit prefetch configuration.
    pub fn with_config(inner: S, config: PrefetchConfig) -> Self {
        RangedPrefetchSource { inner, config }
    }
}

/// Adapts one owned range stream into a [`ChunkSource`] feeding a prefetch
/// worker.
struct RangeChunkSource {
    stream: Box<dyn EdgeStream + Send + 'static>,
}

impl ChunkSource for RangeChunkSource {
    fn reset(&mut self) -> io::Result<()> {
        self.stream.reset()
    }

    fn fill_chunk(&mut self, buf: &mut Vec<Edge>, max_edges: usize) -> io::Result<usize> {
        while buf.len() < max_edges {
            match self.stream.next_edge()? {
                Some(e) => buf.push(e),
                None => break,
            }
        }
        Ok(buf.len())
    }
}

impl<S: RangedEdgeSource + RangedReopen> RangedEdgeSource for RangedPrefetchSource<S> {
    fn info(&self) -> GraphInfo {
        self.inner.info()
    }

    fn open_range(&self, start: u64, end: u64) -> io::Result<Box<dyn EdgeStream + '_>> {
        let stream = self.inner.open_range_owned(start, end)?;
        Ok(Box::new(PrefetchReader::new(
            RangeChunkSource { stream },
            self.config,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_graph::formats::binary::write_binary_edge_list;
    use tps_graph::ranged::split_even;
    use tps_graph::stream::for_each_edge;

    fn tmpfile(tag: &str, ext: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tps-io-ranged-{tag}-{}.{ext}", std::process::id()))
    }

    fn edges(n: u32) -> Vec<Edge> {
        (0..n)
            .map(|i| Edge::new(i % 517, (i * 31 + 7) % 4096))
            .collect()
    }

    fn collect(s: &mut dyn EdgeStream) -> Vec<Edge> {
        let mut out = Vec::new();
        for_each_edge(s, |e| out.push(e)).unwrap();
        out
    }

    #[test]
    fn v1_ranges_reassemble_full_pass() {
        let path = tmpfile("v1", "bel");
        let es = edges(10_000);
        write_binary_edge_list(&path, 4096, es.iter().copied()).unwrap();
        let src = RangedV1File::open(&path).unwrap();
        assert_eq!(src.info().num_edges, 10_000);
        for parts in [1usize, 3, 7] {
            let mut seen = Vec::new();
            for (a, b) in split_even(10_000, parts) {
                let mut s = src.open_range(a, b).unwrap();
                seen.extend(collect(&mut *s));
            }
            assert_eq!(seen, es, "parts = {parts}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_ranges_reassemble_full_pass_across_chunk_sizes() {
        let es = edges(10_000);
        // Chunk sizes that do and do not divide the range boundaries.
        for chunk_edges in [64u32, 1000, 4096, 20_000] {
            let path = tmpfile(&format!("v2-{chunk_edges}"), "bel2");
            crate::v2::write_v2_edge_list(&path, 4096, es.iter().copied(), chunk_edges).unwrap();
            let src = RangedV2File::open(&path).unwrap();
            for parts in [1usize, 2, 5, 13] {
                let mut seen = Vec::new();
                for (a, b) in split_even(10_000, parts) {
                    let mut s = src.open_range(a, b).unwrap();
                    seen.extend(collect(&mut *s));
                }
                assert_eq!(seen, es, "chunk {chunk_edges} parts {parts}");
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn v2_range_mid_chunk_resets_correctly() {
        let es = edges(5_000);
        let path = tmpfile("v2-reset", "bel2");
        crate::v2::write_v2_edge_list(&path, 4096, es.iter().copied(), 777).unwrap();
        let src = RangedV2File::open(&path).unwrap();
        // A range starting and ending mid-chunk.
        let mut s = src.open_range(1_000, 3_500).unwrap();
        let first = collect(&mut *s);
        let second = collect(&mut *s); // collect resets first
        assert_eq!(first.len(), 2_500);
        assert_eq!(first, second);
        assert_eq!(first[0], es[1_000]);
        assert_eq!(*first.last().unwrap(), es[3_499]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_ranged_sniffs_both_formats() {
        let es = edges(2_000);
        let p1 = tmpfile("sniff", "bel");
        let p2 = tmpfile("sniff", "bel2");
        write_binary_edge_list(&p1, 4096, es.iter().copied()).unwrap();
        crate::v2::write_v2_edge_list(&p2, 4096, es.iter().copied(), 300).unwrap();
        for p in [&p1, &p2] {
            let src = open_ranged(p).unwrap();
            let mut s = src.open_range(500, 1500).unwrap();
            let seen = collect(&mut *s);
            assert_eq!(seen, &es[500..1500], "{p:?}");
        }
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn prefetch_wrapped_ranges_match_plain_ranges() {
        let es = edges(8_000);
        let p1 = tmpfile("pf", "bel");
        let p2 = tmpfile("pf", "bel2");
        write_binary_edge_list(&p1, 4096, es.iter().copied()).unwrap();
        crate::v2::write_v2_edge_list(&p2, 4096, es.iter().copied(), 1000).unwrap();

        let v1 = RangedPrefetchSource::new(RangedV1File::open(&p1).unwrap());
        let v2 = RangedPrefetchSource::new(RangedV2File::open(&p2).unwrap());
        for (a, b) in split_even(8_000, 4) {
            let mut s1 = v1.open_range(a, b).unwrap();
            let mut s2 = v2.open_range(a, b).unwrap();
            assert_eq!(collect(&mut *s1), &es[a as usize..b as usize]);
            assert_eq!(collect(&mut *s2), &es[a as usize..b as usize]);
        }
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn mmap_ranges_match_buffered_ranges_both_formats() {
        let es = edges(6_000);
        let p1 = tmpfile("mm", "bel");
        let p2 = tmpfile("mm", "bel2");
        write_binary_edge_list(&p1, 4096, es.iter().copied()).unwrap();
        crate::v2::write_v2_edge_list(&p2, 4096, es.iter().copied(), 777).unwrap();
        for p in [&p1, &p2] {
            let src = open_ranged_mmap(p).unwrap();
            assert_eq!(src.info().num_edges, 6_000);
            for parts in [1usize, 3, 5] {
                let mut seen = Vec::new();
                for (a, b) in split_even(6_000, parts) {
                    let mut s = src.open_range(a, b).unwrap();
                    seen.extend(collect(&mut *s));
                }
                assert_eq!(seen, es, "{p:?} parts {parts}");
            }
            // Mid-range reset rewinds to the range start, not the file start.
            let mut s = src.open_range(1_000, 2_500).unwrap();
            let first = collect(&mut *s);
            assert_eq!(first, collect(&mut *s));
            assert_eq!(first[0], es[1_000]);
            // Out-of-bounds ranges rejected like every other backend.
            assert!(src.open_range(0, 6_001).is_err());
        }
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn mmap_rejects_absurd_header_edge_counts() {
        // A header promising 2^61 edges would wrap the size multiply;
        // both mmap openers must report corruption, not panic later.
        let path = tmpfile("absurd", "bel");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&tps_graph::formats::binary::MAGIC);
        bytes.extend_from_slice(&8u64.to_le_bytes());
        bytes.extend_from_slice(&(1u64 << 61).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(RangedMmapV1File::open(&path).is_err());
        assert!(crate::mmap::MmapEdgeFile::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn backend_dispatch_opens_all_three() {
        let es = edges(500);
        let path = tmpfile("dispatch", "bel");
        write_binary_edge_list(&path, 4096, es.iter().copied()).unwrap();
        for backend in crate::ReaderBackend::ALL {
            let src = open_ranged_backend(&path, backend).unwrap();
            let mut s = src.open_range(100, 200).unwrap();
            assert_eq!(collect(&mut *s), &es[100..200], "{backend:?}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_bounds_ranges_rejected() {
        let es = edges(100);
        let path = tmpfile("oob", "bel");
        write_binary_edge_list(&path, 4096, es.iter().copied()).unwrap();
        let src = RangedV1File::open(&path).unwrap();
        assert!(src.open_range(0, 101).is_err());
        assert!(src.open_range(60, 50).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_range_yields_nothing() {
        let es = edges(100);
        let path = tmpfile("emptyrange", "bel2");
        crate::v2::write_v2_edge_list(&path, 4096, es.iter().copied(), 32).unwrap();
        let src = RangedV2File::open(&path).unwrap();
        let mut s = src.open_range(50, 50).unwrap();
        assert_eq!(s.next_edge().unwrap(), None);
        std::fs::remove_file(&path).ok();
    }
}
