//! Range-addressable file sources — chunk-range scheduling for the
//! chunk-parallel partitioner.
//!
//! Implements [`RangedEdgeSource`] (see `tps_graph::ranged`) for both
//! on-disk formats, so `tps-core`'s `ParallelRunner` can open one
//! independent cursor per worker thread:
//!
//! * **v1** (`TPSBEL1`) — records are fixed-width, so a range `[a, b)` is a
//!   single seek to `HEADER + 8·a` and a countdown.
//! * **v2** (`TPSBEL2`) — the chunk **index footer** is read once at open
//!   and a prefix-sum over per-chunk edge counts is kept; a range cursor
//!   binary-searches the chunk containing its start edge, decodes whole
//!   chunks (checksums verified as in a sequential pass) and skips the
//!   intra-chunk prefix. Workers therefore schedule disjoint chunk ranges
//!   off one shared index with no coordination.
//!
//! Ranges are expressed in *edge indices*, not storage offsets, so a
//! parallel partitioning run makes identical per-thread decisions whether
//! the graph lives in memory, in a v1 file or in a v2 file.
//!
//! [`open_ranged`] is the front door (format sniffing via
//! [`crate::detect_format`]). [`RangedPrefetchSource`] wraps either source
//! so each worker's range stream is additionally double-buffered by a
//! background reader thread ([`crate::prefetch`]), overlapping chunk decode
//! and disk I/O with partitioning CPU per worker.

use std::fs::File;
use std::io::{self, BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use tps_graph::formats::binary as v1;
use tps_graph::ranged::{check_range, RangedEdgeSource};
use tps_graph::stream::EdgeStream;
use tps_graph::types::{Edge, GraphInfo};

use crate::prefetch::{ChunkSource, PrefetchConfig, PrefetchReader};
use crate::v2::{read_chunk_at, read_layout, ChunkMeta, V2Layout};
use crate::EdgeFileFormat;

/// A [`RangedEdgeSource`] over a v1 fixed-width `.bel` file.
pub struct RangedV1File {
    path: PathBuf,
    info: GraphInfo,
}

impl RangedV1File {
    /// Open `path` and validate the v1 header.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let info = v1::read_header(&mut file)?;
        Ok(RangedV1File { path, info })
    }

    fn open_range_stream(&self, start: u64, end: u64) -> io::Result<V1RangeStream> {
        check_range(start, end, self.info.num_edges)?;
        let file = File::open(&self.path)?;
        let mut stream = V1RangeStream {
            reader: BufReader::with_capacity(1 << 16, file),
            start,
            end,
            pos: start,
        };
        stream.seek_to_start()?;
        Ok(stream)
    }
}

impl RangedEdgeSource for RangedV1File {
    fn info(&self) -> GraphInfo {
        self.info
    }

    fn open_range(&self, start: u64, end: u64) -> io::Result<Box<dyn EdgeStream + '_>> {
        Ok(Box::new(self.open_range_stream(start, end)?))
    }
}

struct V1RangeStream {
    reader: BufReader<File>,
    start: u64,
    end: u64,
    pos: u64,
}

impl V1RangeStream {
    fn seek_to_start(&mut self) -> io::Result<()> {
        self.reader.seek(SeekFrom::Start(
            v1::HEADER_LEN + self.start * v1::EDGE_RECORD_LEN,
        ))?;
        self.pos = self.start;
        Ok(())
    }
}

impl EdgeStream for V1RangeStream {
    fn reset(&mut self) -> io::Result<()> {
        self.seek_to_start()
    }

    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        if self.pos >= self.end {
            return Ok(None);
        }
        let mut rec = [0u8; v1::EDGE_RECORD_LEN as usize];
        self.reader.read_exact(&mut rec)?;
        self.pos += 1;
        Ok(Some(Edge {
            src: u32::from_le_bytes(rec[0..4].try_into().unwrap()),
            dst: u32::from_le_bytes(rec[4..8].try_into().unwrap()),
        }))
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.end - self.start)
    }
}

/// A [`RangedEdgeSource`] over a v2 chunked file, scheduling chunk ranges
/// off the shared index footer.
pub struct RangedV2File {
    path: PathBuf,
    layout: V2Layout,
    /// `cum[i]` = edges in chunks `0..i`; `cum[num_chunks]` = `|E|`.
    cum: Vec<u64>,
}

impl RangedV2File {
    /// Open `path`, validating header, index and trailer.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let layout = read_layout(&mut file)?;
        let mut cum = Vec::with_capacity(layout.chunks.len() + 1);
        let mut total = 0u64;
        cum.push(0);
        for c in &layout.chunks {
            total += c.edge_count as u64;
            cum.push(total);
        }
        Ok(RangedV2File { path, layout, cum })
    }

    /// The chunk directory (shared, read-only — workers schedule off it).
    pub fn chunks(&self) -> &[ChunkMeta] {
        &self.layout.chunks
    }

    fn open_range_with<C, U>(
        &self,
        chunks: C,
        cum: U,
        start: u64,
        end: u64,
    ) -> io::Result<V2RangeStream<C, U>>
    where
        C: AsRef<[ChunkMeta]>,
        U: AsRef<[u64]>,
    {
        check_range(start, end, self.layout.info.num_edges)?;
        let file = File::open(&self.path)?;
        let mut stream = V2RangeStream {
            reader: BufReader::with_capacity(1 << 16, file),
            chunks,
            cum,
            start,
            end,
            next_chunk: 0,
            emitted: 0,
            scratch: Vec::new(),
            buf: Vec::new(),
            buf_pos: 0,
        };
        stream.rewind()?;
        Ok(stream)
    }
}

impl RangedEdgeSource for RangedV2File {
    fn info(&self) -> GraphInfo {
        self.layout.info
    }

    fn open_range(&self, start: u64, end: u64) -> io::Result<Box<dyn EdgeStream + '_>> {
        Ok(Box::new(self.open_range_with(
            self.layout.chunks.as_slice(),
            self.cum.as_slice(),
            start,
            end,
        )?))
    }
}

/// A stream over edges `[start, end)` of a v2 file, decoding whole chunks
/// and skipping the intra-chunk prefix. Generic over borrowed or owned
/// chunk-directory storage (owned streams can migrate to a prefetch
/// thread).
struct V2RangeStream<C, U> {
    reader: BufReader<File>,
    chunks: C,
    cum: U,
    start: u64,
    end: u64,
    /// Next chunk index to decode sequentially.
    next_chunk: usize,
    /// Edges already handed out of this range.
    emitted: u64,
    scratch: Vec<u8>,
    buf: Vec<Edge>,
    buf_pos: usize,
}

impl<C: AsRef<[ChunkMeta]>, U: AsRef<[u64]>> V2RangeStream<C, U> {
    /// Position at the chunk containing `start` and skip the intra-chunk
    /// prefix (decoding is chunk-at-a-time; varints cannot be entered
    /// mid-stream).
    fn rewind(&mut self) -> io::Result<()> {
        self.emitted = 0;
        self.buf.clear();
        self.buf_pos = 0;
        if self.start >= self.end || self.chunks.as_ref().is_empty() {
            return Ok(());
        }
        // Last chunk whose cumulative start is <= `start`.
        self.next_chunk = self
            .cum
            .as_ref()
            .partition_point(|&c| c <= self.start)
            .saturating_sub(1);
        self.reader.seek(SeekFrom::Start(
            self.chunks.as_ref()[self.next_chunk].offset,
        ))?;
        let skip = self.start - self.cum.as_ref()[self.next_chunk];
        self.decode_next_chunk()?;
        self.buf_pos = skip as usize;
        Ok(())
    }

    /// Decode chunk `next_chunk` into `buf` and advance the counter.
    fn decode_next_chunk(&mut self) -> io::Result<()> {
        let meta = self.chunks.as_ref()[self.next_chunk];
        self.buf.clear();
        self.buf_pos = 0;
        let mut buf = std::mem::take(&mut self.buf);
        let r = read_chunk_at(&mut self.reader, meta, &mut self.scratch, &mut buf);
        self.buf = buf;
        r?;
        self.next_chunk += 1;
        Ok(())
    }
}

impl<C: AsRef<[ChunkMeta]>, U: AsRef<[u64]>> EdgeStream for V2RangeStream<C, U> {
    fn reset(&mut self) -> io::Result<()> {
        self.rewind()
    }

    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        loop {
            if self.emitted >= self.end - self.start {
                return Ok(None);
            }
            if self.buf_pos < self.buf.len() {
                let e = self.buf[self.buf_pos];
                self.buf_pos += 1;
                self.emitted += 1;
                return Ok(Some(e));
            }
            if self.next_chunk >= self.chunks.as_ref().len() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "v2 chunk directory exhausted before range end",
                ));
            }
            self.decode_next_chunk()?;
        }
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.end - self.start)
    }
}

/// Open `path` (v1 or v2, sniffed by magic) as a ranged source.
pub fn open_ranged<P: AsRef<Path>>(path: P) -> io::Result<Box<dyn RangedEdgeSource>> {
    let path = path.as_ref();
    match crate::detect_format(path)? {
        EdgeFileFormat::V1 => Ok(Box::new(RangedV1File::open(path)?)),
        EdgeFileFormat::V2 => Ok(Box::new(RangedV2File::open(path)?)),
    }
}

/// Like [`open_ranged`], with every range stream double-buffered by a
/// background prefetch thread.
pub fn open_ranged_prefetch<P: AsRef<Path>>(path: P) -> io::Result<Box<dyn RangedEdgeSource>> {
    let path = path.as_ref();
    match crate::detect_format(path)? {
        EdgeFileFormat::V1 => Ok(Box::new(RangedPrefetchSource::new(RangedV1File::open(
            path,
        )?))),
        EdgeFileFormat::V2 => Ok(Box::new(RangedPrefetchSource::new(RangedV2File::open(
            path,
        )?))),
    }
}

/// Sources that can open an *owned* (`'static` + [`Send`]) range stream, as
/// required to move the stream onto a prefetch worker thread.
pub trait RangedReopen {
    /// Open `[start, end)` as an owned stream (fresh file handle, owned
    /// metadata).
    fn open_range_owned(
        &self,
        start: u64,
        end: u64,
    ) -> io::Result<Box<dyn EdgeStream + Send + 'static>>;
}

impl RangedReopen for RangedV1File {
    fn open_range_owned(
        &self,
        start: u64,
        end: u64,
    ) -> io::Result<Box<dyn EdgeStream + Send + 'static>> {
        Ok(Box::new(self.open_range_stream(start, end)?))
    }
}

impl RangedReopen for RangedV2File {
    fn open_range_owned(
        &self,
        start: u64,
        end: u64,
    ) -> io::Result<Box<dyn EdgeStream + Send + 'static>> {
        Ok(Box::new(self.open_range_with(
            self.layout.chunks.clone(),
            self.cum.clone(),
            start,
            end,
        )?))
    }
}

/// Wraps a ranged source so each range stream is served by a background
/// prefetch thread (double-buffered, see [`crate::prefetch`]): chunk decode
/// and disk reads overlap with the consumer's partitioning work, per worker.
pub struct RangedPrefetchSource<S> {
    inner: S,
    config: PrefetchConfig,
}

impl<S: RangedEdgeSource + RangedReopen> RangedPrefetchSource<S> {
    /// Wrap `inner` with the default prefetch configuration.
    pub fn new(inner: S) -> Self {
        RangedPrefetchSource {
            inner,
            config: PrefetchConfig::default(),
        }
    }

    /// Wrap `inner` with an explicit prefetch configuration.
    pub fn with_config(inner: S, config: PrefetchConfig) -> Self {
        RangedPrefetchSource { inner, config }
    }
}

/// Adapts one owned range stream into a [`ChunkSource`] feeding a prefetch
/// worker.
struct RangeChunkSource {
    stream: Box<dyn EdgeStream + Send + 'static>,
}

impl ChunkSource for RangeChunkSource {
    fn reset(&mut self) -> io::Result<()> {
        self.stream.reset()
    }

    fn fill_chunk(&mut self, buf: &mut Vec<Edge>, max_edges: usize) -> io::Result<usize> {
        while buf.len() < max_edges {
            match self.stream.next_edge()? {
                Some(e) => buf.push(e),
                None => break,
            }
        }
        Ok(buf.len())
    }
}

impl<S: RangedEdgeSource + RangedReopen> RangedEdgeSource for RangedPrefetchSource<S> {
    fn info(&self) -> GraphInfo {
        self.inner.info()
    }

    fn open_range(&self, start: u64, end: u64) -> io::Result<Box<dyn EdgeStream + '_>> {
        let stream = self.inner.open_range_owned(start, end)?;
        Ok(Box::new(PrefetchReader::new(
            RangeChunkSource { stream },
            self.config,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_graph::formats::binary::write_binary_edge_list;
    use tps_graph::ranged::split_even;
    use tps_graph::stream::for_each_edge;

    fn tmpfile(tag: &str, ext: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tps-io-ranged-{tag}-{}.{ext}", std::process::id()))
    }

    fn edges(n: u32) -> Vec<Edge> {
        (0..n)
            .map(|i| Edge::new(i % 517, (i * 31 + 7) % 4096))
            .collect()
    }

    fn collect(s: &mut dyn EdgeStream) -> Vec<Edge> {
        let mut out = Vec::new();
        for_each_edge(s, |e| out.push(e)).unwrap();
        out
    }

    #[test]
    fn v1_ranges_reassemble_full_pass() {
        let path = tmpfile("v1", "bel");
        let es = edges(10_000);
        write_binary_edge_list(&path, 4096, es.iter().copied()).unwrap();
        let src = RangedV1File::open(&path).unwrap();
        assert_eq!(src.info().num_edges, 10_000);
        for parts in [1usize, 3, 7] {
            let mut seen = Vec::new();
            for (a, b) in split_even(10_000, parts) {
                let mut s = src.open_range(a, b).unwrap();
                seen.extend(collect(&mut *s));
            }
            assert_eq!(seen, es, "parts = {parts}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_ranges_reassemble_full_pass_across_chunk_sizes() {
        let es = edges(10_000);
        // Chunk sizes that do and do not divide the range boundaries.
        for chunk_edges in [64u32, 1000, 4096, 20_000] {
            let path = tmpfile(&format!("v2-{chunk_edges}"), "bel2");
            crate::v2::write_v2_edge_list(&path, 4096, es.iter().copied(), chunk_edges).unwrap();
            let src = RangedV2File::open(&path).unwrap();
            for parts in [1usize, 2, 5, 13] {
                let mut seen = Vec::new();
                for (a, b) in split_even(10_000, parts) {
                    let mut s = src.open_range(a, b).unwrap();
                    seen.extend(collect(&mut *s));
                }
                assert_eq!(seen, es, "chunk {chunk_edges} parts {parts}");
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn v2_range_mid_chunk_resets_correctly() {
        let es = edges(5_000);
        let path = tmpfile("v2-reset", "bel2");
        crate::v2::write_v2_edge_list(&path, 4096, es.iter().copied(), 777).unwrap();
        let src = RangedV2File::open(&path).unwrap();
        // A range starting and ending mid-chunk.
        let mut s = src.open_range(1_000, 3_500).unwrap();
        let first = collect(&mut *s);
        let second = collect(&mut *s); // collect resets first
        assert_eq!(first.len(), 2_500);
        assert_eq!(first, second);
        assert_eq!(first[0], es[1_000]);
        assert_eq!(*first.last().unwrap(), es[3_499]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_ranged_sniffs_both_formats() {
        let es = edges(2_000);
        let p1 = tmpfile("sniff", "bel");
        let p2 = tmpfile("sniff", "bel2");
        write_binary_edge_list(&p1, 4096, es.iter().copied()).unwrap();
        crate::v2::write_v2_edge_list(&p2, 4096, es.iter().copied(), 300).unwrap();
        for p in [&p1, &p2] {
            let src = open_ranged(p).unwrap();
            let mut s = src.open_range(500, 1500).unwrap();
            let seen = collect(&mut *s);
            assert_eq!(seen, &es[500..1500], "{p:?}");
        }
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn prefetch_wrapped_ranges_match_plain_ranges() {
        let es = edges(8_000);
        let p1 = tmpfile("pf", "bel");
        let p2 = tmpfile("pf", "bel2");
        write_binary_edge_list(&p1, 4096, es.iter().copied()).unwrap();
        crate::v2::write_v2_edge_list(&p2, 4096, es.iter().copied(), 1000).unwrap();

        let v1 = RangedPrefetchSource::new(RangedV1File::open(&p1).unwrap());
        let v2 = RangedPrefetchSource::new(RangedV2File::open(&p2).unwrap());
        for (a, b) in split_even(8_000, 4) {
            let mut s1 = v1.open_range(a, b).unwrap();
            let mut s2 = v2.open_range(a, b).unwrap();
            assert_eq!(collect(&mut *s1), &es[a as usize..b as usize]);
            assert_eq!(collect(&mut *s2), &es[a as usize..b as usize]);
        }
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn out_of_bounds_ranges_rejected() {
        let es = edges(100);
        let path = tmpfile("oob", "bel");
        write_binary_edge_list(&path, 4096, es.iter().copied()).unwrap();
        let src = RangedV1File::open(&path).unwrap();
        assert!(src.open_range(0, 101).is_err());
        assert!(src.open_range(60, 50).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_range_yields_nothing() {
        let es = edges(100);
        let path = tmpfile("emptyrange", "bel2");
        crate::v2::write_v2_edge_list(&path, 4096, es.iter().copied(), 32).unwrap();
        let src = RangedV2File::open(&path).unwrap();
        let mut s = src.open_range(50, 50).unwrap();
        assert_eq!(s.next_edge().unwrap(), None);
        std::fs::remove_file(&path).ok();
    }
}
