//! Double-buffered prefetching: overlap disk reads with partitioning CPU.
//!
//! The paper's read-process loop is strictly serial — each pass pays
//! `io_time + cpu_time`. [`PrefetchReader`] moves the reading onto a
//! background thread: the worker fills fixed-size edge chunks while the
//! partitioner consumes the previous chunk, so a pass costs
//! `max(io_time, cpu_time)` plus one chunk of latency.
//!
//! Buffers cycle between the two threads (classic double buffering — the
//! default is 2 in-flight chunks, configurable): the consumer returns a
//! drained chunk to the worker instead of allocating, so steady-state
//! memory is `buffers × chunk_edges × 8` bytes regardless of graph size.
//!
//! Any [`ChunkSource`] can feed the worker; sources for v1 (`.bel`) and v2
//! (`TPSBEL2`) files are provided. `reset` is a generation bump: stale
//! chunks from an abandoned pass are recycled on receipt, so multi-pass
//! algorithms (the 2PS-L degree/clustering/partitioning passes) observe the
//! exact same edge order every pass with no worker restart.

use std::io;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::thread::JoinHandle;

use tps_graph::formats::binary as v1;
use tps_graph::stream::EdgeStream;
use tps_graph::types::{Edge, GraphInfo};

use crate::v2::V2EdgeFile;

/// A resettable producer of edge chunks, consumed from a worker thread.
pub trait ChunkSource: Send {
    /// Rewind to the start of the stream.
    fn reset(&mut self) -> io::Result<()>;

    /// Fill `buf` (already cleared) with up to `max_edges` edges.
    /// Returns the number of edges produced; 0 means end of pass.
    fn fill_chunk(&mut self, buf: &mut Vec<Edge>, max_edges: usize) -> io::Result<usize>;

    /// Graph summary, if known.
    fn info(&self) -> Option<GraphInfo> {
        None
    }
}

/// A [`ChunkSource`] over a v1 `.bel` file, reading whole chunks with a
/// single large `read` per chunk.
pub struct V1ChunkSource {
    file: std::fs::File,
    info: GraphInfo,
    remaining: u64,
    bytes: Vec<u8>,
}

impl V1ChunkSource {
    /// Open `path` and validate the v1 header.
    pub fn open<P: AsRef<std::path::Path>>(path: P) -> io::Result<Self> {
        let mut file = std::fs::File::open(path)?;
        // Leaves the cursor at the first record (offset HEADER_LEN).
        let info = v1::read_header(&mut file)?;
        Ok(V1ChunkSource {
            file,
            remaining: info.num_edges,
            info,
            bytes: Vec::new(),
        })
    }
}

impl ChunkSource for V1ChunkSource {
    fn reset(&mut self) -> io::Result<()> {
        use std::io::{Seek, SeekFrom};
        self.file.seek(SeekFrom::Start(v1::HEADER_LEN))?;
        self.remaining = self.info.num_edges;
        Ok(())
    }

    fn fill_chunk(&mut self, buf: &mut Vec<Edge>, max_edges: usize) -> io::Result<usize> {
        use std::io::Read;
        let n = (self.remaining).min(max_edges as u64) as usize;
        if n == 0 {
            return Ok(0);
        }
        self.bytes.clear();
        self.bytes.resize(n * v1::EDGE_RECORD_LEN as usize, 0);
        self.file.read_exact(&mut self.bytes)?;
        // Bulk parse: `extend` over an exact-size chunk iterator keeps the
        // loop free of per-edge growth checks and lets it vectorize.
        buf.reserve(n);
        buf.extend(
            self.bytes
                .chunks_exact(v1::EDGE_RECORD_LEN as usize)
                .map(|rec| Edge {
                    src: u32::from_le_bytes(rec[0..4].try_into().unwrap()),
                    dst: u32::from_le_bytes(rec[4..8].try_into().unwrap()),
                }),
        );
        self.remaining -= n as u64;
        Ok(n)
    }

    fn info(&self) -> Option<GraphInfo> {
        Some(self.info)
    }
}

/// A [`ChunkSource`] over a v2 chunked file (one format chunk per fill).
pub struct V2ChunkSource {
    file: V2EdgeFile,
}

impl V2ChunkSource {
    /// Open `path` and validate the v2 layout.
    pub fn open<P: AsRef<std::path::Path>>(path: P) -> io::Result<Self> {
        Ok(V2ChunkSource {
            file: V2EdgeFile::open(path)?,
        })
    }
}

impl ChunkSource for V2ChunkSource {
    fn reset(&mut self) -> io::Result<()> {
        EdgeStream::reset(&mut self.file)
    }

    fn fill_chunk(&mut self, buf: &mut Vec<Edge>, _max_edges: usize) -> io::Result<usize> {
        // v2 chunks are the natural prefetch unit; `max_edges` only sizes
        // the initial buffer allocation.
        self.file.next_chunk_into(buf)
    }

    fn info(&self) -> Option<GraphInfo> {
        Some(self.file.info())
    }
}

/// Tuning knobs for [`PrefetchReader`].
#[derive(Clone, Copy, Debug)]
pub struct PrefetchConfig {
    /// Edges per chunk buffer (v2 sources use the file's own chunking).
    pub chunk_edges: usize,
    /// Buffers cycling between worker and consumer (≥ 2 for overlap).
    pub buffers: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            chunk_edges: 1 << 16,
            buffers: 2,
        }
    }
}

enum Cmd {
    /// Start (or restart) a pass at the given generation.
    Start(u64),
    /// Return a drained buffer to the worker.
    Recycle(Vec<Edge>),
}

struct Msg {
    generation: u64,
    /// `Ok(Some(chunk))` mid-pass, `Ok(None)` at end of pass.
    payload: io::Result<Option<Vec<Edge>>>,
}

fn worker_loop<S: ChunkSource>(
    mut source: S,
    cfg: PrefetchConfig,
    cmd_rx: Receiver<Cmd>,
    data_tx: Sender<Msg>,
) {
    let mut pool: Vec<Vec<Edge>> = (0..cfg.buffers.max(2))
        .map(|_| Vec::with_capacity(cfg.chunk_edges))
        .collect();
    let mut pending: Option<u64> = None;
    loop {
        let generation = match pending.take() {
            Some(g) => g,
            None => match cmd_rx.recv() {
                Ok(Cmd::Start(g)) => g,
                Ok(Cmd::Recycle(b)) => {
                    pool.push(b);
                    continue;
                }
                Err(_) => return, // consumer dropped
            },
        };
        if let Err(e) = source.reset() {
            let _ = data_tx.send(Msg {
                generation,
                payload: Err(e),
            });
            continue;
        }
        'pass: loop {
            // Acquire a buffer, aborting the pass if a newer Start arrives.
            let mut buf = loop {
                if let Some(b) = pool.pop() {
                    break b;
                }
                match cmd_rx.recv() {
                    Ok(Cmd::Recycle(b)) => pool.push(b),
                    Ok(Cmd::Start(g)) => {
                        pending = Some(g);
                        break 'pass;
                    }
                    Err(_) => return,
                }
            };
            buf.clear();
            match source.fill_chunk(&mut buf, cfg.chunk_edges) {
                Ok(0) => {
                    pool.push(buf);
                    let _ = data_tx.send(Msg {
                        generation,
                        payload: Ok(None),
                    });
                    break 'pass;
                }
                Ok(_) => {
                    if data_tx
                        .send(Msg {
                            generation,
                            payload: Ok(Some(buf)),
                        })
                        .is_err()
                    {
                        return;
                    }
                }
                Err(e) => {
                    pool.push(buf);
                    let _ = data_tx.send(Msg {
                        generation,
                        payload: Err(e),
                    });
                    break 'pass;
                }
            }
            // A reset may overtake a long pass; check without blocking.
            match cmd_rx.try_recv() {
                Ok(Cmd::Recycle(b)) => pool.push(b),
                Ok(Cmd::Start(g)) => {
                    pending = Some(g);
                    break 'pass;
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => return,
            }
        }
    }
}

/// A background-thread prefetching [`EdgeStream`] over any [`ChunkSource`].
pub struct PrefetchReader {
    cmd_tx: Option<Sender<Cmd>>,
    data_rx: Receiver<Msg>,
    handle: Option<JoinHandle<()>>,
    generation: u64,
    current: Vec<Edge>,
    pos: usize,
    pass_done: bool,
    info: Option<GraphInfo>,
}

impl PrefetchReader {
    /// Spawn the worker over `source` and begin prefetching the first pass.
    pub fn new<S: ChunkSource + 'static>(source: S, cfg: PrefetchConfig) -> Self {
        let info = source.info();
        let (cmd_tx, cmd_rx) = std::sync::mpsc::channel();
        let (data_tx, data_rx) = std::sync::mpsc::channel();
        let handle = std::thread::Builder::new()
            .name("tps-io-prefetch".into())
            .spawn(move || worker_loop(source, cfg, cmd_rx, data_tx))
            .expect("spawn prefetch worker");
        let _ = cmd_tx.send(Cmd::Start(0));
        PrefetchReader {
            cmd_tx: Some(cmd_tx),
            data_rx,
            handle: Some(handle),
            generation: 0,
            current: Vec::new(),
            pos: 0,
            pass_done: false,
            info,
        }
    }

    /// Prefetch a v1 `.bel` file with the default configuration.
    pub fn open_v1<P: AsRef<std::path::Path>>(path: P) -> io::Result<Self> {
        Ok(PrefetchReader::new(
            V1ChunkSource::open(path)?,
            PrefetchConfig::default(),
        ))
    }

    /// Prefetch a v2 chunked file with the default configuration.
    pub fn open_v2<P: AsRef<std::path::Path>>(path: P) -> io::Result<Self> {
        Ok(PrefetchReader::new(
            V2ChunkSource::open(path)?,
            PrefetchConfig::default(),
        ))
    }

    fn send(&self, cmd: Cmd) -> io::Result<()> {
        self.cmd_tx
            .as_ref()
            .expect("prefetch worker already shut down")
            .send(cmd)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "prefetch worker exited"))
    }
}

impl EdgeStream for PrefetchReader {
    fn reset(&mut self) -> io::Result<()> {
        if !self.current.is_empty() {
            let stale = std::mem::take(&mut self.current);
            let _ = self.send(Cmd::Recycle(stale));
        }
        self.pos = 0;
        self.pass_done = false;
        self.generation += 1;
        self.send(Cmd::Start(self.generation))
    }

    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        loop {
            if self.pos < self.current.len() {
                let e = self.current[self.pos];
                self.pos += 1;
                return Ok(Some(e));
            }
            if self.pass_done {
                return Ok(None);
            }
            if !self.current.is_empty() {
                let drained = std::mem::take(&mut self.current);
                self.pos = 0;
                let _ = self.send(Cmd::Recycle(drained));
            }
            let msg = self
                .data_rx
                .recv()
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "prefetch worker exited"))?;
            if msg.generation != self.generation {
                // Chunk from an abandoned pass: recycle and keep waiting.
                if let Ok(Some(stale)) = msg.payload {
                    let _ = self.send(Cmd::Recycle(stale));
                }
                continue;
            }
            match msg.payload {
                Ok(Some(chunk)) => {
                    self.current = chunk;
                    self.pos = 0;
                }
                Ok(None) => {
                    self.pass_done = true;
                    return Ok(None);
                }
                Err(e) => {
                    self.pass_done = true;
                    return Err(e);
                }
            }
        }
    }

    fn len_hint(&self) -> Option<u64> {
        self.info.map(|i| i.num_edges)
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        self.info.map(|i| i.num_vertices)
    }
}

impl Drop for PrefetchReader {
    fn drop(&mut self) {
        // Closing the command channel stops the worker at its next recv.
        drop(self.cmd_tx.take());
        // Drain data so a worker blocked on send (unbounded mpsc never
        // blocks, but be robust to future bounded channels) can exit.
        while self.data_rx.try_recv().is_ok() {}
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use tps_graph::stream::for_each_edge;

    fn tmpfile(tag: &str, ext: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "tps-io-prefetch-{tag}-{}.{ext}",
            std::process::id()
        ))
    }

    fn edges(n: u32) -> Vec<Edge> {
        (0..n)
            .map(|i| Edge::new(i % 321, (i * 17 + 3) % 4096))
            .collect()
    }

    #[test]
    fn v1_prefetch_matches_file_order_across_passes() {
        let path = tmpfile("v1", "bel");
        let es = edges(50_000);
        v1::write_binary_edge_list(&path, 4096, es.iter().copied()).unwrap();
        let mut r = PrefetchReader::new(
            V1ChunkSource::open(&path).unwrap(),
            PrefetchConfig {
                chunk_edges: 777,
                buffers: 3,
            },
        );
        assert_eq!(r.len_hint(), Some(50_000));
        assert_eq!(r.num_vertices_hint(), Some(4096));
        for _pass in 0..3 {
            let mut seen = Vec::new();
            for_each_edge(&mut r, |e| seen.push(e)).unwrap();
            assert_eq!(seen, es);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_prefetch_matches_file_order() {
        let path = tmpfile("v2", "bel2");
        let es = edges(20_000);
        crate::v2::write_v2_edge_list(&path, 4096, es.iter().copied(), 1000).unwrap();
        let mut r = PrefetchReader::open_v2(&path).unwrap();
        let mut seen = Vec::new();
        for_each_edge(&mut r, |e| seen.push(e)).unwrap();
        assert_eq!(seen, es);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_mid_pass_restarts_cleanly() {
        let path = tmpfile("midreset", "bel");
        let es = edges(10_000);
        v1::write_binary_edge_list(&path, 4096, es.iter().copied()).unwrap();
        let mut r = PrefetchReader::new(
            V1ChunkSource::open(&path).unwrap(),
            PrefetchConfig {
                chunk_edges: 64,
                buffers: 2,
            },
        );
        // Consume a fragment of the first pass, then reset repeatedly.
        for _ in 0..3 {
            for _ in 0..100 {
                r.next_edge().unwrap().expect("stream too short");
            }
            r.reset().unwrap();
        }
        let mut seen = Vec::new();
        for_each_edge(&mut r, |e| seen.push(e)).unwrap();
        assert_eq!(seen, es);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let path = tmpfile("empty", "bel");
        v1::write_binary_edge_list(&path, 0, std::iter::empty()).unwrap();
        let mut r = PrefetchReader::open_v1(&path).unwrap();
        assert_eq!(r.next_edge().unwrap(), None);
        r.reset().unwrap();
        assert_eq!(r.next_edge().unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_mid_pass_does_not_hang() {
        let path = tmpfile("drop", "bel");
        let es = edges(30_000);
        v1::write_binary_edge_list(&path, 4096, es.iter().copied()).unwrap();
        let mut r = PrefetchReader::open_v1(&path).unwrap();
        r.next_edge().unwrap();
        drop(r); // must join the worker without deadlock
    }
}
