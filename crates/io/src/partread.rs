//! Loading a finished partitioning back from its run output.
//!
//! `tps partition --out DIR` (and the dist coordinator) materialise one
//! standard v1 `.bel` file per partition, named `<stem>.part<i>.bel`. The
//! serving daemon starts from exactly these files: this module discovers
//! them, streams every edge back with its partition id, and reconstructs
//! the vertex→partition replication matrix — the read-side inputs of
//! `tps-serve`'s packed tables.

use std::io;
use std::path::{Path, PathBuf};

use tps_graph::formats::binary::BinaryEdgeFile;
use tps_graph::stream::EdgeStream;
use tps_graph::types::{Edge, PartitionId};
use tps_metrics::bitmatrix::ReplicationMatrix;

/// A partitioning read back from a `--out` directory.
#[derive(Clone, Debug)]
pub struct LoadedPartition {
    /// Number of partitions (= number of `.part<i>.bel` files).
    pub k: u32,
    /// Vertex-id space from the part-file headers (all agree).
    pub num_vertices: u64,
    /// The common file stem (input graph name).
    pub stem: String,
    /// Every edge with its partition, in per-partition file order.
    pub assignments: Vec<(Edge, PartitionId)>,
    /// Edges per partition (the per-file edge counts).
    pub part_counts: Vec<u64>,
}

impl LoadedPartition {
    /// Total edge count.
    pub fn num_edges(&self) -> u64 {
        self.assignments.len() as u64
    }

    /// Reconstruct the vertex→partition replication bit matrix from the
    /// loaded assignments.
    pub fn replication_matrix(&self) -> ReplicationMatrix {
        let mut m = ReplicationMatrix::new(self.num_vertices, self.k);
        for &(e, p) in &self.assignments {
            m.set(e.src, p);
            m.set(e.dst, p);
        }
        m
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Split `name` (a file name) as `<stem>.part<i>.bel`, if it matches.
fn parse_part_name(name: &str) -> Option<(&str, u32)> {
    let rest = name.strip_suffix(".bel")?;
    let (stem, idx) = rest.rsplit_once(".part")?;
    let idx: u32 = idx.parse().ok()?;
    (!stem.is_empty()).then_some((stem, idx))
}

/// Load every `<stem>.part<i>.bel` file in `dir` back into memory.
///
/// Fails if the directory holds no part files, if the indices are not the
/// contiguous range `0..k`, if two stems mix, or if the per-file vertex
/// counts disagree.
pub fn load_partition_dir(dir: &Path) -> io::Result<LoadedPartition> {
    let mut found: Vec<(u32, String, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some((stem, idx)) = parse_part_name(name) {
            found.push((idx, stem.to_string(), entry.path()));
        }
    }
    if found.is_empty() {
        return Err(bad(format!(
            "no <stem>.part<i>.bel files in {}",
            dir.display()
        )));
    }
    found.sort_by_key(|&(idx, _, _)| idx);
    let stem = found[0].1.clone();
    let k = found.len() as u32;
    for (want, (idx, s, path)) in found.iter().enumerate() {
        if *idx != want as u32 {
            return Err(bad(format!(
                "partition files are not contiguous: expected index {want}, found {} ({})",
                idx,
                path.display()
            )));
        }
        if *s != stem {
            return Err(bad(format!(
                "mixed stems in {}: {stem:?} vs {s:?}",
                dir.display()
            )));
        }
    }

    let mut num_vertices = 0u64;
    let mut assignments = Vec::new();
    let mut part_counts = Vec::with_capacity(k as usize);
    for (idx, _, path) in &found {
        let mut file = BinaryEdgeFile::open(path)?;
        let nv = file
            .num_vertices_hint()
            .ok_or_else(|| bad(format!("{} has no vertex count", path.display())))?;
        if *idx == 0 {
            num_vertices = nv;
        } else if nv != num_vertices {
            return Err(bad(format!(
                "{} disagrees on the vertex count ({nv} vs {num_vertices})",
                path.display()
            )));
        }
        let before = assignments.len();
        while let Some(e) = file.next_edge()? {
            assignments.push((e, *idx));
        }
        part_counts.push((assignments.len() - before) as u64);
    }
    Ok(LoadedPartition {
        k,
        num_vertices,
        stem,
        assignments,
        part_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::sink::FileSink;

    #[test]
    fn part_name_parsing() {
        assert_eq!(parse_part_name("ok.part0.bel"), Some(("ok", 0)));
        assert_eq!(parse_part_name("a.b.part12.bel"), Some(("a.b", 12)));
        assert_eq!(parse_part_name("ok.part0.bel2"), None);
        assert_eq!(parse_part_name("ok.bel"), None);
        assert_eq!(parse_part_name(".part0.bel"), None);
        assert_eq!(parse_part_name("ok.partx.bel"), None);
    }

    #[test]
    fn roundtrips_a_file_sink() {
        let dir = std::env::temp_dir().join(format!("tps-partread-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let k = 4u32;
        let edges: Vec<(Edge, PartitionId)> = (0..1000u32)
            .map(|i| (Edge::new(i % 57, 57 + (i * 13) % 91), i % k))
            .collect();
        let mut sink = FileSink::create(&dir, "g", k, 256).unwrap();
        for &(e, p) in &edges {
            tps_core::sink::AssignmentSink::assign(&mut sink, e, p).unwrap();
        }
        sink.finish().unwrap();

        let loaded = load_partition_dir(&dir).unwrap();
        assert_eq!(loaded.k, k);
        assert_eq!(loaded.num_vertices, 256);
        assert_eq!(loaded.stem, "g");
        assert_eq!(loaded.num_edges(), edges.len() as u64);
        // Same multiset of assignments (file order groups by partition).
        let mut want = edges.clone();
        let mut got = loaded.assignments.clone();
        let key = |&(e, p): &(Edge, PartitionId)| (p, e.src, e.dst);
        want.sort_unstable_by_key(key);
        got.sort_unstable_by_key(key);
        assert_eq!(want, got);
        // The matrix covers both endpoints of every edge.
        let m = loaded.replication_matrix();
        for &(e, p) in &edges {
            assert!(m.get(e.src, p) && m.get(e.dst, p));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
