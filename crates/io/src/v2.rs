//! The compressed chunked edge-list format, version 2 ("TPSBEL2").
//!
//! v1 (`TPSBEL1`, see `tps_graph::formats::binary`) spends a fixed 8 bytes
//! per edge. Real graph ids are skewed toward small values (crawl order,
//! R-MAT quadrant bias, community grouping), which a variable-length
//! encoding exploits: v2 stores each endpoint as a LEB128 varint, cutting
//! the paper's multi-pass streaming cost on every pass. Edges are grouped
//! into independently decodable **chunks** with a checksummed header and an
//! **index footer**, so readers can (a) detect truncation/corruption per
//! chunk rather than mid-stream, (b) seek to any chunk, and (c) scan chunks
//! in parallel (degree/clustering passes are per-edge commutative).
//!
//! ## Layout
//!
//! ```text
//! offset  size   field
//! 0       8      magic  b"TPSBEL2\0"
//! 8       8      num_vertices (u64 le)
//! 16      8      num_edges    (u64 le)
//! 24      4      edges_per_chunk (u32 le)
//! 28      4      flags (u32 le; 0 = LEB128 varint pairs)
//! 32      ...    chunks
//! ...     16*C   index: per chunk { offset u64, edge_count u32, payload_len u32 }
//! end-24  24     trailer { index_offset u64, num_chunks u64, magic b"TPS2IDX\0" }
//! ```
//!
//! Each chunk is `{ edge_count u32, payload_len u32, checksum u32 }` followed
//! by `payload_len` bytes of varint pairs `(src, dst)`. The checksum is
//! FNV-1a over the payload. The edge **order is preserved exactly** — the
//! paper's algorithms require identical order across passes, and the v1↔v2
//! converters are order-preserving by construction.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tps_graph::formats::binary::BinaryEdgeFile;
use tps_graph::stream::EdgeStream;
use tps_graph::types::{Edge, GraphInfo};

use crate::mmap::Mmap;

/// Magic bytes opening a v2 file.
pub const MAGIC_V2: [u8; 8] = *b"TPSBEL2\0";
/// Magic bytes closing the trailer.
pub const TRAILER_MAGIC: [u8; 8] = *b"TPS2IDX\0";
/// Fixed header length.
pub const HEADER_LEN_V2: u64 = 32;
/// Per-chunk header length (`edge_count`, `payload_len`, `checksum`).
pub const CHUNK_HEADER_LEN: u64 = 12;
/// Bytes per index entry.
pub const INDEX_ENTRY_LEN: u64 = 16;
/// Trailer length.
pub const TRAILER_LEN: u64 = 24;
/// Default edges per chunk (64 Ki edges ≈ 0.5 MiB of v1 payload).
pub const DEFAULT_CHUNK_EDGES: u32 = 1 << 16;
/// Largest permitted `edges_per_chunk`: a varint pair is at most 10 bytes,
/// and a chunk's `payload_len` must fit in u32.
pub const MAX_CHUNK_EDGES: u32 = u32::MAX / 10;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// FNV-1a (32-bit) — the chunk payload checksum.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Append `v` as a LEB128 varint (1–5 bytes for u32).
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a LEB128 varint at `pos`, advancing it.
#[inline]
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> io::Result<u32> {
    let mut value: u32 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = bytes
            .get(*pos)
            .ok_or_else(|| invalid("truncated varint in chunk payload"))?;
        *pos += 1;
        if shift == 28 && byte > 0x0F {
            return Err(invalid("varint overflows u32"));
        }
        value |= ((byte & 0x7F) as u32) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 28 {
            return Err(invalid("varint longer than 5 bytes"));
        }
    }
}

/// Location and size of one chunk, as recorded in the index footer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Absolute file offset of the chunk header.
    pub offset: u64,
    /// Edges in the chunk.
    pub edge_count: u32,
    /// Payload bytes (excluding the 12-byte chunk header).
    pub payload_len: u32,
}

/// Parsed v2 header + index.
#[derive(Clone, Debug)]
pub struct V2Layout {
    /// Graph summary.
    pub info: GraphInfo,
    /// Writer's target edges per chunk (the last chunk may be shorter).
    pub edges_per_chunk: u32,
    /// Encoding flags (0 = varint pairs).
    pub flags: u32,
    /// Chunk directory in stream order.
    pub chunks: Vec<ChunkMeta>,
}

static IO_V2_CHUNKS_ENCODED: tps_obs::Counter = tps_obs::Counter::new("io.v2.chunks_encoded");
static IO_V2_CHUNKS_DECODED: tps_obs::Counter = tps_obs::Counter::new("io.v2.chunks_decoded");

/// Encoded length of `v` as a LEB128 varint (1–5 bytes).
#[inline(always)]
fn varint_len(v: u32) -> usize {
    // `v | 1` keeps the width ≥ 1 so zero still encodes in one byte.
    let bits = 32 - (v | 1).leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Spread the 7-bit groups of `v` into the low bytes of a word, low group
/// first — the LEB128 byte layout minus continuation bits.
#[inline(always)]
fn spread7(v: u32) -> u64 {
    let v = v as u64;
    (v & 0x7F)
        | ((v & (0x7F << 7)) << 1)
        | ((v & (0x7F << 14)) << 2)
        | ((v & (0x7F << 21)) << 3)
        | ((v & (0x0F << 28)) << 4)
}

/// Continuation-bit mask for a `len`-byte varint: bit 7 of every byte but
/// the last.
#[inline(always)]
fn cont_mask(len: usize) -> u64 {
    0x8080_8080_8080_8080u64 & ((1u64 << (8 * (len - 1))) - 1)
}

/// Encode `edges` into a chunk payload. Branchless bulk path: each varint
/// is assembled in a register (length from `leading_zeros`, groups spread
/// with shifts) and appended as one slice copy — bit-identical to
/// [`write_varint`] per edge, which the golden-layout tests pin.
pub fn encode_payload(edges: &[Edge], out: &mut Vec<u8>) {
    out.clear();
    // Worst case 5 + 5 bytes per edge; one reservation keeps the hot loop
    // free of growth checks.
    out.reserve(edges.len() * 10);
    for e in edges {
        let (ls, ld) = (varint_len(e.src), varint_len(e.dst));
        let ws = spread7(e.src) | cont_mask(ls);
        let wd = spread7(e.dst) | cont_mask(ld);
        out.extend_from_slice(&ws.to_le_bytes()[..ls]);
        out.extend_from_slice(&wd.to_le_bytes()[..ld]);
    }
}

/// Bytes past the decode position the SWAR fast path may touch in one
/// iteration: two unaligned 8-byte loads (src + dst varints).
const SWAR_SLACK: usize = 16;

/// Unaligned 8-byte little-endian load.
#[inline(always)]
fn load_u64(payload: &[u8], pos: usize) -> u64 {
    debug_assert!(pos + 8 <= payload.len());
    // SAFETY: every caller guards `pos + 8 <= payload.len()` (the fast-path
    // loops check `pos + SWAR_SLACK`); unaligned reads of byte data are
    // valid at any offset.
    u64::from_le(unsafe { (payload.as_ptr().add(pos) as *const u64).read_unaligned() })
}

/// Extract the value of a `len`-byte varint (`len <= 5`) sitting in the low
/// bytes of `word`: mask the consumed bytes, strip the continuation bits,
/// then close the 1-bit gaps so byte i contributes value bits 7i..7i+7.
#[inline(always)]
fn swar_extract(word: u64, len: usize) -> u64 {
    let x = (word & (u64::MAX >> (64 - 8 * len))) & 0x7F7F_7F7F_7F7F_7F7F;
    (x & 0x7F)
        | ((x >> 1) & (0x7F << 7))
        | ((x >> 2) & (0x7F << 14))
        | ((x >> 3) & (0x7F << 21))
        | ((x >> 4) & (0x7F << 28))
}

/// SWAR decode of one `(src, dst)` varint pair at `pos`.
///
/// The caller guarantees `pos + SWAR_SLACK <= payload.len()`. Fast path:
/// one unaligned 8-byte load covers both varints (a skewed-id pair averages
/// ~5 bytes) — the two clear continuation bits located with
/// `!word & 0x8080…` + `trailing_zeros` give both lengths at once, and the
/// values are extracted branchlessly with [`swar_extract`]. Pairs spanning
/// more than 8 bytes take a second load. Returns `None` on malformed input
/// (varint longer than 5 bytes, or a 5-byte varint overflowing u32); the
/// caller re-decodes at the same position with the checked scalar path so
/// the error message stays byte-identical to [`read_varint`]'s.
#[inline(always)]
fn swar_pair(payload: &[u8], pos: usize) -> Option<(Edge, usize)> {
    let w = load_u64(payload, pos);
    let stop = !w & 0x8080_8080_8080_8080;
    let stop2 = stop & stop.wrapping_sub(1);
    if stop2 != 0 {
        // Both varint ends are inside this word.
        let l1 = (stop.trailing_zeros() as usize + 1) >> 3;
        let l2 = ((stop2.trailing_zeros() as usize + 1) >> 3) - l1;
        if l1 > 5 || l2 > 5 {
            return None;
        }
        let src = swar_extract(w, l1);
        let dst = swar_extract(w >> (8 * l1), l2);
        if src > u32::MAX as u64 || dst > u32::MAX as u64 {
            return None;
        }
        let e = Edge {
            src: src as u32,
            dst: dst as u32,
        };
        return Some((e, pos + l1 + l2));
    }
    if stop == 0 {
        // All 8 bytes carry continuation bits: longer than any valid varint.
        return None;
    }
    // Long pair: the second varint needs its own load.
    let l1 = (stop.trailing_zeros() as usize + 1) >> 3;
    if l1 > 5 {
        return None;
    }
    let src = swar_extract(w, l1);
    let w1 = load_u64(payload, pos + l1);
    let stop1 = !w1 & 0x8080_8080_8080_8080;
    if stop1 == 0 {
        return None;
    }
    let l2 = (stop1.trailing_zeros() as usize + 1) >> 3;
    if l2 > 5 {
        return None;
    }
    let dst = swar_extract(w1, l2);
    if src > u32::MAX as u64 || dst > u32::MAX as u64 {
        return None;
    }
    let e = Edge {
        src: src as u32,
        dst: dst as u32,
    };
    Some((e, pos + l1 + l2))
}

#[inline]
fn check_trailing(payload: &[u8], pos: usize, count: u32) -> io::Result<()> {
    if pos != payload.len() {
        return Err(invalid(format!(
            "chunk payload has {} trailing bytes after {count} edges",
            payload.len() - pos
        )));
    }
    Ok(())
}

/// Decode `count` edges from a chunk payload into `out` with the checked
/// per-byte scalar path. This is the reference decoder: the SWAR bulk path
/// is pinned byte-exact against it (same edges, same errors) by the
/// `decode_fuzz` differential suite.
pub fn decode_payload_scalar(payload: &[u8], count: u32, out: &mut Vec<Edge>) -> io::Result<()> {
    let mut pos = 0usize;
    for _ in 0..count {
        let src = read_varint(payload, &mut pos)?;
        let dst = read_varint(payload, &mut pos)?;
        out.push(Edge { src, dst });
    }
    check_trailing(payload, pos, count)
}

/// Decode `count` edges from a chunk payload into `out` (appended), SWAR
/// fast path + checked scalar tail. Behaviour (edges, error kinds and
/// messages) is identical to [`decode_payload_scalar`].
pub fn decode_payload(payload: &[u8], count: u32, out: &mut Vec<Edge>) -> io::Result<()> {
    decode_chunk_payload(payload, count, None, out)
}

/// Decode a chunk payload, optionally verifying its FNV-1a checksum in the
/// same traversal.
///
/// With `checksum: Some(sum)` the checksum chain is interleaved with the
/// SWAR decode of the bytes it just covered — one pass over the payload
/// instead of a verify pass followed by a decode pass, with the serial FNV
/// multiply chain overlapping the independent decode work. Error behaviour
/// matches the verify-then-decode sequence exactly: a checksum mismatch is
/// reported first even when the payload is also structurally malformed,
/// then varint errors, then the trailing-bytes check. On error `out` may
/// hold partially decoded edges.
pub fn decode_chunk_payload(
    payload: &[u8],
    count: u32,
    checksum: Option<u32>,
    out: &mut Vec<Edge>,
) -> io::Result<()> {
    let n = count as usize;
    out.reserve(n);
    let mut h: u32 = 0x811C_9DC5;
    let mut pos = 0usize;
    let mut i = 0usize;
    if checksum.is_some() {
        while i < n && pos + SWAR_SLACK <= payload.len() {
            let Some((e, next)) = swar_pair(payload, pos) else {
                break;
            };
            let mut j = pos;
            while j < next {
                h = (h ^ payload[j] as u32).wrapping_mul(0x0100_0193);
                j += 1;
            }
            out.push(e);
            pos = next;
            i += 1;
        }
        // Whatever the fast loop did not cover (the tail, trailing bytes,
        // or everything after a malformed varint) still feeds the checksum:
        // it is defined over the whole payload.
        for &b in &payload[pos..] {
            h = (h ^ b as u32).wrapping_mul(0x0100_0193);
        }
    } else {
        while i < n && pos + SWAR_SLACK <= payload.len() {
            let Some((e, next)) = swar_pair(payload, pos) else {
                break;
            };
            out.push(e);
            pos = next;
            i += 1;
        }
    }
    // Checked scalar tail: the last few edges (within SWAR_SLACK of the
    // payload end) and the canonical error for malformed input.
    let mut decode_err = None;
    while i < n {
        let pair = read_varint(payload, &mut pos)
            .and_then(|src| read_varint(payload, &mut pos).map(|dst| Edge { src, dst }));
        match pair {
            Ok(e) => {
                out.push(e);
                i += 1;
            }
            Err(err) => {
                decode_err = Some(err);
                break;
            }
        }
    }
    if let Some(sum) = checksum {
        if h != sum {
            return Err(invalid("chunk checksum mismatch (corrupt payload)"));
        }
    }
    if let Some(err) = decode_err {
        return Err(err);
    }
    check_trailing(payload, pos, count)
}

/// Streaming writer producing a v2 file.
pub struct V2Writer {
    w: BufWriter<File>,
    num_vertices: u64,
    edges_per_chunk: u32,
    pending: Vec<Edge>,
    payload: Vec<u8>,
    chunks: Vec<ChunkMeta>,
    offset: u64,
    num_edges: u64,
}

impl V2Writer {
    /// Create `path`, writing a header with a zero edge count (patched by
    /// [`V2Writer::finish`]).
    pub fn create<P: AsRef<Path>>(
        path: P,
        num_vertices: u64,
        edges_per_chunk: u32,
    ) -> io::Result<Self> {
        if edges_per_chunk == 0 {
            return Err(invalid("edges_per_chunk must be positive"));
        }
        if edges_per_chunk > MAX_CHUNK_EDGES {
            return Err(invalid(format!(
                "edges_per_chunk {edges_per_chunk} exceeds the maximum {MAX_CHUNK_EDGES} \
                 (chunk payload length must fit in u32)"
            )));
        }
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(&MAGIC_V2)?;
        w.write_all(&num_vertices.to_le_bytes())?;
        w.write_all(&0u64.to_le_bytes())?;
        w.write_all(&edges_per_chunk.to_le_bytes())?;
        w.write_all(&0u32.to_le_bytes())?;
        Ok(V2Writer {
            w,
            num_vertices,
            edges_per_chunk,
            // Reserve lazily beyond 1 Mi edges; huge chunk sizes should not
            // pre-commit gigabytes before the first push.
            pending: Vec::with_capacity(edges_per_chunk.min(1 << 20) as usize),
            payload: Vec::new(),
            chunks: Vec::new(),
            offset: HEADER_LEN_V2,
            num_edges: 0,
        })
    }

    /// Append one edge.
    pub fn push(&mut self, edge: Edge) -> io::Result<()> {
        self.pending.push(edge);
        self.num_edges += 1;
        if self.pending.len() as u32 >= self.edges_per_chunk {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        IO_V2_CHUNKS_ENCODED.incr();
        encode_payload(&self.pending, &mut self.payload);
        let meta = ChunkMeta {
            offset: self.offset,
            edge_count: self.pending.len() as u32,
            payload_len: self.payload.len() as u32,
        };
        self.w.write_all(&meta.edge_count.to_le_bytes())?;
        self.w.write_all(&meta.payload_len.to_le_bytes())?;
        self.w.write_all(&fnv1a32(&self.payload).to_le_bytes())?;
        self.w.write_all(&self.payload)?;
        self.offset += CHUNK_HEADER_LEN + meta.payload_len as u64;
        self.chunks.push(meta);
        self.pending.clear();
        Ok(())
    }

    /// Flush the tail chunk, write the index footer + trailer, patch the
    /// header edge count and close the file. Returns the graph summary.
    pub fn finish(mut self) -> io::Result<GraphInfo> {
        self.flush_chunk()?;
        let index_offset = self.offset;
        for c in &self.chunks {
            self.w.write_all(&c.offset.to_le_bytes())?;
            self.w.write_all(&c.edge_count.to_le_bytes())?;
            self.w.write_all(&c.payload_len.to_le_bytes())?;
        }
        self.w.write_all(&index_offset.to_le_bytes())?;
        self.w
            .write_all(&(self.chunks.len() as u64).to_le_bytes())?;
        self.w.write_all(&TRAILER_MAGIC)?;
        let mut file = self.w.into_inner()?;
        file.seek(SeekFrom::Start(16))?;
        file.write_all(&self.num_edges.to_le_bytes())?;
        file.flush()?;
        Ok(GraphInfo {
            num_vertices: self.num_vertices,
            num_edges: self.num_edges,
        })
    }
}

/// Write an edge iterator as a v2 file in one go.
pub fn write_v2_edge_list<P: AsRef<Path>>(
    path: P,
    num_vertices: u64,
    edges: impl IntoIterator<Item = Edge>,
    edges_per_chunk: u32,
) -> io::Result<GraphInfo> {
    let mut w = V2Writer::create(path, num_vertices, edges_per_chunk)?;
    for e in edges {
        w.push(e)?;
    }
    w.finish()
}

/// Parse and validate header, index and trailer of a v2 file.
pub fn read_layout(file: &mut File) -> io::Result<V2Layout> {
    let file_len = file.metadata()?.len();
    if file_len < HEADER_LEN_V2 + TRAILER_LEN {
        return Err(invalid("file too short for a TPSBEL2 header + trailer"));
    }
    let mut header = [0u8; HEADER_LEN_V2 as usize];
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(&mut header)?;
    if header[..8] != MAGIC_V2 {
        return Err(invalid("not a TPSBEL2 chunked edge list (bad magic)"));
    }
    let num_vertices = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let num_edges = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let edges_per_chunk = u32::from_le_bytes(header[24..28].try_into().unwrap());
    let flags = u32::from_le_bytes(header[28..32].try_into().unwrap());
    if flags != 0 {
        return Err(invalid(format!("unsupported TPSBEL2 flags {flags:#x}")));
    }
    if edges_per_chunk == 0 {
        return Err(invalid("edges_per_chunk must be positive"));
    }

    let mut trailer = [0u8; TRAILER_LEN as usize];
    file.seek(SeekFrom::Start(file_len - TRAILER_LEN))?;
    file.read_exact(&mut trailer)?;
    if trailer[16..24] != TRAILER_MAGIC {
        return Err(invalid(
            "missing TPS2IDX trailer (truncated or corrupt file)",
        ));
    }
    let index_offset = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
    let num_chunks = u64::from_le_bytes(trailer[8..16].try_into().unwrap());
    let expected_len = index_offset
        .checked_add(
            num_chunks
                .checked_mul(INDEX_ENTRY_LEN)
                .ok_or_else(|| invalid("chunk count overflow"))?,
        )
        .and_then(|v| v.checked_add(TRAILER_LEN))
        .ok_or_else(|| invalid("index offset overflow"))?;
    if expected_len != file_len || index_offset < HEADER_LEN_V2 {
        return Err(invalid(format!(
            "index trailer inconsistent with file size ({expected_len} != {file_len})"
        )));
    }

    file.seek(SeekFrom::Start(index_offset))?;
    let mut index_bytes = vec![0u8; (num_chunks * INDEX_ENTRY_LEN) as usize];
    file.read_exact(&mut index_bytes)?;
    let mut chunks = Vec::with_capacity(num_chunks as usize);
    let mut next_offset = HEADER_LEN_V2;
    let mut total_edges = 0u64;
    for entry in index_bytes.chunks_exact(INDEX_ENTRY_LEN as usize) {
        let meta = ChunkMeta {
            offset: u64::from_le_bytes(entry[0..8].try_into().unwrap()),
            edge_count: u32::from_le_bytes(entry[8..12].try_into().unwrap()),
            payload_len: u32::from_le_bytes(entry[12..16].try_into().unwrap()),
        };
        if meta.offset != next_offset || meta.edge_count == 0 {
            return Err(invalid("corrupt chunk index"));
        }
        next_offset += CHUNK_HEADER_LEN + meta.payload_len as u64;
        total_edges += meta.edge_count as u64;
        chunks.push(meta);
    }
    if next_offset != index_offset {
        return Err(invalid("chunk index does not cover the chunk region"));
    }
    if total_edges != num_edges {
        return Err(invalid(format!(
            "index sums to {total_edges} edges, header promises {num_edges}"
        )));
    }
    Ok(V2Layout {
        info: GraphInfo {
            num_vertices,
            num_edges,
        },
        edges_per_chunk,
        flags,
        chunks,
    })
}

/// Read + verify + decode the chunk described by `meta` from `r`, which must
/// be positioned at `meta.offset`. Decoded edges are appended to `out`.
/// `verify: false` skips the checksum for a chunk this open already proved
/// intact on an earlier pass.
pub(crate) fn read_chunk_at<R: Read>(
    r: &mut R,
    meta: ChunkMeta,
    verify: bool,
    scratch: &mut Vec<u8>,
    out: &mut Vec<Edge>,
) -> io::Result<()> {
    let mut header = [0u8; CHUNK_HEADER_LEN as usize];
    r.read_exact(&mut header)
        .map_err(|_| invalid("truncated chunk header"))?;
    let edge_count = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let payload_len = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let checksum = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if edge_count != meta.edge_count || payload_len != meta.payload_len {
        return Err(invalid("chunk header disagrees with index"));
    }
    // Grow-only scratch: `read_exact` overwrites the prefix it uses, so no
    // per-chunk zeroing of the buffer.
    let payload_len = payload_len as usize;
    if scratch.len() < payload_len {
        scratch.resize(payload_len, 0);
    }
    let payload = &mut scratch[..payload_len];
    r.read_exact(payload)
        .map_err(|_| invalid("truncated chunk payload"))?;
    IO_V2_CHUNKS_DECODED.incr();
    decode_chunk_payload(payload, edge_count, verify.then_some(checksum), out)
}

/// Decode the chunk described by `meta` from an in-memory byte view.
/// `verify: false` skips the checksum for a chunk this open already proved
/// intact on an earlier pass.
pub(crate) fn decode_chunk_slice(
    bytes: &[u8],
    meta: ChunkMeta,
    verify: bool,
    out: &mut Vec<Edge>,
) -> io::Result<()> {
    let start = meta.offset as usize;
    let end = start + (CHUNK_HEADER_LEN + meta.payload_len as u64) as usize;
    let chunk = bytes
        .get(start..end)
        .ok_or_else(|| invalid("chunk extends past end of file"))?;
    let edge_count = u32::from_le_bytes(chunk[0..4].try_into().unwrap());
    let payload_len = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
    let checksum = u32::from_le_bytes(chunk[8..12].try_into().unwrap());
    if edge_count != meta.edge_count || payload_len != meta.payload_len {
        return Err(invalid("chunk header disagrees with index"));
    }
    let payload = &chunk[CHUNK_HEADER_LEN as usize..];
    IO_V2_CHUNKS_DECODED.incr();
    decode_chunk_payload(payload, edge_count, verify.then_some(checksum), out)
}

/// Default budget for the per-open decoded-edge cache, in bytes.
///
/// Files whose decoded size (`num_edges * 8`) exceeds the budget stream
/// every pass from disk exactly as before; files that fit are decoded once
/// and every later pass is served from memory at raw `Vec<Edge>` scan
/// speed, skipping file I/O, checksumming, and varint decode entirely. The
/// paper's pipeline makes 4 sequential passes per partitioning run, so this
/// turns the decode cost from per-pass into per-open. Override
/// programmatically with [`set_decode_cache_budget`] (what a job-level
/// `--mem-budget-mb` split does) or, as a fallback when no programmatic
/// budget is set, with the `TPS_V2_DECODE_CACHE_MB` environment variable
/// (`0` disables caching).
pub const DECODE_CACHE_DEFAULT_BYTES: u64 = 64 << 20;

/// Programmatic decode-cache budget; `u64::MAX` means "unset, fall back to
/// the environment variable / default".
static DECODE_CACHE_OVERRIDE: AtomicU64 = AtomicU64::new(u64::MAX);

/// Set the decode-cache budget for every v2 file opened after this call.
///
/// Takes precedence over `TPS_V2_DECODE_CACHE_MB`; `0` disables caching.
/// The budget is consulted once per open (the cache is all-or-nothing per
/// file), so call this before opening inputs. A job's `--mem-budget-mb`
/// split routes its decode-cache share here.
pub fn set_decode_cache_budget(bytes: u64) {
    DECODE_CACHE_OVERRIDE.store(bytes, Ordering::Relaxed);
}

fn decode_cache_budget() -> u64 {
    let over = DECODE_CACHE_OVERRIDE.load(Ordering::Relaxed);
    if over != u64::MAX {
        return over;
    }
    match std::env::var("TPS_V2_DECODE_CACHE_MB") {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .map(|mb| mb << 20)
            .unwrap_or(DECODE_CACHE_DEFAULT_BYTES),
        Err(_) => DECODE_CACHE_DEFAULT_BYTES,
    }
}

/// Per-open decoded-edge cache: the first sequential pass appends each
/// chunk's edges here as it decodes them; once every chunk has been
/// absorbed, later passes serve from this flat buffer. All-or-nothing by
/// decoded size against the budget, decided at open from the header — no
/// partial caching, no mid-stream eviction, so peak memory is known up
/// front.
struct DecodeCache {
    edges: Vec<Edge>,
    /// Chunks absorbed so far; caching only extends a strictly sequential
    /// prefix (an early `reset` mid-pass just resumes absorbing where the
    /// previous pass left off once the re-decode catches up).
    chunks_cached: usize,
    complete: bool,
    enabled: bool,
}

impl DecodeCache {
    fn new(num_edges: u64, num_chunks: usize, budget: u64) -> Self {
        let enabled = num_edges.saturating_mul(8) <= budget;
        DecodeCache {
            edges: Vec::new(),
            chunks_cached: 0,
            complete: enabled && num_chunks == 0,
            enabled,
        }
    }

    /// Absorb chunk `idx`'s decoded edges if they extend the cached prefix.
    fn absorb(&mut self, idx: usize, edges: &[Edge], total_chunks: usize) {
        if !self.enabled || self.complete || idx != self.chunks_cached {
            return;
        }
        self.edges.extend_from_slice(edges);
        self.chunks_cached += 1;
        if self.chunks_cached == total_chunks {
            self.complete = true;
        }
    }
}

/// A buffered, chunk-at-a-time [`EdgeStream`] over a v2 file.
///
/// Chunk checksums are verified on the first decode of each chunk per open;
/// the multi-pass algorithms (`reset` + re-stream) then decode the already
/// proven chunks checksum-free. Files small enough for the decoded-edge
/// cache ([`DECODE_CACHE_DEFAULT_BYTES`]) skip the decode too: passes after
/// the first serve straight from memory.
pub struct V2EdgeFile {
    path: PathBuf,
    reader: BufReader<File>,
    layout: V2Layout,
    next_chunk: usize,
    scratch: Vec<u8>,
    buf: Vec<Edge>,
    buf_pos: usize,
    verified: Vec<bool>,
    cache: DecodeCache,
    cache_pos: usize,
    /// True once a `reset` found the cache complete: serve from memory. Set
    /// only at pass boundaries so a pass that completes the cache mid-flight
    /// still drains its own chunk buffer first.
    cache_serving: bool,
}

impl V2EdgeFile {
    /// Open `path`, validating header, index and trailer.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let layout = read_layout(&mut file)?;
        file.seek(SeekFrom::Start(HEADER_LEN_V2))?;
        let verified = vec![false; layout.chunks.len()];
        let cache = DecodeCache::new(
            layout.info.num_edges,
            layout.chunks.len(),
            decode_cache_budget(),
        );
        Ok(V2EdgeFile {
            path,
            reader: BufReader::with_capacity(1 << 16, file),
            layout,
            next_chunk: 0,
            scratch: Vec::new(),
            buf: Vec::new(),
            buf_pos: 0,
            verified,
            cache,
            cache_pos: 0,
            cache_serving: false,
        })
    }

    /// The graph summary from the header.
    pub fn info(&self) -> GraphInfo {
        self.layout.info
    }

    /// Path this stream reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Parsed layout (header fields + chunk directory).
    pub fn layout(&self) -> &V2Layout {
        &self.layout
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.layout.chunks.len()
    }

    /// Total encoded bytes of one full pass (header + chunks; the index and
    /// trailer are only read at open).
    pub fn pass_bytes(&self) -> u64 {
        let chunk_bytes: u64 = self
            .layout
            .chunks
            .iter()
            .map(|c| CHUNK_HEADER_LEN + c.payload_len as u64)
            .sum();
        HEADER_LEN_V2 + chunk_bytes
    }

    /// Decode chunk `i` into `out` (cleared first), via the index. On error
    /// `out` may hold partially decoded edges.
    pub fn read_chunk(&mut self, i: usize, out: &mut Vec<Edge>) -> io::Result<()> {
        let meta = *self
            .layout
            .chunks
            .get(i)
            .ok_or_else(|| invalid("chunk index out of bounds"))?;
        out.clear();
        self.reader.seek(SeekFrom::Start(meta.offset))?;
        let verify = !self.verified[i];
        read_chunk_at(&mut self.reader, meta, verify, &mut self.scratch, out)?;
        self.verified[i] = true;
        // The sequential cursor is now mid-file; re-sync on the next
        // sequential read by seeking from the chunk directory.
        self.resync_sequential()?;
        Ok(())
    }

    fn resync_sequential(&mut self) -> io::Result<()> {
        let offset = match self.layout.chunks.get(self.next_chunk) {
            Some(c) => c.offset,
            None => return Ok(()),
        };
        self.reader.seek(SeekFrom::Start(offset))?;
        Ok(())
    }

    /// Decode the next sequential chunk into `out` (cleared first).
    /// Returns the number of decoded edges; 0 at end of pass.
    pub fn next_chunk_into(&mut self, out: &mut Vec<Edge>) -> io::Result<usize> {
        out.clear();
        let Some(&meta) = self.layout.chunks.get(self.next_chunk) else {
            return Ok(0);
        };
        if self.cache_serving {
            // Warm pass: the whole file was decoded (and checksummed) on an
            // earlier pass; serve the chunk with one memcpy, no I/O.
            let n = meta.edge_count as usize;
            out.extend_from_slice(&self.cache.edges[self.cache_pos..self.cache_pos + n]);
            self.cache_pos += n;
            self.next_chunk += 1;
            return Ok(n);
        }
        let verify = !self.verified[self.next_chunk];
        read_chunk_at(&mut self.reader, meta, verify, &mut self.scratch, out)?;
        self.verified[self.next_chunk] = true;
        self.cache
            .absorb(self.next_chunk, out, self.layout.chunks.len());
        self.next_chunk += 1;
        Ok(out.len())
    }

    /// Fold every edge across chunks in parallel with `threads` workers.
    ///
    /// Each worker opens its own file handle and decodes a contiguous chunk
    /// range; per-worker accumulators (from `init`) are combined with
    /// `merge`. Only valid for per-edge commutative computations (degree
    /// counting, byte/edge statistics) — the paper's phase-0 degree pass is
    /// exactly that shape.
    pub fn parallel_fold<T, I, F, M>(
        &self,
        threads: usize,
        init: I,
        fold: F,
        merge: M,
    ) -> io::Result<T>
    where
        T: Send,
        I: Fn() -> T + Sync,
        F: Fn(&mut T, Edge) + Sync,
        M: Fn(T, T) -> T,
    {
        let threads = threads.max(1).min(self.layout.chunks.len().max(1));
        let chunks = &self.layout.chunks;
        let path = &self.path;
        let (init, fold) = (&init, &fold);
        let per = chunks.len().div_ceil(threads);
        let results: Vec<io::Result<T>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for range in chunks.chunks(per.max(1)) {
                handles.push(scope.spawn(move || -> io::Result<T> {
                    let mut acc = init();
                    if range.is_empty() {
                        return Ok(acc);
                    }
                    let file = File::open(path)?;
                    let mut r = BufReader::with_capacity(1 << 16, file);
                    r.seek(SeekFrom::Start(range[0].offset))?;
                    let mut scratch = Vec::new();
                    let mut edges = Vec::new();
                    for &meta in range {
                        edges.clear();
                        read_chunk_at(&mut r, meta, true, &mut scratch, &mut edges)?;
                        for &e in &edges {
                            fold(&mut acc, e);
                        }
                    }
                    Ok(acc)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("fold worker panicked"))
                .collect()
        });
        let mut acc = init();
        for r in results {
            acc = merge(acc, r?);
        }
        Ok(acc)
    }
}

impl EdgeStream for V2EdgeFile {
    fn reset(&mut self) -> io::Result<()> {
        self.next_chunk = 0;
        self.buf.clear();
        self.buf_pos = 0;
        self.cache_pos = 0;
        self.cache_serving = self.cache.complete;
        if !self.cache_serving {
            self.reader.seek(SeekFrom::Start(HEADER_LEN_V2))?;
        }
        Ok(())
    }

    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        if self.cache_serving {
            // Warm pass: zero-copy scan of the decoded-edge cache.
            if self.cache_pos < self.cache.edges.len() {
                // SAFETY: `cache_pos < cache.edges.len()` checked above.
                let e = unsafe { *self.cache.edges.get_unchecked(self.cache_pos) };
                self.cache_pos += 1;
                return Ok(Some(e));
            }
            return Ok(None);
        }
        loop {
            if self.buf_pos < self.buf.len() {
                let e = self.buf[self.buf_pos];
                self.buf_pos += 1;
                return Ok(Some(e));
            }
            let mut buf = std::mem::take(&mut self.buf);
            let n = self.next_chunk_into(&mut buf)?;
            self.buf = buf;
            self.buf_pos = 0;
            if n == 0 {
                return Ok(None);
            }
        }
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.layout.info.num_edges)
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        Some(self.layout.info.num_vertices)
    }
}

/// A zero-copy v2 stream over a memory-mapped file: chunks are decoded out
/// of the mapping, the payload bytes are never read through a syscall.
pub struct MmapV2EdgeFile {
    path: PathBuf,
    map: Mmap,
    layout: V2Layout,
    next_chunk: usize,
    buf: Vec<Edge>,
    buf_pos: usize,
    verified: Vec<bool>,
    cache: DecodeCache,
    cache_pos: usize,
}

impl MmapV2EdgeFile {
    /// Map `path` and validate the v2 layout.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let layout = read_layout(&mut file)?;
        let map = Mmap::map(&file)?;
        let verified = vec![false; layout.chunks.len()];
        let cache = DecodeCache::new(
            layout.info.num_edges,
            layout.chunks.len(),
            decode_cache_budget(),
        );
        Ok(MmapV2EdgeFile {
            path,
            map,
            layout,
            next_chunk: 0,
            buf: Vec::new(),
            buf_pos: 0,
            verified,
            cache,
            cache_pos: 0,
        })
    }

    /// The graph summary from the header.
    pub fn info(&self) -> GraphInfo {
        self.layout.info
    }

    /// Path this stream reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl EdgeStream for MmapV2EdgeFile {
    fn reset(&mut self) -> io::Result<()> {
        self.next_chunk = 0;
        self.buf.clear();
        self.buf_pos = 0;
        self.cache_pos = 0;
        Ok(())
    }

    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        if self.cache.enabled {
            // Cacheable file: chunks are decoded straight into the flat
            // cache and served out of it, cold pass included — no bounce
            // buffer, no absorb copy. Because the decoded prefix persists
            // across `reset`, every pass (and every re-pass after an early
            // reset) serves already-decoded edges at raw scan speed and
            // only decodes chunks the cache has not reached yet.
            loop {
                if self.cache_pos < self.cache.edges.len() {
                    // SAFETY: `cache_pos < cache.edges.len()` checked above.
                    let e = unsafe { *self.cache.edges.get_unchecked(self.cache_pos) };
                    self.cache_pos += 1;
                    return Ok(Some(e));
                }
                let idx = self.cache.chunks_cached;
                let Some(&meta) = self.layout.chunks.get(idx) else {
                    return Ok(None);
                };
                let start = self.cache.edges.len();
                let verify = !self.verified[idx];
                if let Err(e) =
                    decode_chunk_slice(self.map.as_slice(), meta, verify, &mut self.cache.edges)
                {
                    // Keep the cache a clean chunk prefix: a later pass
                    // re-decodes this chunk and reproduces the same error.
                    self.cache.edges.truncate(start);
                    return Err(e);
                }
                self.verified[idx] = true;
                self.cache.chunks_cached += 1;
                if self.cache.chunks_cached == self.layout.chunks.len() {
                    self.cache.complete = true;
                }
            }
        }
        loop {
            if self.buf_pos < self.buf.len() {
                let e = self.buf[self.buf_pos];
                self.buf_pos += 1;
                return Ok(Some(e));
            }
            let Some(&meta) = self.layout.chunks.get(self.next_chunk) else {
                return Ok(None);
            };
            self.buf.clear();
            let verify = !self.verified[self.next_chunk];
            decode_chunk_slice(self.map.as_slice(), meta, verify, &mut self.buf)?;
            self.verified[self.next_chunk] = true;
            self.next_chunk += 1;
            self.buf_pos = 0;
        }
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.layout.info.num_edges)
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        Some(self.layout.info.num_vertices)
    }
}

/// Convert a v1 `.bel` file to v2, preserving edge order exactly.
pub fn convert_v1_to_v2<P: AsRef<Path>, Q: AsRef<Path>>(
    src: P,
    dst: Q,
    edges_per_chunk: u32,
) -> io::Result<GraphInfo> {
    let mut input = BinaryEdgeFile::open(src)?;
    let mut w = V2Writer::create(dst, input.info().num_vertices, edges_per_chunk)?;
    input.reset()?;
    while let Some(e) = input.next_edge()? {
        w.push(e)?;
    }
    let info = w.finish()?;
    if info.num_edges != input.info().num_edges {
        return Err(invalid("edge count changed during conversion"));
    }
    Ok(info)
}

/// Convert a v2 file back to v1, preserving edge order exactly.
pub fn convert_v2_to_v1<P: AsRef<Path>, Q: AsRef<Path>>(src: P, dst: Q) -> io::Result<GraphInfo> {
    let mut input = V2EdgeFile::open(src)?;
    input.reset()?;
    let num_vertices = input.info().num_vertices;
    let mut iter_err = None;
    let info = tps_graph::formats::binary::write_binary_edge_list(
        dst,
        num_vertices,
        std::iter::from_fn(|| match input.next_edge() {
            Ok(e) => e,
            Err(err) => {
                iter_err = Some(err);
                None
            }
        }),
    )?;
    if let Some(err) = iter_err {
        return Err(err);
    }
    Ok(info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_graph::stream::for_each_edge;

    fn tmpfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tps-io-v2-{tag}-{}.bel2", std::process::id()))
    }

    fn edges(n: u32) -> Vec<Edge> {
        (0..n)
            .map(|i| Edge::new(i % 97, (i * 131 + 5) % 1024))
            .collect()
    }

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        let values = [0u32, 1, 127, 128, 16_383, 16_384, 1 << 21, u32::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // 6-byte continuation chain.
        let mut pos = 0;
        assert!(read_varint(&[0x80; 6], &mut pos).is_err());
        // 5th byte with high bits set overflows u32.
        let mut pos = 0;
        assert!(read_varint(&[0x80, 0x80, 0x80, 0x80, 0x7F], &mut pos).is_err());
        // Truncated mid-varint.
        let mut pos = 0;
        assert!(read_varint(&[0x80], &mut pos).is_err());
    }

    #[test]
    fn degenerate_chunk_sizes_rejected_at_create() {
        let path = tmpfile("badchunk");
        assert!(V2Writer::create(&path, 10, 0).is_err());
        assert!(V2Writer::create(&path, 10, MAX_CHUNK_EDGES + 1).is_err());
        assert!(V2Writer::create(&path, 10, MAX_CHUNK_EDGES).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn round_trip_multi_chunk() {
        let path = tmpfile("roundtrip");
        let es = edges(10_000);
        let info = write_v2_edge_list(&path, 1024, es.iter().copied(), 256).unwrap();
        assert_eq!(info.num_edges, 10_000);

        let mut f = V2EdgeFile::open(&path).unwrap();
        assert_eq!(f.num_chunks(), 10_000usize.div_ceil(256));
        let mut seen = Vec::new();
        for_each_edge(&mut f, |e| seen.push(e)).unwrap();
        assert_eq!(seen, es);
        // Second pass identical.
        let mut again = Vec::new();
        for_each_edge(&mut f, |e| again.push(e)).unwrap();
        assert_eq!(again, es);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_v2_round_trip() {
        let path = tmpfile("mmap");
        let es = edges(5_000);
        write_v2_edge_list(&path, 1024, es.iter().copied(), 999).unwrap();
        let mut f = MmapV2EdgeFile::open(&path).unwrap();
        let mut seen = Vec::new();
        for_each_edge(&mut f, |e| seen.push(e)).unwrap();
        assert_eq!(seen, es);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_round_trip() {
        let path = tmpfile("empty");
        write_v2_edge_list(&path, 0, std::iter::empty(), 64).unwrap();
        let mut f = V2EdgeFile::open(&path).unwrap();
        assert_eq!(f.num_chunks(), 0);
        assert_eq!(f.next_edge().unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_smaller_than_v1_on_skewed_ids() {
        let dir = std::env::temp_dir();
        let v1 = dir.join(format!("tps-io-size-{}.bel", std::process::id()));
        let v2 = dir.join(format!("tps-io-size-{}.bel2", std::process::id()));
        // Skewed ids (R-MAT-like): most below 2^14 -> ≤2-byte varints.
        let es: Vec<Edge> = (0..20_000u32)
            .map(|i| Edge::new((i * i) % 8192, (i * 7) % 16_000))
            .collect();
        tps_graph::formats::binary::write_binary_edge_list(&v1, 16_000, es.iter().copied())
            .unwrap();
        write_v2_edge_list(&v2, 16_000, es.iter().copied(), DEFAULT_CHUNK_EDGES).unwrap();
        let s1 = std::fs::metadata(&v1).unwrap().len();
        let s2 = std::fs::metadata(&v2).unwrap().len();
        assert!(
            (s2 as f64) < 0.8 * s1 as f64,
            "v2 ({s2} B) not measurably smaller than v1 ({s1} B)"
        );
        std::fs::remove_file(&v1).ok();
        std::fs::remove_file(&v2).ok();
    }

    #[test]
    fn random_chunk_access_and_parallel_fold() {
        let path = tmpfile("chunks");
        let es = edges(5_000);
        write_v2_edge_list(&path, 1024, es.iter().copied(), 512).unwrap();
        let mut f = V2EdgeFile::open(&path).unwrap();

        // Random access to a middle chunk matches the slice of the original.
        let mut chunk = Vec::new();
        f.read_chunk(3, &mut chunk).unwrap();
        assert_eq!(chunk.as_slice(), &es[3 * 512..4 * 512]);

        // Sequential streaming still works after random access.
        let mut seen = Vec::new();
        for_each_edge(&mut f, |e| seen.push(e)).unwrap();
        assert_eq!(seen, es);

        // Parallel degree fold == sequential degree fold.
        let fold = |acc: &mut Vec<u64>, e: Edge| {
            acc[e.src as usize] += 1;
            acc[e.dst as usize] += 1;
        };
        let par = f
            .parallel_fold(
                4,
                || vec![0u64; 1024],
                fold,
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            )
            .unwrap();
        let mut seq = vec![0u64; 1024];
        for &e in &es {
            fold(&mut seq, e);
        }
        assert_eq!(par, seq);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_payload_detected_by_checksum() {
        let path = tmpfile("corrupt");
        write_v2_edge_list(&path, 1024, edges(1000), 100).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the first chunk (header is 32 B, chunk
        // header 12 B; +5 lands inside the payload).
        let target = HEADER_LEN_V2 as usize + CHUNK_HEADER_LEN as usize + 5;
        bytes[target] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let mut f = V2EdgeFile::open(&path).unwrap();
        let err = for_each_edge(&mut f, |_| {}).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected_at_open() {
        let path = tmpfile("trunc");
        write_v2_edge_list(&path, 1024, edges(1000), 100).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert!(V2EdgeFile::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmpfile("magic");
        std::fs::write(&path, vec![0u8; 100]).unwrap();
        let err = V2EdgeFile::open(&path).err().expect("bad magic must fail");
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn converters_are_inverse_and_order_preserving() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let v1 = dir.join(format!("tps-io-conv-{pid}.bel"));
        let v2 = dir.join(format!("tps-io-conv-{pid}.bel2"));
        let back = dir.join(format!("tps-io-conv-back-{pid}.bel"));
        let es = edges(3_333);
        tps_graph::formats::binary::write_binary_edge_list(&v1, 1024, es.iter().copied()).unwrap();

        let info = convert_v1_to_v2(&v1, &v2, 500).unwrap();
        assert_eq!(
            info,
            GraphInfo {
                num_vertices: 1024,
                num_edges: 3_333
            }
        );
        let info = convert_v2_to_v1(&v2, &back).unwrap();
        assert_eq!(
            info,
            GraphInfo {
                num_vertices: 1024,
                num_edges: 3_333
            }
        );

        // Byte-identical round trip: v1 -> v2 -> v1.
        let a = std::fs::read(&v1).unwrap();
        let b = std::fs::read(&back).unwrap();
        assert_eq!(a, b);
        for p in [&v1, &v2, &back] {
            std::fs::remove_file(p).ok();
        }
    }
}
