//! The checksummed page store backing out-of-core cluster paging.
//!
//! [`FilePageStore`] implements `tps-clustering`'s
//! [`PageBacking`] over a single slotted file: every page lives in a
//! fixed-layout slot (`key`, `length`, FNV-1a checksum, payload), new keys
//! append, re-written keys overwrite their slot in place (all pages of a
//! store share one size, so slots never grow). An in-memory directory maps
//! keys to slot offsets — `O(#pages)` at 16 bytes per *page*, three to
//! four orders of magnitude below the paged data itself.
//!
//! Integrity: a read that hits a slot whose stored key, length or checksum
//! disagrees with expectations fails loudly (`InvalidData`) instead of
//! handing back silently wrong cluster state; a slot cut short by
//! truncation surfaces as `UnexpectedEof`. The paged partitioning path
//! checks for these after every phase (`PagedClustering::check_io`).

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tps_clustering::paged::{PageBacking, PageStoreProvider};

/// Slot header: key (8) + payload length (4) + FNV-1a checksum (8).
const SLOT_HEADER_LEN: u64 = 20;

/// 64-bit FNV-1a over a page payload.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A slotted, checksummed, overwrite-in-place page file (see module docs).
/// The backing file is removed on drop.
#[derive(Debug)]
pub struct FilePageStore {
    file: File,
    path: PathBuf,
    page_size: usize,
    /// Page key → slot start offset.
    directory: HashMap<u64, u64>,
    /// Append cursor for slots of never-before-written keys.
    end: u64,
}

impl FilePageStore {
    /// Create an empty store for `page_size`-byte pages at `path`
    /// (truncating anything already there).
    pub fn create(path: &Path, page_size: usize) -> io::Result<Self> {
        assert!(page_size > 0, "page size must be positive");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FilePageStore {
            file,
            path: path.to_path_buf(),
            page_size,
            directory: HashMap::new(),
            end: 0,
        })
    }

    /// Number of distinct pages stored.
    pub fn num_pages(&self) -> usize {
        self.directory.len()
    }

    /// Bytes the store occupies on disk.
    pub fn file_bytes(&self) -> u64 {
        self.end
    }
}

impl Drop for FilePageStore {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

impl PageBacking for FilePageStore {
    fn read_page(&mut self, key: u64, buf: &mut [u8]) -> io::Result<bool> {
        debug_assert_eq!(buf.len(), self.page_size);
        let Some(&offset) = self.directory.get(&key) else {
            return Ok(false);
        };
        self.file.seek(SeekFrom::Start(offset))?;
        let mut header = [0u8; SLOT_HEADER_LEN as usize];
        self.file.read_exact(&mut header).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("page {key:#x}: slot header truncated"),
                )
            } else {
                e
            }
        })?;
        let stored_key = u64::from_le_bytes(header[0..8].try_into().unwrap());
        let stored_len = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let stored_sum = u64::from_le_bytes(header[12..20].try_into().unwrap());
        if stored_key != key {
            return Err(invalid(format!(
                "page {key:#x}: slot holds key {stored_key:#x} (corrupt directory or slot)"
            )));
        }
        if stored_len as usize != self.page_size {
            return Err(invalid(format!(
                "page {key:#x}: slot length {stored_len} != page size {}",
                self.page_size
            )));
        }
        self.file.read_exact(buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("page {key:#x}: slot payload truncated"),
                )
            } else {
                e
            }
        })?;
        if fnv1a(buf) != stored_sum {
            return Err(invalid(format!(
                "page {key:#x}: checksum mismatch (corrupt slot)"
            )));
        }
        Ok(true)
    }

    fn write_pages(&mut self, pages: &[(u64, Vec<u8>)]) -> io::Result<()> {
        for (key, data) in pages {
            debug_assert_eq!(data.len(), self.page_size);
            let offset = match self.directory.get(key) {
                Some(&off) => off,
                None => {
                    let off = self.end;
                    self.directory.insert(*key, off);
                    self.end += SLOT_HEADER_LEN + self.page_size as u64;
                    off
                }
            };
            let mut slot = Vec::with_capacity(SLOT_HEADER_LEN as usize + data.len());
            slot.extend_from_slice(&key.to_le_bytes());
            slot.extend_from_slice(&(data.len() as u32).to_le_bytes());
            slot.extend_from_slice(&fnv1a(data).to_le_bytes());
            slot.extend_from_slice(data);
            self.file.seek(SeekFrom::Start(offset))?;
            self.file.write_all(&slot)?;
        }
        Ok(())
    }
}

/// A [`PageStoreProvider`] creating [`FilePageStore`]s in a directory
/// (typically under the system temp dir). Each store gets a unique file;
/// stores remove their files on drop, and providers remove the directory
/// on drop if it emptied.
#[derive(Debug)]
pub struct TempPageStoreProvider {
    dir: PathBuf,
    counter: AtomicU64,
}

impl TempPageStoreProvider {
    /// A provider creating stores inside `dir` (created on first use).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TempPageStoreProvider {
            dir: dir.into(),
            counter: AtomicU64::new(0),
        }
    }
}

impl Drop for TempPageStoreProvider {
    fn drop(&mut self) {
        // Only removes the directory when no store files remain.
        let _ = fs::remove_dir(&self.dir);
    }
}

impl PageStoreProvider for TempPageStoreProvider {
    fn open_store(&self, page_size: usize) -> io::Result<Box<dyn PageBacking>> {
        fs::create_dir_all(&self.dir)?;
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let path = self
            .dir
            .join(format!("pages-{}-{n}.tpspage", std::process::id()));
        Ok(Box::new(FilePageStore::create(&path, page_size)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_clustering::paged::{MemPageBacking, PagedClustering};
    use tps_clustering::streaming::{clustering_pass_on, VolumeCap};
    use tps_graph::degree::DegreeTable;
    use tps_graph::gen::planted::{self, PlantedConfig};

    fn tmpfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tps-io-page-{tag}-{}.tpspage", std::process::id()))
    }

    fn page(fill: u8, size: usize) -> Vec<u8> {
        vec![fill; size]
    }

    #[test]
    fn roundtrip_and_unknown_keys() {
        let path = tmpfile("roundtrip");
        let mut store = FilePageStore::create(&path, 64).unwrap();
        store
            .write_pages(&[(1, page(0xAA, 64)), (9, page(0xBB, 64))])
            .unwrap();
        let mut buf = vec![0u8; 64];
        assert!(store.read_page(9, &mut buf).unwrap());
        assert_eq!(buf, page(0xBB, 64));
        assert!(store.read_page(1, &mut buf).unwrap());
        assert_eq!(buf, page(0xAA, 64));
        assert!(!store.read_page(7, &mut buf).unwrap(), "never written");
        assert_eq!(store.num_pages(), 2);
    }

    #[test]
    fn overwrite_in_place_keeps_file_size() {
        let path = tmpfile("overwrite");
        let mut store = FilePageStore::create(&path, 32).unwrap();
        store.write_pages(&[(5, page(1, 32))]).unwrap();
        let size_once = store.file_bytes();
        for round in 2..10u8 {
            store.write_pages(&[(5, page(round, 32))]).unwrap();
        }
        assert_eq!(store.file_bytes(), size_once, "overwrites must not grow");
        let mut buf = vec![0u8; 32];
        assert!(store.read_page(5, &mut buf).unwrap());
        assert_eq!(buf, page(9, 32));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let path = tmpfile("corrupt");
        let mut store = FilePageStore::create(&path, 64).unwrap();
        store.write_pages(&[(3, page(0x11, 64))]).unwrap();
        // Flip one payload byte out-of-band.
        let mut f = OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(SLOT_HEADER_LEN + 10)).unwrap();
        f.write_all(&[0x99]).unwrap();
        drop(f);
        let mut buf = vec![0u8; 64];
        let err = store.read_page(3, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn corrupt_slot_key_is_detected() {
        let path = tmpfile("badkey");
        let mut store = FilePageStore::create(&path, 16).unwrap();
        store.write_pages(&[(42, page(7, 16))]).unwrap();
        let mut f = OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(0)).unwrap();
        f.write_all(&77u64.to_le_bytes()).unwrap();
        drop(f);
        let mut buf = vec![0u8; 16];
        let err = store.read_page(42, &mut buf).unwrap_err();
        assert!(err.to_string().contains("key"), "{err}");
    }

    #[test]
    fn truncated_slot_is_detected() {
        let path = tmpfile("trunc");
        let mut store = FilePageStore::create(&path, 64).unwrap();
        store
            .write_pages(&[(1, page(1, 64)), (2, page(2, 64))])
            .unwrap();
        // Cut the file mid-way through the second slot's payload.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(SLOT_HEADER_LEN + 64 + SLOT_HEADER_LEN + 10)
            .unwrap();
        drop(f);
        let mut buf = vec![0u8; 64];
        assert!(store.read_page(1, &mut buf).unwrap(), "first slot intact");
        let err = store.read_page(2, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn store_file_removed_on_drop() {
        let path = tmpfile("dropclean");
        let mut store = FilePageStore::create(&path, 16).unwrap();
        store.write_pages(&[(0, page(0, 16))]).unwrap();
        assert!(path.exists());
        drop(store);
        assert!(!path.exists());
    }

    #[test]
    fn provider_hands_out_distinct_stores() {
        let dir = std::env::temp_dir().join(format!("tps-io-pagedir-{}", std::process::id()));
        let provider = TempPageStoreProvider::new(&dir);
        let mut a = provider.open_store(32).unwrap();
        let mut b = provider.open_store(32).unwrap();
        a.write_pages(&[(1, page(0xA, 32))]).unwrap();
        let mut buf = vec![0u8; 32];
        assert!(!b.read_page(1, &mut buf).unwrap(), "stores are independent");
        drop(a);
        drop(b);
        drop(provider);
        assert!(!dir.exists(), "empty store dir cleaned up");
    }

    /// The file store and the in-memory backing are interchangeable under
    /// a real clustering workload: same final state, byte for byte.
    #[test]
    fn paged_clustering_over_file_store_matches_mem_backing() {
        let g = planted::generate(&PlantedConfig::web(600, 3000), 3);
        let mut s = g.stream();
        let degrees = DegreeTable::compute(&mut s, g.num_vertices()).unwrap();
        let cap = VolumeCap::FractionOfTotal(1.0 / 8.0).resolve(degrees.total_volume());
        let run = |backing: Box<dyn PageBacking>| -> PagedClustering {
            // 4 tiny frames: heavy eviction through the backing under test.
            let mut t = PagedClustering::with_page_size(g.num_vertices(), 4 * 64, 64, backing);
            for _ in 0..2 {
                let mut s = g.stream();
                clustering_pass_on(&mut s, &degrees, cap, &mut t).unwrap();
            }
            t.check_io().unwrap();
            t
        };
        let path = tmpfile("clustered");
        let mut on_file = run(Box::new(FilePageStore::create(&path, 64).unwrap()));
        let mut in_mem = run(Box::new(MemPageBacking::new()));
        assert_eq!(on_file.num_cluster_ids(), in_mem.num_cluster_ids());
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(on_file.raw_cluster_of(v), in_mem.raw_cluster_of(v), "v={v}");
        }
        on_file.check_io().unwrap();
        in_mem.check_io().unwrap();
    }
}
