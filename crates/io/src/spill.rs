//! Memory-bounded materialised output: the spilling assignment sink.
//!
//! `tps_core::sink::FileSink` keeps one `BufWriter` per partition — fine for
//! k ≤ a few hundred, but at high k (the paper's GNN motivation) or tight
//! memory budgets the write path should be explicit: [`SpillingFileSink`]
//! buffers assignments per partition in memory up to a global byte budget
//! and spills each partition's buffer to its file in one large sequential
//! write when the partition's share fills up. Memory is
//! `budget + O(k)` regardless of `|E|`, writes are big and sequential
//! (device-friendly), and the output files are byte-compatible v1
//! (`TPSBEL1`) partition files — identical to `FileSink`'s.

use std::fs::File;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use tps_core::sink::AssignmentSink;
use tps_graph::formats::binary::MAGIC;
use tps_graph::types::{Edge, PartitionId};

/// Observability counters of a [`SpillingFileSink`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Buffer flushes that hit the disk (excluding the final drain).
    pub spills: u64,
    /// Total bytes written (headers + records).
    pub bytes_written: u64,
    /// High-water mark of buffered edge bytes across all partitions.
    pub peak_buffered_bytes: u64,
}

/// An [`AssignmentSink`] writing per-partition `.bel` files under a global
/// memory budget.
pub struct SpillingFileSink {
    files: Vec<File>,
    paths: Vec<PathBuf>,
    counts: Vec<u64>,
    bufs: Vec<Vec<Edge>>,
    /// Edges a single partition may buffer before spilling.
    per_partition_cap: usize,
    buffered_edges: u64,
    scratch: Vec<u8>,
    stats: SpillStats,
    num_vertices: u64,
}

/// Bytes one buffered edge occupies on disk.
const EDGE_BYTES: u64 = 8;

static IO_SPILL_SPILLS: tps_obs::Counter = tps_obs::Counter::new("io.spill.spills");
static IO_SPILL_BYTES: tps_obs::Counter = tps_obs::Counter::new("io.spill.bytes");

impl SpillingFileSink {
    /// Create `k` files named `<stem>.part<i>.bel` in `dir`, buffering at
    /// most `budget_bytes` of edge records in memory (shared evenly across
    /// partitions, minimum one edge each).
    pub fn create(
        dir: &Path,
        stem: &str,
        k: u32,
        num_vertices: u64,
        budget_bytes: u64,
    ) -> io::Result<Self> {
        assert!(k > 0, "need at least one partition");
        let per_partition_cap =
            ((budget_bytes / k as u64 / EDGE_BYTES).max(1) as usize).min(1 << 24);
        let mut files = Vec::with_capacity(k as usize);
        let mut paths = Vec::with_capacity(k as usize);
        let mut stats = SpillStats::default();
        for i in 0..k {
            let path = dir.join(format!("{stem}.part{i}.bel"));
            let mut f = File::create(&path)?;
            let mut header = Vec::with_capacity(24);
            header.extend_from_slice(&MAGIC);
            header.extend_from_slice(&num_vertices.to_le_bytes());
            header.extend_from_slice(&0u64.to_le_bytes());
            f.write_all(&header)?;
            stats.bytes_written += header.len() as u64;
            files.push(f);
            paths.push(path);
        }
        Ok(SpillingFileSink {
            files,
            paths,
            counts: vec![0; k as usize],
            bufs: (0..k).map(|_| Vec::new()).collect(),
            per_partition_cap,
            buffered_edges: 0,
            scratch: Vec::new(),
            stats,
            num_vertices,
        })
    }

    /// The effective per-partition buffer capacity in edges.
    pub fn per_partition_cap(&self) -> usize {
        self.per_partition_cap
    }

    /// Counters so far.
    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    fn spill(&mut self, p: usize) -> io::Result<()> {
        let buf = &mut self.bufs[p];
        if buf.is_empty() {
            return Ok(());
        }
        self.scratch.clear();
        self.scratch.reserve(buf.len() * EDGE_BYTES as usize);
        for e in buf.iter() {
            self.scratch.extend_from_slice(&e.src.to_le_bytes());
            self.scratch.extend_from_slice(&e.dst.to_le_bytes());
        }
        self.files[p].write_all(&self.scratch)?;
        self.stats.bytes_written += self.scratch.len() as u64;
        self.stats.spills += 1;
        IO_SPILL_SPILLS.incr();
        IO_SPILL_BYTES.add(self.scratch.len() as u64);
        self.buffered_edges -= buf.len() as u64;
        buf.clear();
        Ok(())
    }

    /// Spill all buffers, patch the per-file edge counts and close.
    /// Returns `(path, edge_count)` per partition and the final stats.
    pub fn finish(mut self) -> io::Result<(Vec<(PathBuf, u64)>, SpillStats)> {
        let _ = self.num_vertices;
        // The final drain is bookkept as writes, not spills (a spill is a
        // budget-pressure event), so freeze the spill counter across it.
        let pressure_spills = self.stats.spills;
        for p in 0..self.files.len() {
            self.spill(p)?;
        }
        self.stats.spills = pressure_spills;
        let mut out = Vec::with_capacity(self.files.len());
        for ((mut f, count), path) in self.files.into_iter().zip(self.counts).zip(self.paths) {
            f.seek(SeekFrom::Start(16))?;
            f.write_all(&count.to_le_bytes())?;
            f.flush()?;
            out.push((path, count));
        }
        Ok((out, self.stats))
    }
}

impl AssignmentSink for SpillingFileSink {
    #[inline]
    fn assign(&mut self, edge: Edge, p: PartitionId) -> io::Result<()> {
        let p = p as usize;
        self.bufs[p].push(edge);
        self.counts[p] += 1;
        self.buffered_edges += 1;
        self.stats.peak_buffered_bytes = self
            .stats
            .peak_buffered_bytes
            .max(self.buffered_edges * EDGE_BYTES);
        if self.bufs[p].len() >= self.per_partition_cap {
            self.spill(p)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_graph::formats::binary::BinaryEdgeFile;
    use tps_graph::stream::for_each_edge;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tps-io-spill-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn read_part(path: &Path) -> Vec<Edge> {
        let mut f = BinaryEdgeFile::open(path).unwrap();
        let mut v = Vec::new();
        for_each_edge(&mut f, |e| v.push(e)).unwrap();
        v
    }

    #[test]
    fn output_matches_file_sink_layout() {
        let dir = tmpdir("layout");
        let mut sink = SpillingFileSink::create(&dir, "g", 2, 100, 1 << 20).unwrap();
        sink.assign(Edge::new(0, 1), 0).unwrap();
        sink.assign(Edge::new(2, 3), 1).unwrap();
        sink.assign(Edge::new(4, 5), 1).unwrap();
        let (parts, _) = sink.finish().unwrap();
        assert_eq!(parts[0].1, 1);
        assert_eq!(parts[1].1, 2);
        assert_eq!(read_part(&parts[0].0), vec![Edge::new(0, 1)]);
        assert_eq!(
            read_part(&parts[1].0),
            vec![Edge::new(2, 3), Edge::new(4, 5)]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_budget_spills_but_stays_correct() {
        let dir = tmpdir("tiny");
        // 64-byte budget over 4 partitions -> cap of 2 edges per partition.
        let mut sink = SpillingFileSink::create(&dir, "g", 4, 10_000, 64).unwrap();
        assert_eq!(sink.per_partition_cap(), 2);
        let edges: Vec<Edge> = (0..1000).map(|i| Edge::new(i, i + 1)).collect();
        for (i, &e) in edges.iter().enumerate() {
            sink.assign(e, (i % 4) as u32).unwrap();
        }
        let stats = sink.stats();
        assert!(stats.spills > 100, "expected heavy spilling, got {stats:?}");
        assert!(stats.peak_buffered_bytes <= 4 * 2 * 8);
        let (parts, final_stats) = sink.finish().unwrap();
        assert_eq!(parts.iter().map(|p| p.1).sum::<u64>(), 1000);
        // Per-partition order is preserved.
        for (p, (path, _)) in parts.iter().enumerate() {
            let got = read_part(path);
            let want: Vec<Edge> = edges
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 4 == p)
                .map(|(_, &e)| e)
                .collect();
            assert_eq!(got, want);
        }
        assert_eq!(
            final_stats.bytes_written,
            4 * 24 + 1000 * 8,
            "headers + every record exactly once"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exact_cap_fill_reports_every_pressure_spill() {
        let dir = tmpdir("exactcap");
        // Cap of 2 edges per partition; assign exactly 2 to each of 4 parts,
        // so every buffer is flushed at assign time and empty at finish.
        let mut sink = SpillingFileSink::create(&dir, "g", 4, 100, 64).unwrap();
        for p in 0..4u32 {
            sink.assign(Edge::new(p, p + 1), p).unwrap();
            sink.assign(Edge::new(p + 1, p + 2), p).unwrap();
        }
        assert_eq!(sink.stats().spills, 4);
        let (parts, stats) = sink.finish().unwrap();
        // The 4 budget-pressure spills must survive the (empty) final drain.
        assert_eq!(stats.spills, 4);
        assert_eq!(parts.iter().map(|p| p.1).sum::<u64>(), 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generous_budget_never_spills_until_finish() {
        let dir = tmpdir("generous");
        let mut sink = SpillingFileSink::create(&dir, "g", 2, 100, 1 << 20).unwrap();
        for i in 0..100u32 {
            sink.assign(Edge::new(i, i + 1), i % 2).unwrap();
        }
        assert_eq!(sink.stats().spills, 0);
        let (parts, stats) = sink.finish().unwrap();
        assert_eq!(stats.spills, 0);
        assert_eq!(parts.iter().map(|p| p.1).sum::<u64>(), 100);
        std::fs::remove_dir_all(&dir).ok();
    }
}
