//! `tps-io` — the out-of-core I/O engine.
//!
//! The paper's premise is multi-pass streaming from external storage at
//! linear run-time; this crate makes the storage side real. Everything is a
//! [`tps_graph::stream::EdgeStream`], so partitioners stay oblivious:
//!
//! * [`mmap`] — zero-copy streams over memory-mapped v1 `.bel` files.
//! * [`v2`] — the `TPSBEL2` compressed chunked format: varint-encoded
//!   edges in checksummed chunks with a seekable index footer, plus
//!   order-preserving v1↔v2 converters and chunk-parallel scans.
//! * [`prefetch`] — a double-buffered background-thread reader that
//!   overlaps disk reads with partitioning CPU work.
//! * [`ranged`] — range-addressable sources for chunk-parallel execution:
//!   every worker thread of `tps-core`'s `ParallelRunner` opens its own
//!   cursor over a contiguous edge-index range (v1 record seeking, v2
//!   chunk-index scheduling, optional per-worker prefetch).
//! * [`spill`] — a memory-bounded spilling assignment sink for materialised
//!   per-partition output at scale.
//! * [`page`] — a checksummed slotted page store backing `tps-clustering`'s
//!   paged cluster table, so cluster state itself can live out of core
//!   under a `--mem-budget-mb` budget.
//!
//! [`open_edge_stream`] is the front door: it sniffs the file format (v1 or
//! v2 by magic) and applies the requested [`ReaderBackend`]. See
//! `README.md` in this crate for the format layout and a backend-selection
//! guide.

pub mod mmap;
pub mod page;
pub mod partread;
pub mod prefetch;
pub mod ranged;
pub mod spill;
pub mod spool;
pub mod v2;

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;
use std::sync::Arc;

use tps_clustering::paged::PageStoreProvider;
use tps_core::job::{InputProvider, JobSpec, ReaderKind};
use tps_core::runner::RunOutcome;
use tps_core::sink::SpoolFactory;
use tps_graph::formats::binary::BinaryEdgeFile;
use tps_graph::ranged::RangedEdgeSource;
use tps_graph::stream::EdgeStream;

pub use partread::{load_partition_dir, LoadedPartition};

pub use mmap::MmapEdgeFile;
pub use page::{FilePageStore, TempPageStoreProvider};
pub use prefetch::{ChunkSource, PrefetchConfig, PrefetchReader, V1ChunkSource, V2ChunkSource};
pub use ranged::{
    open_ranged, open_ranged_backend, open_ranged_mmap, open_ranged_prefetch, RangedMmapV1File,
    RangedMmapV2File, RangedPrefetchSource, RangedV1File, RangedV2File,
};
pub use spill::{SpillStats, SpillingFileSink};
pub use spool::{SpillSpool, SpillSpoolFactory};
pub use v2::{convert_v1_to_v2, convert_v2_to_v1, write_v2_edge_list, MmapV2EdgeFile, V2EdgeFile};

/// How to read an edge file from disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReaderBackend {
    /// A `BufReader` over the file — the seed's original path; lowest
    /// memory, one copy per read.
    #[default]
    Buffered,
    /// Memory-map the file and decode in place (zero-copy; fastest on warm
    /// page cache, requires a Unix target).
    Mmap,
    /// Background-thread double buffering — overlaps I/O with CPU work;
    /// best when the consumer does real work per edge on a cold cache.
    Prefetch,
}

impl ReaderBackend {
    /// All backends, for iteration in benches/tests.
    pub const ALL: [ReaderBackend; 3] = [
        ReaderBackend::Buffered,
        ReaderBackend::Mmap,
        ReaderBackend::Prefetch,
    ];

    /// The CLI flag spelling.
    pub fn name(self) -> &'static str {
        match self {
            ReaderBackend::Buffered => "buffered",
            ReaderBackend::Mmap => "mmap",
            ReaderBackend::Prefetch => "prefetch",
        }
    }
}

impl std::str::FromStr for ReaderBackend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "buffered" | "bufreader" => Ok(ReaderBackend::Buffered),
            "mmap" => Ok(ReaderBackend::Mmap),
            "prefetch" => Ok(ReaderBackend::Prefetch),
            other => Err(format!(
                "unknown reader backend {other:?} (buffered|mmap|prefetch)"
            )),
        }
    }
}

/// On-disk edge-list container format, sniffed from the magic bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeFileFormat {
    /// `TPSBEL1`: fixed 8-byte records.
    V1,
    /// `TPSBEL2`: compressed chunked (see [`v2`]).
    V2,
}

/// Sniff a file's container format from its first 8 bytes.
pub fn detect_format<P: AsRef<Path>>(path: P) -> io::Result<EdgeFileFormat> {
    let mut file = File::open(path)?;
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)?;
    if magic == tps_graph::formats::binary::MAGIC {
        Ok(EdgeFileFormat::V1)
    } else if magic == v2::MAGIC_V2 {
        Ok(EdgeFileFormat::V2)
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "neither TPSBEL1 nor TPSBEL2 magic — not an edge-list file",
        ))
    }
}

/// Open `path` (v1 or v2, auto-detected) with the requested backend.
pub fn open_edge_stream<P: AsRef<Path>>(
    path: P,
    backend: ReaderBackend,
) -> io::Result<Box<dyn EdgeStream>> {
    let path = path.as_ref();
    match (detect_format(path)?, backend) {
        (EdgeFileFormat::V1, ReaderBackend::Buffered) => Ok(Box::new(BinaryEdgeFile::open(path)?)),
        (EdgeFileFormat::V1, ReaderBackend::Mmap) => Ok(Box::new(MmapEdgeFile::open(path)?)),
        (EdgeFileFormat::V1, ReaderBackend::Prefetch) => {
            Ok(Box::new(PrefetchReader::open_v1(path)?))
        }
        (EdgeFileFormat::V2, ReaderBackend::Buffered) => Ok(Box::new(V2EdgeFile::open(path)?)),
        (EdgeFileFormat::V2, ReaderBackend::Mmap) => Ok(Box::new(MmapV2EdgeFile::open(path)?)),
        (EdgeFileFormat::V2, ReaderBackend::Prefetch) => {
            Ok(Box::new(PrefetchReader::open_v2(path)?))
        }
    }
}

impl From<ReaderKind> for ReaderBackend {
    fn from(kind: ReaderKind) -> Self {
        match kind {
            ReaderKind::Buffered => ReaderBackend::Buffered,
            ReaderKind::Mmap => ReaderBackend::Mmap,
            ReaderKind::Prefetch => ReaderBackend::Prefetch,
        }
    }
}

/// The standard [`InputProvider`]: opens path inputs through this crate's
/// format sniffing and reader backends, and serves spill-backed spools out
/// of the system temp directory.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileInput;

impl InputProvider for FileInput {
    fn open_stream(&self, path: &Path, reader: ReaderKind) -> io::Result<Box<dyn EdgeStream>> {
        open_edge_stream(path, reader.into())
    }

    fn open_ranged(
        &self,
        path: &Path,
        reader: ReaderKind,
    ) -> io::Result<Box<dyn RangedEdgeSource>> {
        ranged::open_ranged_backend(path, reader.into())
    }

    fn spool_factory(
        &self,
        budget_bytes: u64,
        threads: usize,
    ) -> io::Result<Arc<dyn SpoolFactory + Send + Sync>> {
        let factory = SpillSpoolFactory::new(
            &std::env::temp_dir(),
            &format!("tps-job-{}", std::process::id()),
            budget_bytes,
            threads,
        )?;
        Ok(Arc::new(factory))
    }

    fn page_store_provider(&self) -> io::Result<Arc<dyn PageStoreProvider>> {
        let dir = std::env::temp_dir().join(format!("tps-pages-{}", std::process::id()));
        Ok(Arc::new(page::TempPageStoreProvider::new(dir)))
    }

    fn set_decode_cache_budget(&self, bytes: u64) {
        v2::set_decode_cache_budget(bytes);
    }
}

/// Run a [`JobSpec`] with file support: path inputs are opened through
/// [`FileInput`] and `spill_budget_mb` budgets get disk-backed spools.
pub fn run_job(spec: JobSpec<'_>) -> io::Result<RunOutcome> {
    spec.run_with(&FileInput)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_graph::formats::binary::write_binary_edge_list;
    use tps_graph::stream::for_each_edge;
    use tps_graph::types::Edge;

    #[test]
    fn backend_parsing() {
        assert_eq!(
            "mmap".parse::<ReaderBackend>().unwrap(),
            ReaderBackend::Mmap
        );
        assert_eq!(
            "Buffered".parse::<ReaderBackend>().unwrap(),
            ReaderBackend::Buffered
        );
        assert_eq!(
            "prefetch".parse::<ReaderBackend>().unwrap(),
            ReaderBackend::Prefetch
        );
        assert!("spinny-disk".parse::<ReaderBackend>().is_err());
    }

    #[test]
    fn every_backend_streams_both_formats_identically() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let v1_path = dir.join(format!("tps-io-open-{pid}.bel"));
        let v2_path = dir.join(format!("tps-io-open-{pid}.bel2"));
        let edges: Vec<Edge> = (0..5000u32)
            .map(|i| Edge::new(i % 512, (i * 13) % 4096))
            .collect();
        write_binary_edge_list(&v1_path, 4096, edges.iter().copied()).unwrap();
        write_v2_edge_list(&v2_path, 4096, edges.iter().copied(), 700).unwrap();

        for path in [&v1_path, &v2_path] {
            for backend in ReaderBackend::ALL {
                let mut s = open_edge_stream(path, backend).unwrap();
                let mut seen = Vec::new();
                for_each_edge(&mut s, |e| seen.push(e)).unwrap();
                assert_eq!(seen, edges, "order diverged: {backend:?} on {path:?}");
            }
        }
        std::fs::remove_file(&v1_path).ok();
        std::fs::remove_file(&v2_path).ok();
    }

    #[test]
    fn detect_rejects_garbage() {
        let path = std::env::temp_dir().join(format!("tps-io-junk-{}", std::process::id()));
        std::fs::write(&path, b"hello world junk").unwrap();
        assert!(detect_format(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
