//! Spill-backed assignment spools: bounded-memory replay runs.
//!
//! The parallel runner and the distributed workers buffer each worker's
//! `(edge, partition)` decisions until the emit barrier, then replay them in
//! worker order (`tps_core::sink::AssignmentSpool`). The default in-memory
//! spool costs `O(|E|)` memory across workers; [`SpillSpool`] bounds it:
//! assignments are buffered up to a per-worker record budget and appended to
//! a private run file in one large sequential write per spill — the same
//! big-sequential-writes discipline as [`crate::spill::SpillingFileSink`],
//! applied to the replay path instead of the output files. Replay streams
//! the run file front-to-back and then drains the in-memory tail, so
//! insertion order is preserved exactly and a spilled run replays
//! byte-identically to an in-memory one.
//!
//! Run files live in a caller-chosen directory (typically the system temp
//! dir), are never read before their spool's replay, and are removed on
//! replay completion or drop.

use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use tps_core::sink::{AssignmentSink, AssignmentSpool, SpoolFactory};
use tps_graph::types::{Edge, PartitionId};

/// Bytes one spooled record occupies on disk: src, dst, partition.
const RECORD_BYTES: usize = 12;

static IO_SPOOL_SPILLS: tps_obs::Counter = tps_obs::Counter::new("io.spool.spills");
static IO_SPOOL_BYTES: tps_obs::Counter = tps_obs::Counter::new("io.spool.bytes");

/// A memory-bounded [`AssignmentSpool`] spilling to a private run file.
pub struct SpillSpool {
    buf: Vec<(Edge, PartitionId)>,
    /// Records buffered in memory before a spill.
    cap_records: usize,
    path: PathBuf,
    file: Option<File>,
    spilled_records: u64,
    spills: u64,
    scratch: Vec<u8>,
}

impl SpillSpool {
    /// A spool buffering at most `budget_bytes` of records in memory before
    /// spilling to `path` (minimum one record).
    pub fn create(path: PathBuf, budget_bytes: u64) -> SpillSpool {
        let cap_records = (budget_bytes as usize / RECORD_BYTES).clamp(1, 1 << 26);
        SpillSpool {
            buf: Vec::new(),
            cap_records,
            path,
            file: None,
            spilled_records: 0,
            spills: 0,
            scratch: Vec::new(),
        }
    }

    /// The in-memory record capacity.
    pub fn cap_records(&self) -> usize {
        self.cap_records
    }

    /// Budget-pressure spills so far.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    fn spill(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let file = match &mut self.file {
            Some(f) => f,
            None => {
                let f = OpenOptions::new()
                    .create(true)
                    .truncate(true)
                    .read(true)
                    .write(true)
                    .open(&self.path)?;
                self.file.insert(f)
            }
        };
        // Encode through a bounded chunk: a full-buffer scratch would
        // transiently double the spool's memory, defeating the budget.
        const CHUNK_RECORDS: usize = (64 << 10) / RECORD_BYTES;
        for chunk in self.buf.chunks(CHUNK_RECORDS) {
            self.scratch.clear();
            self.scratch.reserve(chunk.len() * RECORD_BYTES);
            for (e, p) in chunk {
                self.scratch.extend_from_slice(&e.src.to_le_bytes());
                self.scratch.extend_from_slice(&e.dst.to_le_bytes());
                self.scratch.extend_from_slice(&p.to_le_bytes());
            }
            file.write_all(&self.scratch)?;
        }
        self.spilled_records += self.buf.len() as u64;
        self.spills += 1;
        IO_SPOOL_SPILLS.incr();
        IO_SPOOL_BYTES.add(self.buf.len() as u64 * RECORD_BYTES as u64);
        self.buf.clear();
        Ok(())
    }
}

impl AssignmentSink for SpillSpool {
    #[inline]
    fn assign(&mut self, edge: Edge, p: PartitionId) -> io::Result<()> {
        self.buf.push((edge, p));
        if self.buf.len() >= self.cap_records {
            self.spill()?;
        }
        Ok(())
    }
}

impl AssignmentSpool for SpillSpool {
    fn replay(&mut self, sink: &mut dyn AssignmentSink) -> io::Result<()> {
        // Spills happen in insertion order, so the file holds the oldest
        // prefix and `buf` the newest tail.
        if let Some(mut file) = self.file.take() {
            file.flush()?;
            file.seek(SeekFrom::Start(0))?;
            let mut reader = BufReader::with_capacity(1 << 16, file);
            let mut rec = [0u8; RECORD_BYTES];
            for _ in 0..self.spilled_records {
                reader.read_exact(&mut rec)?;
                let edge = Edge {
                    src: u32::from_le_bytes(rec[0..4].try_into().unwrap()),
                    dst: u32::from_le_bytes(rec[4..8].try_into().unwrap()),
                };
                let p = u32::from_le_bytes(rec[8..12].try_into().unwrap());
                sink.assign(edge, p)?;
            }
            self.spilled_records = 0;
            drop(reader);
            std::fs::remove_file(&self.path).ok();
        }
        for (edge, p) in self.buf.drain(..) {
            sink.assign(edge, p)?;
        }
        Ok(())
    }
}

impl Drop for SpillSpool {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            std::fs::remove_file(&self.path).ok();
        }
    }
}

/// A [`SpoolFactory`] splitting `budget_bytes` evenly across `workers`
/// spill-backed spools. With this factory installed, `--threads N` runs
/// stay within the spill budget end to end: output files through
/// [`crate::spill::SpillingFileSink`], replay runs through here.
pub struct SpillSpoolFactory {
    dir: PathBuf,
    per_worker_bytes: u64,
    tag: String,
}

impl SpillSpoolFactory {
    /// A factory writing run files `<tag>.run<worker>.spool` into `dir`
    /// (created if missing), giving each of `workers` spools an even share
    /// of `budget_bytes`.
    pub fn new(dir: &Path, tag: &str, budget_bytes: u64, workers: usize) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(SpillSpoolFactory {
            dir: dir.to_path_buf(),
            per_worker_bytes: budget_bytes / workers.max(1) as u64,
            tag: tag.to_string(),
        })
    }

    /// The per-spool byte budget.
    pub fn per_worker_bytes(&self) -> u64 {
        self.per_worker_bytes
    }
}

impl SpoolFactory for SpillSpoolFactory {
    fn create_spool(&self, worker: usize) -> io::Result<Box<dyn AssignmentSpool>> {
        let path = self.dir.join(format!("{}.run{worker}.spool", self.tag));
        Ok(Box::new(SpillSpool::create(path, self.per_worker_bytes)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::sink::VecSink;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tps-io-spool-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn records(n: u32) -> Vec<(Edge, PartitionId)> {
        (0..n).map(|i| (Edge::new(i, i * 7 + 1), i % 5)).collect()
    }

    #[test]
    fn replay_preserves_order_without_spilling() {
        let dir = tmpdir("mem");
        let mut spool = SpillSpool::create(dir.join("a.spool"), 1 << 20);
        let want = records(100);
        for &(e, p) in &want {
            spool.assign(e, p).unwrap();
        }
        assert_eq!(spool.spills(), 0);
        let mut sink = VecSink::new();
        spool.replay(&mut sink).unwrap();
        assert_eq!(sink.assignments(), &want[..]);
        assert!(!dir.join("a.spool").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_budget_spills_and_replays_identically() {
        let dir = tmpdir("tiny");
        // 36 bytes -> 3 records in memory.
        let mut spool = SpillSpool::create(dir.join("b.spool"), 36);
        assert_eq!(spool.cap_records(), 3);
        let want = records(1000);
        for &(e, p) in &want {
            spool.assign(e, p).unwrap();
        }
        assert!(spool.spills() > 300, "spills {}", spool.spills());
        assert!(dir.join("b.spool").exists());
        let mut sink = VecSink::new();
        spool.replay(&mut sink).unwrap();
        assert_eq!(sink.assignments(), &want[..]);
        assert!(
            !dir.join("b.spool").exists(),
            "run file removed after replay"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_removes_run_file() {
        let dir = tmpdir("drop");
        let path = dir.join("c.spool");
        {
            let mut spool = SpillSpool::create(path.clone(), 12);
            for &(e, p) in &records(10) {
                spool.assign(e, p).unwrap();
            }
            assert!(path.exists());
        }
        assert!(!path.exists(), "dropping an unreplayed spool cleans up");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn factory_splits_budget_and_isolates_workers() {
        let dir = tmpdir("factory");
        let f = SpillSpoolFactory::new(&dir, "g", 240, 4).unwrap();
        assert_eq!(f.per_worker_bytes(), 60);
        let mut a = f.create_spool(0).unwrap();
        let mut b = f.create_spool(1).unwrap();
        let wa = records(50);
        let wb: Vec<_> = records(50).into_iter().map(|(e, p)| (e, p + 10)).collect();
        for (&(e, p), &(e2, p2)) in wa.iter().zip(&wb) {
            a.assign(e, p).unwrap();
            b.assign(e2, p2).unwrap();
        }
        let mut sa = VecSink::new();
        let mut sb = VecSink::new();
        a.replay(&mut sa).unwrap();
        b.replay(&mut sb).unwrap();
        assert_eq!(sa.assignments(), &wa[..]);
        assert_eq!(sb.assignments(), &wb[..]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_runner_with_spill_spools_matches_default() {
        use std::sync::Arc;
        use tps_core::parallel::ParallelRunner;
        use tps_core::partitioner::PartitionParams;
        use tps_core::two_phase::TwoPhaseConfig;
        use tps_graph::datasets::Dataset;

        let dir = tmpdir("runner");
        let g = Dataset::Ok.generate_scaled(0.01);
        let params = PartitionParams::new(8);
        let mut plain = VecSink::new();
        ParallelRunner::new(TwoPhaseConfig::default(), 3)
            .partition(&g, &params, &mut plain)
            .unwrap();
        let factory = Arc::new(SpillSpoolFactory::new(&dir, "pr", 4096, 3).unwrap());
        let mut spilled = VecSink::new();
        ParallelRunner::new(TwoPhaseConfig::default(), 3)
            .with_spool_factory(factory)
            .partition(&g, &params, &mut spilled)
            .unwrap();
        assert_eq!(plain.assignments(), spilled.assignments());
        std::fs::remove_dir_all(&dir).ok();
    }
}
