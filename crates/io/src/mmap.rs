//! Memory-mapped zero-copy edge streams.
//!
//! [`MmapEdgeFile`] maps a `.bel` (TPSBEL1) file read-only and serves edges
//! straight out of the page cache: no read syscalls, no copy into a user
//! buffer, and `reset` is a cursor assignment. On re-reads with a warm page
//! cache this is the fastest backend; on a cold cache the kernel's readahead
//! (hinted with `madvise(MADV_SEQUENTIAL)`) still keeps it competitive with
//! buffered reads.
//!
//! The mapping is done with a tiny private `mmap(2)` FFI binding — the
//! workspace builds offline with no `libc`/`memmap2` crates, and the three
//! symbols used here (`mmap`, `munmap`, `madvise`) are part of every Unix C
//! library. Non-Unix targets get an `Unsupported` error at `open` time.

use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};

use tps_graph::formats::binary::{EDGE_RECORD_LEN, HEADER_LEN};
use tps_graph::stream::EdgeStream;
use tps_graph::types::{Edge, GraphInfo};

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_SHARED: i32 = 1;
    pub const MADV_SEQUENTIAL: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }
}

/// A read-only memory mapping of an entire file.
///
/// Dereferences to `&[u8]`. The mapping is `MAP_SHARED` + `PROT_READ`: pages
/// are shared with the page cache and never copied.
pub struct Mmap {
    ptr: *mut std::ffi::c_void,
    len: usize,
}

// SAFETY: the mapping is read-only for its entire lifetime; concurrent reads
// of immutable memory are safe from any thread.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` read-only in full. Empty files produce an empty mapping
    /// without calling `mmap` (a zero-length mapping is EINVAL on Linux).
    #[cfg(unix)]
    pub fn map(file: &File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;

        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large to map",
            ));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: fd is valid for the duration of the call; we request a
        // fresh read-only shared mapping and check for MAP_FAILED.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        // Advisory only; ignore failures.
        unsafe { sys::madvise(ptr, len, sys::MADV_SEQUENTIAL) };
        Ok(Mmap { ptr, len })
    }

    /// Memory mapping is not wired up on this platform.
    #[cfg(not(unix))]
    pub fn map(_file: &File) -> io::Result<Mmap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mmap backend requires a Unix target",
        ))
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by self.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: ptr/len came from a successful mmap and are unmapped
            // exactly once.
            #[cfg(unix)]
            unsafe {
                sys::munmap(self.ptr, self.len);
            }
        }
    }
}

/// Decode the edge at record index `i` of a raw edge payload.
#[inline]
pub(crate) fn edge_at(payload: &[u8], i: usize) -> Edge {
    let off = i * EDGE_RECORD_LEN as usize;
    let rec: [u8; 8] = payload[off..off + 8].try_into().expect("record in bounds");
    Edge {
        src: u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]),
        dst: u32::from_le_bytes([rec[4], rec[5], rec[6], rec[7]]),
    }
}

/// A zero-copy [`EdgeStream`] over a memory-mapped TPSBEL1 file.
pub struct MmapEdgeFile {
    path: PathBuf,
    map: Mmap,
    info: GraphInfo,
    cursor: u64,
}

impl MmapEdgeFile {
    /// Map `path` and validate the v1 header.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let map = Mmap::map(&file)?;
        let bytes = map.as_slice();
        let mut cursor = bytes;
        let info = tps_graph::formats::binary::read_header(&mut cursor)?;
        // The edge count is untrusted file input: a corrupt header must
        // become an error here, not a wrapped multiply and a later panic.
        let need = info
            .num_edges
            .checked_mul(EDGE_RECORD_LEN)
            .and_then(|payload| payload.checked_add(HEADER_LEN))
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "header promises an impossible edge count {}",
                        info.num_edges
                    ),
                )
            })?;
        if (bytes.len() as u64) < need {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("file holds {} bytes, header promises {need}", bytes.len()),
            ));
        }
        Ok(MmapEdgeFile {
            path,
            map,
            info,
            cursor: 0,
        })
    }

    /// The graph summary from the header.
    pub fn info(&self) -> GraphInfo {
        self.info
    }

    /// Path this stream reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The raw edge records (zero-copy view past the header).
    pub fn edge_bytes(&self) -> &[u8] {
        let start = HEADER_LEN as usize;
        let len = (self.info.num_edges * EDGE_RECORD_LEN) as usize;
        &self.map.as_slice()[start..start + len]
    }

    /// Random access to edge `i` without advancing the stream.
    pub fn edge(&self, i: u64) -> Edge {
        assert!(i < self.info.num_edges, "edge index out of bounds");
        edge_at(self.edge_bytes(), i as usize)
    }
}

impl EdgeStream for MmapEdgeFile {
    fn reset(&mut self) -> io::Result<()> {
        self.cursor = 0;
        Ok(())
    }

    #[inline]
    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        if self.cursor >= self.info.num_edges {
            return Ok(None);
        }
        let e = edge_at(self.edge_bytes(), self.cursor as usize);
        self.cursor += 1;
        Ok(Some(e))
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.info.num_edges)
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        Some(self.info.num_vertices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_graph::formats::binary::{write_binary_edge_list, MAGIC};
    use tps_graph::stream::for_each_edge;

    fn tmpfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tps-io-mmap-{tag}-{}.bel", std::process::id()))
    }

    #[test]
    fn mmap_streams_identical_to_spec_order() {
        let path = tmpfile("order");
        let edges: Vec<Edge> = (0..1000)
            .map(|i| Edge::new(i, (i * 31 + 7) % 2048))
            .collect();
        write_binary_edge_list(&path, 2048, edges.iter().copied()).unwrap();
        let mut m = MmapEdgeFile::open(&path).unwrap();
        assert_eq!(
            m.info(),
            GraphInfo {
                num_vertices: 2048,
                num_edges: 1000
            }
        );
        let mut seen = Vec::new();
        for_each_edge(&mut m, |e| seen.push(e)).unwrap();
        assert_eq!(seen, edges);
        // Second pass identical.
        let mut again = Vec::new();
        for_each_edge(&mut m, |e| again.push(e)).unwrap();
        assert_eq!(again, edges);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn random_access_matches_stream() {
        let path = tmpfile("random");
        let edges: Vec<Edge> = (0..64).map(|i| Edge::new(i * 3, i * 5 + 1)).collect();
        write_binary_edge_list(&path, 1024, edges.iter().copied()).unwrap();
        let m = MmapEdgeFile::open(&path).unwrap();
        for (i, &e) in edges.iter().enumerate() {
            assert_eq!(m.edge(i as u64), e);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let path = tmpfile("bad");
        std::fs::write(&path, b"NOTMAGIC________________").unwrap();
        assert!(MmapEdgeFile::open(&path).is_err());

        // Valid header promising more edges than the file holds.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&100u64.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]); // only 2 edges present
        std::fs::write(&path, &bytes).unwrap();
        let err = MmapEdgeFile::open(&path)
            .err()
            .expect("truncated file must fail");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_maps_fine() {
        let path = tmpfile("empty");
        write_binary_edge_list(&path, 0, std::iter::empty()).unwrap();
        let mut m = MmapEdgeFile::open(&path).unwrap();
        assert_eq!(m.next_edge().unwrap(), None);
        std::fs::remove_file(&path).ok();
    }
}
