//! Microbenchmark of the v2 decode-path components, for profiling the SWAR
//! hot path in isolation (the `io_readers` bench times whole reader passes;
//! this pins down where a pass's nanoseconds actually go).
//!
//! Run: `cargo run --release -p tps-io --example decode_micro -- [edges]`

use std::time::Instant;

use tps_graph::types::Edge;
use tps_io::v2::{decode_chunk_payload, decode_payload, decode_payload_scalar, fnv1a32};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 16);
    // R-MAT-ish skewed ids, same shape io_readers uses.
    let edges: Vec<Edge> = (0..n as u32)
        .map(|i| {
            let s = (i.wrapping_mul(2654435761)) % 200_000;
            let d = (i.wrapping_mul(40503)) % 20_000;
            Edge::new(s, d)
        })
        .collect();
    let mut payload = Vec::new();
    for e in &edges {
        tps_io::v2::write_varint(&mut payload, e.src);
        tps_io::v2::write_varint(&mut payload, e.dst);
    }
    let sum = fnv1a32(&payload);
    println!(
        "edges {n}, payload {} B ({:.2} B/edge)",
        payload.len(),
        payload.len() as f64 / n as f64
    );

    let reps = (200_000_000 / n).max(1);
    let mut out: Vec<Edge> = Vec::with_capacity(n);

    let mut time = |label: &str, f: &mut dyn FnMut(&mut Vec<Edge>)| {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            for _ in 0..reps {
                out.clear();
                f(&mut out);
            }
            best = best.min(t.elapsed().as_secs_f64() / reps as f64);
        }
        println!(
            "{label:<28} {:>8.2} ns/edge  ({:.1} Medges/s)",
            best / n as f64 * 1e9,
            n as f64 / best / 1e6
        );
    };

    time("fnv1a32 only", &mut |_| {
        std::hint::black_box(fnv1a32(&payload));
    });
    time("scalar decode", &mut |out| {
        decode_payload_scalar(&payload, n as u32, out).unwrap();
    });
    time("swar decode", &mut |out| {
        decode_payload(&payload, n as u32, out).unwrap();
    });
    time("fused decode+checksum", &mut |out| {
        decode_chunk_payload(&payload, n as u32, Some(sum), out).unwrap();
    });
    time("fnv then swar (unfused)", &mut |out| {
        assert_eq!(fnv1a32(&payload), sum);
        decode_payload(&payload, n as u32, out).unwrap();
    });

    // Serve + fingerprint: the common per-edge consumer cost every backend
    // pays in io_readers' stream_fingerprint.
    decode_payload(&payload, n as u32, &mut out).unwrap();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..reps {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for e in &out {
                for b in e.src.to_le_bytes().into_iter().chain(e.dst.to_le_bytes()) {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
            std::hint::black_box(h);
        }
        best = best.min(t.elapsed().as_secs_f64() / reps as f64);
    }
    println!(
        "{:<28} {:>8.2} ns/edge  ({:.1} Medges/s)",
        "fingerprint consumer",
        best / n as f64 * 1e9,
        n as f64 / best / 1e6
    );
}
