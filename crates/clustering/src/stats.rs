//! Clustering statistics: size/volume distribution and intra-cluster edge
//! fraction.
//!
//! The intra-cluster fraction is the single number that predicts how much of
//! phase 2 will be resolved by pre-partitioning (paper Fig. 6: "different
//! from social network graphs, prepartitioning dominates in web graphs").

use std::io;

use tps_graph::stream::{for_each_edge, EdgeStream};

use crate::model::Clustering;

/// Summary statistics of a clustering.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusteringStats {
    /// Clusters with at least one member.
    pub nonempty_clusters: usize,
    /// Members of the largest cluster (by count).
    pub largest_cluster_members: u64,
    /// Largest cluster volume.
    pub max_volume: u64,
    /// Mean volume over non-empty clusters.
    pub mean_volume: f64,
    /// Vertices assigned to some cluster.
    pub assigned_vertices: u64,
}

/// Compute membership/volume statistics in `O(|V| + #clusters)`.
pub fn clustering_stats(clustering: &Clustering) -> ClusteringStats {
    let ids = clustering.num_cluster_ids() as usize;
    let mut members = vec![0u64; ids];
    let mut assigned = 0u64;
    for v in 0..clustering.num_vertices() as u32 {
        if let Some(c) = clustering.cluster_of(v) {
            members[c as usize] += 1;
            assigned += 1;
        }
    }
    let nonempty = members.iter().filter(|&&m| m > 0).count();
    let largest = members.iter().copied().max().unwrap_or(0);
    let max_volume = clustering.max_volume();
    let total_volume: u64 = clustering.volumes().iter().sum();
    let mean_volume = if nonempty == 0 {
        0.0
    } else {
        total_volume as f64 / nonempty as f64
    };
    ClusteringStats {
        nonempty_clusters: nonempty,
        largest_cluster_members: largest,
        max_volume,
        mean_volume,
        assigned_vertices: assigned,
    }
}

/// Fraction of stream edges whose endpoints share a cluster.
/// One extra pass over the stream; `O(1)` extra memory.
pub fn intra_cluster_fraction<S: EdgeStream + ?Sized>(
    stream: &mut S,
    clustering: &Clustering,
) -> io::Result<f64> {
    let mut intra = 0u64;
    let mut total = 0u64;
    for_each_edge(stream, |e| {
        total += 1;
        let cu = clustering.raw_cluster_of(e.src);
        if cu != crate::model::NO_CLUSTER && cu == clustering.raw_cluster_of(e.dst) {
            intra += 1;
        }
    })?;
    Ok(if total == 0 {
        0.0
    } else {
        intra as f64 / total as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NO_CLUSTER;
    use tps_graph::stream::InMemoryGraph;
    use tps_graph::types::Edge;

    #[test]
    fn stats_on_hand_built_clustering() {
        // 4 vertices: {0,1} in cluster 0 (volume 5), {2} in cluster 1
        // (volume 2), vertex 3 unassigned.
        let c = Clustering::from_parts(vec![0, 0, 1, NO_CLUSTER], vec![5, 2]);
        let s = clustering_stats(&c);
        assert_eq!(s.nonempty_clusters, 2);
        assert_eq!(s.largest_cluster_members, 2);
        assert_eq!(s.max_volume, 5);
        assert!((s.mean_volume - 3.5).abs() < 1e-12);
        assert_eq!(s.assigned_vertices, 3);
    }

    #[test]
    fn intra_fraction_counts_correctly() {
        let g = InMemoryGraph::from_edges(vec![
            Edge::new(0, 1), // intra (cluster 0)
            Edge::new(1, 2), // inter
            Edge::new(2, 3), // intra (cluster 1)
        ]);
        let c = Clustering::from_parts(vec![0, 0, 1, 1], vec![4, 4]);
        let mut s = g.stream();
        let f = intra_cluster_fraction(&mut s, &c).unwrap();
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unassigned_endpoints_never_count_as_intra() {
        let g = InMemoryGraph::from_edges(vec![Edge::new(0, 1)]);
        let c = Clustering::from_parts(vec![NO_CLUSTER, NO_CLUSTER], vec![]);
        let mut s = g.stream();
        assert_eq!(intra_cluster_fraction(&mut s, &c).unwrap(), 0.0);
    }

    #[test]
    fn empty_graph_fraction_is_zero() {
        let g = InMemoryGraph::from_edges(vec![]);
        let c = Clustering::empty(0);
        let mut s = g.stream();
        assert_eq!(intra_cluster_fraction(&mut s, &c).unwrap(), 0.0);
    }
}
