//! The 2PS-L streaming clustering pass (paper Algorithm 1).
//!
//! For every edge `(u, v)` of the stream:
//!
//! 1. endpoints without a cluster get a fresh singleton cluster whose volume
//!    is their **exact** degree (paper extension #1 — the original Hollocou
//!    algorithm uses partial degrees and cannot bound volumes);
//! 2. if both endpoint clusters are within the volume cap, the endpoint
//!    whose cluster has the smaller *residual* volume (volume minus own
//!    degree) migrates into the other endpoint's cluster — provided the
//!    target stays within the cap.
//!
//! Re-streaming (paper extension #2) repeats the same pass with retained
//! state; every visit of a vertex may refine its assignment.

use std::io;

use tps_graph::degree::DegreeTable;
use tps_graph::stream::{for_each_edge, EdgeStream};

use crate::model::{Clustering, NO_CLUSTER};
use crate::table::ClusterTable;

/// How the cluster volume cap is chosen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VolumeCap {
    /// `cap = fraction × Σ_v d(v)` — the paper's usage sets
    /// `fraction = volume_cap_factor / k` so a cluster never exceeds (a
    /// multiple of) one partition's fair share of volume.
    FractionOfTotal(f64),
    /// An explicit absolute cap.
    Explicit(u64),
    /// No cap (the original Hollocou behaviour; ablation only — partition
    /// balance can then force cutting through clusters).
    Unbounded,
}

impl VolumeCap {
    /// Resolve to an absolute volume bound given the total graph volume.
    pub fn resolve(self, total_volume: u64) -> u64 {
        match self {
            VolumeCap::FractionOfTotal(f) => {
                assert!(f > 0.0, "volume cap fraction must be positive");
                ((total_volume as f64 * f).ceil() as u64).max(1)
            }
            VolumeCap::Explicit(v) => v.max(1),
            VolumeCap::Unbounded => u64::MAX,
        }
    }
}

/// Configuration of the clustering phase.
#[derive(Clone, Copy, Debug)]
pub struct ClusteringConfig {
    /// Volume cap policy.
    pub cap: VolumeCap,
    /// Number of streaming passes (1 = no re-streaming, the paper's
    /// recommended default; Fig. 7/8 sweep 1–8).
    pub passes: u32,
}

impl ClusteringConfig {
    /// The paper's standard setting for partitioning into `k` parts:
    /// `cap = cap_factor × 2|E|/k`, `passes` streaming passes.
    pub fn for_partitions(k: u32, cap_factor: f64, passes: u32) -> Self {
        assert!(k > 0, "k must be positive");
        ClusteringConfig {
            cap: VolumeCap::FractionOfTotal(cap_factor / k as f64),
            passes,
        }
    }

    /// Single-pass clustering with the default cap factor 1.0.
    pub fn default_for_partitions(k: u32) -> Self {
        Self::for_partitions(k, 1.0, 1)
    }
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig {
            cap: VolumeCap::FractionOfTotal(1.0 / 32.0),
            passes: 1,
        }
    }
}

/// Run Algorithm 1: `config.passes` streaming passes over `stream` with
/// exact degrees from `degrees`.
///
/// Returns the final [`Clustering`]. The stream is reset before each pass.
pub fn cluster_stream<S: EdgeStream + ?Sized>(
    stream: &mut S,
    degrees: &DegreeTable,
    config: &ClusteringConfig,
) -> io::Result<Clustering> {
    assert!(
        config.passes >= 1,
        "at least one clustering pass is required"
    );
    let mut clustering = Clustering::empty(degrees.len() as u64);
    let max_vol = config.cap.resolve(degrees.total_volume());
    for _ in 0..config.passes {
        clustering_pass(stream, degrees, max_vol, &mut clustering)?;
    }
    Ok(clustering)
}

/// One streaming pass (Algorithm 1 lines 9–22), reusing existing state.
/// Exposed so callers can interleave passes with their own instrumentation
/// (the re-streaming experiment times each pass separately).
pub fn clustering_pass<S: EdgeStream + ?Sized>(
    stream: &mut S,
    degrees: &DegreeTable,
    max_vol: u64,
    clustering: &mut Clustering,
) -> io::Result<()> {
    clustering_pass_on(stream, degrees, max_vol, clustering)
}

/// [`clustering_pass`], generic over the cluster-state storage: the same
/// decision sequence runs against the flat in-memory [`Clustering`] or the
/// budget-bounded [`crate::paged::PagedClustering`], so the two are
/// bit-identical by construction (every read and write goes through the
/// same [`ClusterTable`] calls in the same order).
pub fn clustering_pass_on<S: EdgeStream + ?Sized, T: ClusterTable>(
    stream: &mut S,
    degrees: &DegreeTable,
    max_vol: u64,
    clustering: &mut T,
) -> io::Result<()> {
    for_each_edge(stream, |e| {
        let (u, v) = (e.src, e.dst);
        // Lines 11–15: late cluster creation with exact-degree volume.
        let mut cu = clustering.cluster_of(u);
        if cu == NO_CLUSTER {
            cu = clustering.create_cluster(u, degrees.degree(u) as u64);
        }
        let mut cv = clustering.cluster_of(v);
        if cv == NO_CLUSTER {
            cv = clustering.create_cluster(v, degrees.degree(v) as u64);
        }
        if cu == cv {
            return; // same cluster (includes self-loops): nothing to migrate
        }
        // Line 16: both clusters must currently respect the cap.
        let vol_u = clustering.volume(cu);
        let vol_v = clustering.volume(cv);
        if vol_u > max_vol || vol_v > max_vol {
            return;
        }
        // Lines 17–18: the endpoint whose cluster has the smaller residual
        // volume (volume minus its own degree) is the migration candidate;
        // ties go to the first endpoint.
        let du = degrees.degree(u) as u64;
        let dv = degrees.degree(v) as u64;
        let (vs, ds, cs, cl) = if vol_u.saturating_sub(du) <= vol_v.saturating_sub(dv) {
            (u, du, cu, cv)
        } else {
            (v, dv, cv, cu)
        };
        let _ = cs;
        // Lines 19–22: migrate if the target stays within the cap.
        if clustering.volume(cl) + ds <= max_vol {
            clustering.migrate(vs, ds, cl);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_graph::gen::planted::PlantedConfig;
    use tps_graph::gen::{planted, GenOptions};
    use tps_graph::stream::InMemoryGraph;
    use tps_graph::types::Edge;

    fn degrees_of(g: &InMemoryGraph) -> DegreeTable {
        let mut s = g.stream();
        DegreeTable::compute(&mut s, g.num_vertices()).unwrap()
    }

    /// Two triangles joined by a single bridge edge.
    fn two_triangles() -> InMemoryGraph {
        InMemoryGraph::from_edges(vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 0),
            Edge::new(3, 4),
            Edge::new(4, 5),
            Edge::new(5, 3),
            Edge::new(2, 3), // bridge
        ])
    }

    #[test]
    fn clusters_triangles_together() {
        let g = two_triangles();
        let d = degrees_of(&g);
        let mut s = g.stream();
        let cfg = ClusteringConfig {
            cap: VolumeCap::FractionOfTotal(0.5),
            passes: 2,
        };
        let c = cluster_stream(&mut s, &d, &cfg).unwrap();
        // Vertices of the same triangle should share a cluster.
        assert_eq!(c.cluster_of(0), c.cluster_of(1));
        assert_eq!(c.cluster_of(1), c.cluster_of(2));
        assert_eq!(c.cluster_of(3), c.cluster_of(4));
        assert_eq!(c.cluster_of(4), c.cluster_of(5));
        c.check_volume_invariant(&d).unwrap();
    }

    #[test]
    fn volume_invariant_holds_after_each_pass_count() {
        let g = planted::generate(&PlantedConfig::web(500, 2500), 3);
        let d = degrees_of(&g);
        for passes in 1..=4 {
            let mut s = g.stream();
            let cfg = ClusteringConfig {
                cap: VolumeCap::FractionOfTotal(1.0 / 8.0),
                passes,
            };
            let c = cluster_stream(&mut s, &d, &cfg).unwrap();
            c.check_volume_invariant(&d).unwrap();
        }
    }

    #[test]
    fn multi_member_clusters_respect_cap() {
        let g = planted::generate(&PlantedConfig::web(1000, 6000), 9);
        let d = degrees_of(&g);
        let total = d.total_volume();
        let cap = VolumeCap::FractionOfTotal(1.0 / 16.0);
        let abs_cap = cap.resolve(total);
        let mut s = g.stream();
        let c = cluster_stream(&mut s, &d, &ClusteringConfig { cap, passes: 1 }).unwrap();
        // Count members per cluster; multi-member clusters must be ≤ cap
        // (singletons may exceed it if one vertex's degree already does).
        let mut members = vec![0u32; c.num_cluster_ids() as usize];
        for v in 0..g.num_vertices() as u32 {
            if let Some(cl) = c.cluster_of(v) {
                members[cl as usize] += 1;
            }
        }
        for (cl, &m) in members.iter().enumerate() {
            if m >= 2 {
                assert!(
                    c.volume(cl as u32) <= abs_cap,
                    "cluster {cl} with {m} members has volume {} > cap {abs_cap}",
                    c.volume(cl as u32)
                );
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = planted::generate(&PlantedConfig::web(300, 1500), 5);
        let d = degrees_of(&g);
        let cfg = ClusteringConfig::default_for_partitions(8);
        let mut s1 = g.stream();
        let a = cluster_stream(&mut s1, &d, &cfg).unwrap();
        let mut s2 = g.stream();
        let b = cluster_stream(&mut s2, &d, &cfg).unwrap();
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(a.cluster_of(v), b.cluster_of(v));
        }
    }

    #[test]
    fn empty_stream_produces_empty_clustering() {
        let g = InMemoryGraph::from_edges(vec![]);
        let d = degrees_of(&g);
        let mut s = g.stream();
        let c = cluster_stream(&mut s, &d, &ClusteringConfig::default()).unwrap();
        assert_eq!(c.num_cluster_ids(), 0);
    }

    #[test]
    fn self_loops_get_a_cluster_without_migration() {
        let g = InMemoryGraph::from_edges(vec![Edge::new(0, 0), Edge::new(1, 2)]);
        let d = degrees_of(&g);
        let mut s = g.stream();
        let c = cluster_stream(&mut s, &d, &ClusteringConfig::default()).unwrap();
        assert!(c.cluster_of(0).is_some());
        c.check_volume_invariant(&d).unwrap();
    }

    #[test]
    fn unbounded_cap_merges_connected_graph_into_one_cluster() {
        // On a path graph with unbounded volumes, repeated passes glue
        // everything into a single cluster.
        let edges: Vec<Edge> = (0..20).map(|i| Edge::new(i, i + 1)).collect();
        let g = InMemoryGraph::from_edges(edges);
        let d = degrees_of(&g);
        let mut s = g.stream();
        let cfg = ClusteringConfig {
            cap: VolumeCap::Unbounded,
            passes: 8,
        };
        let c = cluster_stream(&mut s, &d, &cfg).unwrap();
        assert_eq!(c.num_nonempty_clusters(), 1);
        c.check_volume_invariant(&d).unwrap();
    }

    #[test]
    fn restreaming_does_not_hurt_planted_recovery() {
        // Intra-cluster edge fraction should not degrade with more passes.
        let cfg_graph = PlantedConfig {
            opts: GenOptions {
                shuffle_edges: true,
                ..PlantedConfig::web(2_000, 12_000).opts
            },
            ..PlantedConfig::web(2_000, 12_000)
        };
        let g = planted::generate(&cfg_graph, 21);
        let d = degrees_of(&g);
        let frac = |passes: u32| -> f64 {
            let mut s = g.stream();
            let c = cluster_stream(
                &mut s,
                &d,
                &ClusteringConfig {
                    cap: VolumeCap::FractionOfTotal(1.0 / 4.0),
                    passes,
                },
            )
            .unwrap();
            let intra = g
                .edges()
                .iter()
                .filter(|e| c.cluster_of(e.src) == c.cluster_of(e.dst))
                .count();
            intra as f64 / g.num_edges() as f64
        };
        let one = frac(1);
        let four = frac(4);
        assert!(one > 0.3, "single pass already finds structure, got {one}");
        assert!(four >= one - 0.05, "re-streaming degraded: {one} -> {four}");
    }

    #[test]
    fn cap_resolution() {
        assert_eq!(VolumeCap::FractionOfTotal(0.25).resolve(100), 25);
        assert_eq!(VolumeCap::Explicit(7).resolve(100), 7);
        assert_eq!(VolumeCap::Unbounded.resolve(100), u64::MAX);
        // Ceil and floor-at-1 behaviour.
        assert_eq!(VolumeCap::FractionOfTotal(0.001).resolve(100), 1);
    }
}
