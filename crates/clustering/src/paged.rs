//! Budget-bounded, disk-backed cluster state: the out-of-core counterpart
//! of [`Clustering`](crate::model::Clustering).
//!
//! The paper's pitch is out-of-core partitioning at linear run-time, but a
//! flat `Vec`-backed clustering still ties peak RSS to `O(|V|)`.
//! [`PagedClustering`] removes that term: the three per-vertex/per-cluster
//! arrays of phase 1+2 — vertex→cluster (`v2c`), cluster volumes (`vol`)
//! and cluster→partition (`c2p`) — are split into fixed-size pages, of
//! which at most `budget / page_size` are resident at once. Hot pages are
//! pinned by a strict LRU; cold dirty pages are written back in batches
//! through a [`PageBacking`] (the file-backed store lives in `tps-io`,
//! which `tps-clustering` cannot depend on — the trait points the
//! dependency the right way round).
//!
//! Determinism: page faults and evictions are a pure function of the access
//! sequence (LRU order is tracked by a monotonic counter, never by wall
//! time), so two runs over the same stream issue identical reads and
//! writes — and because every access goes through the same
//! [`ClusterTable`] calls as the in-memory path, the partitioning output
//! is bit-identical at **every** budget, including a budget of zero (which
//! degenerates to a single resident frame: fully external, constant
//! memory, maximum I/O).

use std::collections::HashMap;
use std::io;

use tps_graph::types::{ClusterId, PartitionId, VertexId};

use crate::model::NO_CLUSTER;
use crate::table::ClusterTable;

/// Default page size: 64 KiB (16 Ki `u32` entries / 8 Ki `u64` entries).
pub const DEFAULT_PAGE_SIZE: usize = 64 * 1024;

/// Dirty pages buffered before a batched [`PageBacking::write_pages`] call.
/// This bounds the write-back staging memory to
/// `WRITE_BATCH_PAGES × page_size` — part of the fixed overhead on top of
/// the configured budget.
pub const WRITE_BATCH_PAGES: usize = 8;

/// The three paged arrays, encoded into the page key's kind bits.
const KIND_V2C: u8 = 0;
const KIND_VOL: u8 = 1;
const KIND_C2P: u8 = 2;

/// Byte every page of `kind` starts life filled with: `0xFF` yields
/// `NO_CLUSTER` / unplaced sentinels for the u32 maps, `0x00` yields zero
/// volumes.
fn fill_byte(kind: u8) -> u8 {
    match kind {
        KIND_VOL => 0x00,
        _ => 0xFF,
    }
}

fn page_key(kind: u8, page_no: u64) -> u64 {
    debug_assert!(page_no < 1 << 40, "page number overflows the key space");
    ((kind as u64) << 40) | page_no
}

/// Where evicted pages go: the storage backend of a [`PagedClustering`].
///
/// Implementations store whole pages addressed by an opaque `u64` key.
/// Pages are all the same size for the lifetime of a store.
pub trait PageBacking: Send {
    /// Read page `key` into `buf` (exactly one page long). Returns `false`
    /// if the page was never written — the caller applies the default fill.
    /// Corrupt or truncated stored pages must surface as `Err`, never as
    /// silently wrong bytes.
    fn read_page(&mut self, key: u64, buf: &mut [u8]) -> io::Result<bool>;

    /// Persist a batch of pages (write-back batching: the table buffers up
    /// to [`WRITE_BATCH_PAGES`] evicted dirty pages per call).
    fn write_pages(&mut self, pages: &[(u64, Vec<u8>)]) -> io::Result<()>;
}

/// Creates fresh page stores: the seam `tps-core` uses to ask its I/O
/// provider for disk-backed storage without `tps-core`/`tps-clustering`
/// depending on `tps-io`.
pub trait PageStoreProvider: Send + Sync {
    /// Open a new, empty page store for `page_size`-byte pages.
    fn open_store(&self, page_size: usize) -> io::Result<Box<dyn PageBacking>>;
}

/// An in-memory [`PageBacking`] (tests, and environments without an I/O
/// provider). Defeats the RSS purpose of paging — the pages just move into
/// a map — but preserves the exact fault/eviction/batching behaviour, so
/// bit-identity and determinism tests run without touching disk.
#[derive(Debug, Default)]
pub struct MemPageBacking {
    pages: HashMap<u64, Vec<u8>>,
}

impl MemPageBacking {
    /// An empty in-memory backing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct pages ever written.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }
}

impl PageBacking for MemPageBacking {
    fn read_page(&mut self, key: u64, buf: &mut [u8]) -> io::Result<bool> {
        match self.pages.get(&key) {
            Some(data) => {
                buf.copy_from_slice(data);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn write_pages(&mut self, pages: &[(u64, Vec<u8>)]) -> io::Result<()> {
        for (key, data) in pages {
            self.pages.insert(*key, data.clone());
        }
        Ok(())
    }
}

/// A [`PageStoreProvider`] handing out [`MemPageBacking`]s.
#[derive(Debug, Default)]
pub struct MemPageStoreProvider;

impl PageStoreProvider for MemPageStoreProvider {
    fn open_store(&self, _page_size: usize) -> io::Result<Box<dyn PageBacking>> {
        Ok(Box::new(MemPageBacking::new()))
    }
}

/// Fault/eviction statistics of a [`PagedClustering`] (run reports).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PagingStats {
    /// Page faults (accesses that missed the resident frame pool).
    pub faults: u64,
    /// Frames evicted to make room (dirty or clean).
    pub evictions: u64,
    /// Dirty pages pushed through the write-back path.
    pub writebacks: u64,
}

struct Frame {
    key: u64,
    data: Vec<u8>,
    dirty: bool,
    /// Monotonic last-use stamp — the LRU order. Deterministic: stamps come
    /// from an access counter, never from time.
    last_use: u64,
}

/// The paged cluster table: `v2c`, `vol` and `c2p` behind one LRU frame
/// pool bounded by a byte budget.
///
/// Implements [`ClusterTable`], so
/// [`clustering_pass_on`](crate::streaming::clustering_pass_on) runs
/// against it unchanged; phase-2 helpers (`partition_of`,
/// `for_each_volume`) cover the mapping and assignment passes.
///
/// I/O errors poison the table instead of panicking: affected accessors
/// return default values and the first error is surfaced by
/// [`check_io`](PagedClustering::check_io), which callers run after every
/// phase (the [`ClusterTable`] accessors cannot return `Result` — the hot
/// loop is shared with the infallible in-memory path).
pub struct PagedClustering {
    num_vertices: u64,
    next_id: u32,
    page_size: usize,
    max_frames: usize,
    frames: Vec<Frame>,
    /// Page key → index into `frames`.
    resident: HashMap<u64, usize>,
    /// Evicted dirty pages staged for the next batched write.
    pending: Vec<(u64, Vec<u8>)>,
    backing: Box<dyn PageBacking>,
    clock: u64,
    stats: PagingStats,
    error: Option<io::Error>,
}

impl std::fmt::Debug for PagedClustering {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedClustering")
            .field("num_vertices", &self.num_vertices)
            .field("next_id", &self.next_id)
            .field("page_size", &self.page_size)
            .field("max_frames", &self.max_frames)
            .field("resident", &self.resident.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl PagedClustering {
    /// An empty paged clustering over `num_vertices` vertices, keeping at
    /// most `budget_bytes` of pages resident (a zero budget still pins one
    /// frame — the fully-external degeneration).
    pub fn new(num_vertices: u64, budget_bytes: u64, backing: Box<dyn PageBacking>) -> Self {
        Self::with_page_size(num_vertices, budget_bytes, DEFAULT_PAGE_SIZE, backing)
    }

    /// [`PagedClustering::new`] with an explicit page size (tests use tiny
    /// pages to force eviction on small graphs). `page_size` must be a
    /// multiple of 8 so no entry straddles a page boundary.
    pub fn with_page_size(
        num_vertices: u64,
        budget_bytes: u64,
        page_size: usize,
        backing: Box<dyn PageBacking>,
    ) -> Self {
        assert!(
            page_size >= 8 && page_size.is_multiple_of(8),
            "page size must be a positive multiple of 8"
        );
        let max_frames = ((budget_bytes / page_size as u64) as usize).max(1);
        PagedClustering {
            num_vertices,
            next_id: 0,
            page_size,
            max_frames,
            frames: Vec::new(),
            resident: HashMap::new(),
            pending: Vec::new(),
            backing,
            clock: 0,
            stats: PagingStats::default(),
            error: None,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Number of cluster ids ever allocated.
    pub fn num_cluster_ids(&self) -> u32 {
        self.next_id
    }

    /// Resident page-pool bytes (≤ budget, modulo the one-frame floor).
    pub fn resident_bytes(&self) -> u64 {
        (self.frames.len() * self.page_size) as u64
    }

    /// Fault/eviction statistics so far.
    pub fn stats(&self) -> PagingStats {
        self.stats
    }

    /// Surface the first I/O error the table swallowed, if any. Call after
    /// each phase; a poisoned table keeps returning defaults, so skipping
    /// this check risks silently wrong output.
    pub fn check_io(&mut self) -> io::Result<()> {
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn fail(&mut self, e: io::Error) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    fn flush_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending);
        if let Err(e) = self.backing.write_pages(&batch) {
            self.fail(e);
        }
    }

    /// Bring page `key` resident and return its frame index.
    fn frame_for(&mut self, key: u64) -> usize {
        self.clock += 1;
        if let Some(&idx) = self.resident.get(&key) {
            self.frames[idx].last_use = self.clock;
            return idx;
        }
        self.stats.faults += 1;
        let idx = if self.frames.len() < self.max_frames {
            self.frames.push(Frame {
                key,
                data: vec![0; self.page_size],
                dirty: false,
                last_use: self.clock,
            });
            self.frames.len() - 1
        } else {
            // Evict the least-recently-used frame (stamps are unique, so
            // the victim — and therefore the whole I/O sequence — is
            // deterministic).
            let idx = self
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.last_use)
                .map(|(i, _)| i)
                .expect("frame pool is non-empty once full");
            let old_key = self.frames[idx].key;
            self.resident.remove(&old_key);
            self.stats.evictions += 1;
            if self.frames[idx].dirty {
                self.stats.writebacks += 1;
                let data = self.frames[idx].data.clone();
                self.pending.push((old_key, data));
                if self.pending.len() >= WRITE_BATCH_PAGES {
                    self.flush_pending();
                }
            }
            self.frames[idx].key = key;
            self.frames[idx].last_use = self.clock;
            idx
        };
        // Load: newest data may still sit in the write-back buffer.
        if let Some(pos) = self.pending.iter().position(|(k, _)| *k == key) {
            let (_, data) = self.pending.swap_remove(pos);
            self.frames[idx].data.copy_from_slice(&data);
            // Never reached the backing — must stay dirty or it is lost.
            self.frames[idx].dirty = true;
        } else {
            let kind = (key >> 40) as u8;
            let mut buf = std::mem::take(&mut self.frames[idx].data);
            let found = match self.backing.read_page(key, &mut buf) {
                Ok(found) => found,
                Err(e) => {
                    self.fail(e);
                    false
                }
            };
            if !found {
                buf.fill(fill_byte(kind));
            }
            self.frames[idx].data = buf;
            self.frames[idx].dirty = false;
        }
        self.resident.insert(key, idx);
        idx
    }

    fn load_u32(&mut self, kind: u8, index: u64) -> u32 {
        let per_page = (self.page_size / 4) as u64;
        let idx = self.frame_for(page_key(kind, index / per_page));
        let off = (index % per_page) as usize * 4;
        u32::from_le_bytes(self.frames[idx].data[off..off + 4].try_into().unwrap())
    }

    fn store_u32(&mut self, kind: u8, index: u64, value: u32) {
        let per_page = (self.page_size / 4) as u64;
        let idx = self.frame_for(page_key(kind, index / per_page));
        let off = (index % per_page) as usize * 4;
        self.frames[idx].data[off..off + 4].copy_from_slice(&value.to_le_bytes());
        self.frames[idx].dirty = true;
    }

    fn load_u64(&mut self, kind: u8, index: u64) -> u64 {
        let per_page = (self.page_size / 8) as u64;
        let idx = self.frame_for(page_key(kind, index / per_page));
        let off = (index % per_page) as usize * 8;
        u64::from_le_bytes(self.frames[idx].data[off..off + 8].try_into().unwrap())
    }

    fn store_u64(&mut self, kind: u8, index: u64, value: u64) {
        let per_page = (self.page_size / 8) as u64;
        let idx = self.frame_for(page_key(kind, index / per_page));
        let off = (index % per_page) as usize * 8;
        self.frames[idx].data[off..off + 8].copy_from_slice(&value.to_le_bytes());
        self.frames[idx].dirty = true;
    }

    /// Raw cluster id of `v` (`NO_CLUSTER` when unassigned).
    #[inline]
    pub fn raw_cluster_of(&mut self, v: VertexId) -> ClusterId {
        self.load_u32(KIND_V2C, v as u64)
    }

    /// Volume of cluster `c`.
    #[inline]
    pub fn cluster_volume(&mut self, c: ClusterId) -> u64 {
        self.load_u64(KIND_VOL, c as u64)
    }

    /// Record the partition placement of cluster `c` (phase-2 mapping).
    #[inline]
    pub fn set_partition_of(&mut self, c: ClusterId, p: PartitionId) {
        self.store_u32(KIND_C2P, c as u64, p);
    }

    /// Partition placement of cluster `c` (must have been set).
    #[inline]
    pub fn partition_of(&mut self, c: ClusterId) -> PartitionId {
        let p = self.load_u32(KIND_C2P, c as u64);
        debug_assert_ne!(p, u32::MAX, "cluster {c} queried before placement");
        p
    }

    /// Sequentially visit `(cluster id, volume)` for every allocated id —
    /// the mapping phase's input scan. Pages are visited in order, so the
    /// scan touches each volume page exactly once.
    pub fn for_each_volume(&mut self, mut f: impl FnMut(ClusterId, u64)) {
        for c in 0..self.next_id {
            let vol = self.load_u64(KIND_VOL, c as u64);
            f(c, vol);
        }
    }

    /// Number of clusters with non-zero volume (scan).
    pub fn num_nonempty_clusters(&mut self) -> u64 {
        let mut n = 0;
        self.for_each_volume(|_, vol| n += u64::from(vol > 0));
        n
    }

    /// Largest cluster volume (scan; 0 if no clusters).
    pub fn max_volume(&mut self) -> u64 {
        let mut max = 0;
        self.for_each_volume(|_, vol| max = max.max(vol));
        max
    }
}

impl ClusterTable for PagedClustering {
    #[inline]
    fn cluster_of(&mut self, v: VertexId) -> ClusterId {
        self.raw_cluster_of(v)
    }

    #[inline]
    fn volume(&mut self, c: ClusterId) -> u64 {
        self.cluster_volume(c)
    }

    #[inline]
    fn create_cluster(&mut self, v: VertexId, vol: u64) -> ClusterId {
        let id = self.next_id;
        self.next_id += 1;
        self.store_u64(KIND_VOL, id as u64, vol);
        self.store_u32(KIND_V2C, v as u64, id);
        id
    }

    #[inline]
    fn migrate(&mut self, v: VertexId, d: u64, to: ClusterId) {
        let from = self.load_u32(KIND_V2C, v as u64);
        debug_assert_ne!(from, NO_CLUSTER);
        debug_assert_ne!(from, to);
        let from_vol = self.load_u64(KIND_VOL, from as u64);
        self.store_u64(KIND_VOL, from as u64, from_vol - d);
        let to_vol = self.load_u64(KIND_VOL, to as u64);
        self.store_u64(KIND_VOL, to as u64, to_vol + d);
        self.store_u32(KIND_V2C, v as u64, to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Clustering;
    use crate::streaming::{clustering_pass_on, VolumeCap};
    use std::sync::{Arc, Mutex};
    use tps_graph::degree::DegreeTable;
    use tps_graph::gen::planted;
    use tps_graph::gen::planted::PlantedConfig;
    use tps_graph::stream::InMemoryGraph;

    fn mem_table(num_vertices: u64, budget: u64, page_size: usize) -> PagedClustering {
        PagedClustering::with_page_size(
            num_vertices,
            budget,
            page_size,
            Box::new(MemPageBacking::new()),
        )
    }

    #[test]
    fn basic_ops_match_in_memory() {
        let mut paged = mem_table(4, 0, 16); // 1 frame of 16 bytes: constant thrash
        let mut flat = Clustering::empty(4);
        let a = paged.create_cluster(0, 3);
        assert_eq!(a, flat.create_cluster(0, 3));
        let b = paged.create_cluster(1, 5);
        assert_eq!(b, flat.create_cluster(1, 5));
        paged.migrate(0, 3, b);
        flat.migrate(0, 3, b);
        for v in 0..4u32 {
            assert_eq!(paged.raw_cluster_of(v), flat.raw_cluster_of(v), "v={v}");
        }
        for c in [a, b] {
            assert_eq!(paged.cluster_volume(c), flat.volume(c), "c={c}");
        }
        paged.check_io().unwrap();
        assert!(paged.stats().faults > 0, "a 1-frame pool must fault");
        assert_eq!(paged.resident_bytes(), 16);
    }

    #[test]
    fn unset_state_reads_as_defaults() {
        let mut t = mem_table(100, 1024, 64);
        assert_eq!(t.raw_cluster_of(99), NO_CLUSTER);
        assert_eq!(t.cluster_volume(7), 0);
        assert_eq!(t.num_cluster_ids(), 0);
        assert_eq!(t.max_volume(), 0);
    }

    #[test]
    fn budget_caps_resident_bytes() {
        let page = 64;
        let mut t = mem_table(10_000, 4 * page as u64, page);
        for v in 0..10_000u32 {
            t.create_cluster(v, 1);
        }
        assert!(t.resident_bytes() <= 4 * page as u64);
        assert!(t.stats().evictions > 0);
        t.check_io().unwrap();
    }

    fn run_pass(table: &mut impl ClusterTable, g: &InMemoryGraph, passes: u32) -> DegreeTable {
        let mut s = g.stream();
        let degrees = DegreeTable::compute(&mut s, g.num_vertices()).unwrap();
        let cap = VolumeCap::FractionOfTotal(1.0 / 8.0).resolve(degrees.total_volume());
        for _ in 0..passes {
            let mut s = g.stream();
            clustering_pass_on(&mut s, &degrees, cap, table).unwrap();
        }
        degrees
    }

    /// The tentpole invariant: paged and flat state produce bit-identical
    /// clusterings at every budget, including zero.
    #[test]
    fn bit_identical_to_flat_at_zero_tiny_and_huge_budgets() {
        let g = planted::generate(&PlantedConfig::web(800, 4000), 11);
        let mut flat = Clustering::empty(g.num_vertices());
        run_pass(&mut flat, &g, 2);
        for budget in [0u64, 256, 1 << 30] {
            let mut paged = mem_table(g.num_vertices(), budget, 64);
            run_pass(&mut paged, &g, 2);
            paged.check_io().unwrap();
            assert_eq!(
                paged.num_cluster_ids(),
                flat.num_cluster_ids(),
                "budget {budget}"
            );
            for v in 0..g.num_vertices() as u32 {
                assert_eq!(
                    paged.raw_cluster_of(v),
                    flat.raw_cluster_of(v),
                    "budget {budget}, v {v}"
                );
            }
            for c in 0..flat.num_cluster_ids() {
                assert_eq!(
                    paged.cluster_volume(c),
                    flat.volume(c),
                    "budget {budget}, c {c}"
                );
            }
            let (nonempty, max) = (paged.num_nonempty_clusters(), paged.max_volume());
            assert_eq!(nonempty, flat.num_nonempty_clusters() as u64);
            assert_eq!(max, flat.max_volume());
        }
    }

    /// Randomised version of the same invariant (a lightweight in-repo
    /// proptest: seeds × budgets, no external crate in the offline set).
    #[test]
    fn proptest_bit_identity_across_seeds_and_budgets() {
        for seed in [1u64, 7, 23, 99] {
            let nv = 200 + (seed * 37) % 400;
            let ne = nv * 5;
            let g = planted::generate(&PlantedConfig::web(nv, ne), seed);
            let mut flat = Clustering::empty(g.num_vertices());
            run_pass(&mut flat, &g, 1);
            for budget in [0u64, 128, 4096, 1 << 26] {
                let mut paged = mem_table(g.num_vertices(), budget, 32);
                run_pass(&mut paged, &g, 1);
                paged.check_io().unwrap();
                for v in 0..g.num_vertices() as u32 {
                    assert_eq!(
                        paged.raw_cluster_of(v),
                        flat.raw_cluster_of(v),
                        "seed {seed}, budget {budget}, v {v}"
                    );
                }
            }
        }
    }

    /// A backing that records the exact sequence of reads and writes.
    struct RecordingBacking {
        inner: MemPageBacking,
        log: Arc<Mutex<Vec<String>>>,
    }

    impl PageBacking for RecordingBacking {
        fn read_page(&mut self, key: u64, buf: &mut [u8]) -> io::Result<bool> {
            self.log.lock().unwrap().push(format!("r{key:x}"));
            self.inner.read_page(key, buf)
        }
        fn write_pages(&mut self, pages: &[(u64, Vec<u8>)]) -> io::Result<()> {
            let mut log = self.log.lock().unwrap();
            for (key, _) in pages {
                log.push(format!("w{key:x}"));
            }
            self.inner.write_pages(pages)
        }
    }

    #[test]
    fn lru_eviction_order_is_deterministic() {
        let io_log = |seed: u64| -> Vec<String> {
            let g = planted::generate(&PlantedConfig::web(500, 2500), seed);
            let log = Arc::new(Mutex::new(Vec::new()));
            let backing = RecordingBacking {
                inner: MemPageBacking::new(),
                log: Arc::clone(&log),
            };
            let mut paged =
                PagedClustering::with_page_size(g.num_vertices(), 6 * 32, 32, Box::new(backing));
            run_pass(&mut paged, &g, 2);
            paged.check_io().unwrap();
            let out = log.lock().unwrap().clone();
            out
        };
        let a = io_log(5);
        let b = io_log(5);
        assert!(!a.is_empty(), "tiny budget must hit the backing");
        assert_eq!(a, b, "same input must issue the identical I/O sequence");
    }

    #[test]
    fn writeback_buffer_is_consulted_on_refault() {
        // One frame + batch size 8: a dirty page evicted into the pending
        // buffer must be found there (not re-read stale from the backing)
        // when it faults back in before the batch flushes.
        let mut t = mem_table(1000, 0, 16); // 4 u32 entries per page
        t.create_cluster(0, 7); // writes vol page + v2c page (evicts vol, dirty)
        assert_eq!(t.cluster_volume(0), 7, "volume must survive via pending");
        assert_eq!(t.raw_cluster_of(0), 0);
        t.check_io().unwrap();
    }

    #[test]
    fn c2p_roundtrips_through_paging() {
        let mut t = mem_table(64, 0, 16);
        for c in 0..40u32 {
            t.set_partition_of(c, c % 5);
        }
        for c in 0..40u32 {
            assert_eq!(t.partition_of(c), c % 5, "c={c}");
        }
        t.check_io().unwrap();
    }

    struct FailingBacking;
    impl PageBacking for FailingBacking {
        fn read_page(&mut self, _key: u64, _buf: &mut [u8]) -> io::Result<bool> {
            Err(io::Error::other("read exploded"))
        }
        fn write_pages(&mut self, _pages: &[(u64, Vec<u8>)]) -> io::Result<()> {
            Err(io::Error::other("write exploded"))
        }
    }

    #[test]
    fn io_errors_poison_instead_of_panicking() {
        let mut t = PagedClustering::with_page_size(100, 0, 16, Box::new(FailingBacking));
        // Enough traffic to force eviction of dirty pages → failing writes,
        // and re-faults → failing reads.
        for v in 0..50u32 {
            t.create_cluster(v, 1);
        }
        let err = t.check_io().unwrap_err();
        assert!(err.to_string().contains("exploded"));
        // After taking the error the table is clean again until the next
        // failure.
        assert!(t.check_io().is_ok());
    }
}
