//! Phase 1 of 2PS-L: streaming vertex clustering.
//!
//! The paper (§III-A) extends the streaming clustering algorithm of Hollocou
//! et al. with two changes that make its output usable for balanced edge
//! partitioning:
//!
//! 1. **Exact degrees & bounded volumes** — degrees are computed upfront in a
//!    linear pass, cluster *volume* (sum of member degrees) is capped so that
//!    clusters remain packable into `k` balanced partitions.
//! 2. **Re-streaming** — the same pass can be repeated over the stream,
//!    refining vertex→cluster assignments with accumulated state (Fig. 7/8
//!    evaluate 1–8 passes).
//!
//! Modules:
//!
//! * [`model`] — the [`Clustering`] result type
//!   (vertex→cluster map + cluster volumes) and its invariants.
//! * [`table`] — the [`ClusterTable`] storage abstraction the streaming
//!   pass is generic over.
//! * [`paged`] — the budget-bounded, disk-backed
//!   [`PagedClustering`] (out-of-core mode).
//! * [`streaming`] — the 2PS-L clustering pass (Algorithm 1).
//! * [`hollocou`] — the original unbounded, partial-degree algorithm, kept
//!   as an ablation baseline.
//! * [`stats`] — cluster statistics and intra-cluster edge fraction
//!   measurement.
//!
//! ```
//! use tps_clustering::streaming::{cluster_stream, ClusteringConfig};
//! use tps_graph::degree::DegreeTable;
//! use tps_graph::datasets::Dataset;
//!
//! let graph = Dataset::It.generate_scaled(0.02);
//! let mut stream = graph.stream();
//! let degrees = DegreeTable::compute(&mut stream, graph.num_vertices()).unwrap();
//! let config = ClusteringConfig::for_partitions(32, 1.0, 1);
//! let clustering = cluster_stream(&mut stream, &degrees, &config).unwrap();
//! assert!(clustering.num_nonempty_clusters() > 1);
//! ```

pub mod hollocou;
pub mod merge;
pub mod model;
pub mod paged;
pub mod stats;
pub mod streaming;
pub mod table;

pub use merge::merge_clusterings;
pub use model::{Clustering, NO_CLUSTER};
pub use paged::{
    MemPageBacking, MemPageStoreProvider, PageBacking, PageStoreProvider, PagedClustering,
};
pub use streaming::{cluster_stream, clustering_pass_on, ClusteringConfig, VolumeCap};
pub use table::ClusterTable;
