//! The original streaming clustering algorithm of Hollocou et al. (NIPS 2017
//! workshop), kept as an ablation baseline.
//!
//! Differences from the 2PS-L variant in [`crate::streaming`] (paper §III-A2):
//!
//! * **partial degrees** — degrees are discovered while streaming (each edge
//!   increments both endpoint degrees) instead of an upfront exact pass;
//! * **no effective volume bound** — Hollocou et al. optionally bound
//!   volumes, but with partial degrees the bound cannot be enforced
//!   meaningfully (a vertex's future degree is unknown), which is exactly
//!   the paper's motivation for extension #1.
//!
//! The ablation bench compares partition quality when 2PS-L's phase 2 runs
//! on top of this clustering instead of the bounded exact-degree one.

use std::io;

use tps_graph::stream::{for_each_edge, EdgeStream};

use crate::model::{Clustering, NO_CLUSTER};

/// Run the original Hollocou streaming clustering.
///
/// `volume_bound` is the optional cap from the original paper (`u64::MAX`
/// disables it). Partial degrees are used throughout.
pub fn cluster_stream_partial<S: EdgeStream + ?Sized>(
    stream: &mut S,
    num_vertices: u64,
    volume_bound: u64,
) -> io::Result<Clustering> {
    let mut clustering = Clustering::empty(num_vertices);
    let mut partial_deg = vec![0u64; num_vertices as usize];
    for_each_edge(stream, |e| {
        let (u, v) = (e.src, e.dst);
        // Discover degrees as we stream.
        partial_deg[u as usize] += 1;
        partial_deg[v as usize] += 1;
        // New vertices start as singleton clusters with their partial degree
        // as volume; existing clusters grow by the degree increment.
        let mut cu = clustering.raw_cluster_of(u);
        if cu == NO_CLUSTER {
            cu = clustering.create_cluster(u, partial_deg[u as usize]);
        } else {
            clustering.grow_volume(cu, 1);
        }
        let mut cv = clustering.raw_cluster_of(v);
        if cv == NO_CLUSTER {
            cv = clustering.create_cluster(v, partial_deg[v as usize]);
        } else {
            clustering.grow_volume(cv, 1);
        }
        if cu == cv {
            return;
        }
        let vol_u = clustering.volume(cu);
        let vol_v = clustering.volume(cv);
        // The lighter endpoint joins the heavier cluster.
        let (vs, ds, cl) = if vol_u <= vol_v {
            (u, partial_deg[u as usize], cv)
        } else {
            (v, partial_deg[v as usize], cu)
        };
        if clustering.volume(cl) + ds <= volume_bound {
            clustering.migrate(vs, ds, cl);
        }
    })?;
    Ok(clustering)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_graph::gen::planted::{self, PlantedConfig};
    use tps_graph::stream::InMemoryGraph;
    use tps_graph::types::Edge;

    #[test]
    fn groups_a_triangle() {
        let g = InMemoryGraph::from_edges(vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)]);
        let mut s = g.stream();
        let c = cluster_stream_partial(&mut s, 3, u64::MAX).unwrap();
        assert_eq!(c.cluster_of(0), c.cluster_of(1));
        assert_eq!(c.cluster_of(1), c.cluster_of(2));
    }

    #[test]
    fn finds_planted_structure_roughly() {
        let g = planted::generate(&PlantedConfig::web(1_000, 6_000), 13);
        let mut s = g.stream();
        let c = cluster_stream_partial(&mut s, g.num_vertices(), u64::MAX).unwrap();
        let intra = g
            .edges()
            .iter()
            .filter(|e| c.cluster_of(e.src) == c.cluster_of(e.dst))
            .count();
        let frac = intra as f64 / g.num_edges() as f64;
        assert!(frac > 0.3, "intra fraction {frac}");
    }

    #[test]
    fn unbounded_volumes_can_exceed_any_cap() {
        // The motivating defect: without exact degrees there is no useful
        // volume control — a hub-heavy graph piles into one giant cluster.
        let mut edges = Vec::new();
        for i in 1..200u32 {
            edges.push(Edge::new(0, i));
        }
        let g = InMemoryGraph::from_edges(edges);
        let mut s = g.stream();
        let c = cluster_stream_partial(&mut s, 200, u64::MAX).unwrap();
        assert!(c.max_volume() > 100);
    }

    #[test]
    fn empty_stream() {
        let g = InMemoryGraph::from_edges(vec![]);
        let mut s = g.stream();
        let c = cluster_stream_partial(&mut s, 0, u64::MAX).unwrap();
        assert_eq!(c.num_cluster_ids(), 0);
    }
}
