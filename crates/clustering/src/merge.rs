//! Merging per-thread clusterings — phase 1 of chunk-parallel 2PS-L.
//!
//! Chunk-parallel clustering runs one independent streaming clustering per
//! worker thread over that worker's edge range. A vertex whose edges span
//! two ranges ends up assigned in *both* workers' maps; the merge resolves
//! every such conflict **by volume** (union-by-volume): the vertex keeps the
//! assignment whose cluster currently has the larger volume, and its degree
//! is subtracted from the losing cluster. Larger volume means more of the
//! cluster's edges are still to come in phase 2 — the same signal the 2PS-L
//! scoring function uses — so the winner is the cluster more likely to keep
//! the vertex's edges internal.
//!
//! Properties of the merged result:
//!
//! * **volume invariant** — every cluster's volume equals the sum of its
//!   members' exact degrees (each vertex is counted in exactly one cluster);
//! * **cap invariant** — clusters only *lose* vertices during the merge, so
//!   no multi-member cluster exceeds the per-part volume cap if none did
//!   locally;
//! * **determinism** — parts are merged in index order and ties prefer the
//!   earlier part, so the result depends only on the inputs, not on thread
//!   scheduling;
//! * **identity** — merging a single part returns an equivalent clustering
//!   (same assignments, same volumes), which is what makes one-thread
//!   parallel runs bit-identical to the serial runner.

use tps_graph::degree::DegreeTable;
use tps_graph::types::{ClusterId, VertexId};

use crate::model::{Clustering, NO_CLUSTER};

/// Merge per-thread clusterings into one, resolving conflicting vertex
/// assignments by larger current cluster volume (ties prefer the earlier
/// part). All parts must cover the same vertex-id space.
///
/// Cluster ids of part `t` are first offset by the total id count of parts
/// `0..t` (the merged id space is the concatenation of the parts' id
/// spaces); after the merge the id space is **compacted** to the clusters
/// that survived with volume > 0, renumbered in ascending old-id order.
/// The concatenated space is `T`× the serial one, and its `volumes` array
/// (plus every structure indexed by it: the placement's `c2p`, the
/// distributed `Plan` frame) would otherwise stay `O(T·C)` through all of
/// phase 2. Order-preserving renumbering is decision-invariant: the
/// pre-partition test compares cluster ids for equality only, volumes
/// travel with their cluster, and both mapping strategies break ties on
/// ascending id while zero-volume clusters contribute no load — so the
/// placement of surviving clusters is unchanged. A single part is returned
/// as-is (identity), which is what keeps one-thread parallel runs
/// bit-identical to the serial runner.
///
/// # Panics
/// Panics if the parts disagree on `num_vertices`, or `parts` is empty.
pub fn merge_clusterings(parts: &[Clustering], degrees: &DegreeTable) -> Clustering {
    assert!(!parts.is_empty(), "need at least one clustering to merge");
    let num_vertices = parts[0].num_vertices();
    for p in parts {
        assert_eq!(
            p.num_vertices(),
            num_vertices,
            "all parts must cover the same vertex set"
        );
    }

    // Offsets mapping each part's local cluster ids into the merged space.
    let mut offsets = Vec::with_capacity(parts.len());
    let mut total_ids: u64 = 0;
    for p in parts {
        offsets.push(total_ids as ClusterId);
        total_ids += p.num_cluster_ids() as u64;
    }
    assert!(
        total_ids <= NO_CLUSTER as u64,
        "merged cluster-id space overflows u32"
    );

    // Merged volumes start as the concatenation of the parts' volumes.
    let mut volumes = Vec::with_capacity(total_ids as usize);
    for p in parts {
        volumes.extend_from_slice(p.volumes());
    }

    // Resolve per-vertex assignments part by part.
    let mut v2c = vec![NO_CLUSTER; num_vertices as usize];
    for (t, part) in parts.iter().enumerate() {
        let off = offsets[t];
        for v in 0..num_vertices as VertexId {
            let local = part.raw_cluster_of(v);
            if local == NO_CLUSTER {
                continue;
            }
            let cand = off + local;
            let cur = v2c[v as usize];
            if cur == NO_CLUSTER {
                v2c[v as usize] = cand;
                continue;
            }
            // Conflict: the vertex was clustered by an earlier part too.
            // Union-by-volume on the *current* (partially merged) volumes;
            // ties keep the earlier part's assignment.
            let d = degrees.degree(v) as u64;
            if volumes[cand as usize] > volumes[cur as usize] {
                volumes[cur as usize] -= d;
                v2c[v as usize] = cand;
            } else {
                volumes[cand as usize] -= d;
            }
        }
    }

    let mut merged = Clustering::from_parts(v2c, volumes);
    if parts.len() > 1 {
        // Compact the concatenated id space to the surviving clusters (see
        // the function docs); a single part stays the identity so
        // one-thread runs match serial bit for bit, including cluster ids.
        merged.compact_ids();
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_graph::degree::DegreeTable;
    use tps_graph::ranged::{split_even, RangedEdgeSource};
    use tps_graph::stream::InMemoryGraph;
    use tps_graph::types::Edge;

    use crate::streaming::clustering_pass;

    fn degrees_of(g: &InMemoryGraph) -> DegreeTable {
        DegreeTable::compute(&mut g.stream(), g.num_vertices()).unwrap()
    }

    /// Cluster each of `parts` edge ranges independently, then merge.
    fn cluster_in_parts(g: &InMemoryGraph, parts: usize, cap: u64) -> Clustering {
        let degrees = degrees_of(g);
        let locals: Vec<Clustering> = split_even(g.num_edges(), parts)
            .into_iter()
            .map(|(a, b)| {
                let mut s = g.open_range(a, b).unwrap();
                let mut c = Clustering::empty(g.num_vertices());
                clustering_pass(&mut s, &degrees, cap, &mut c).unwrap();
                c
            })
            .collect();
        merge_clusterings(&locals, &degrees)
    }

    fn test_graph() -> InMemoryGraph {
        // Two dense blobs plus a sprinkling of cross edges, sequenced so a
        // range split lands vertices in several workers.
        let mut edges = Vec::new();
        for i in 0..10u32 {
            for j in (i + 1)..10 {
                edges.push(Edge::new(i, j));
            }
        }
        for i in 10..20u32 {
            for j in (i + 1)..20 {
                edges.push(Edge::new(i, j));
            }
        }
        edges.push(Edge::new(3, 14));
        edges.push(Edge::new(7, 12));
        InMemoryGraph::from_edges(edges)
    }

    #[test]
    fn merged_volume_invariant_holds() {
        let g = test_graph();
        let degrees = degrees_of(&g);
        for parts in [1usize, 2, 3, 4, 8] {
            let merged = cluster_in_parts(&g, parts, 40);
            merged.check_volume_invariant(&degrees).unwrap();
        }
    }

    #[test]
    fn single_part_merge_is_identity() {
        let g = test_graph();
        let degrees = degrees_of(&g);
        let mut serial = Clustering::empty(g.num_vertices());
        clustering_pass(&mut g.stream(), &degrees, 40, &mut serial).unwrap();
        let merged = merge_clusterings(std::slice::from_ref(&serial), &degrees);
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(merged.raw_cluster_of(v), serial.raw_cluster_of(v));
        }
        assert_eq!(merged.volumes(), serial.volumes());
    }

    #[test]
    fn conflicting_vertex_joins_larger_volume_cluster() {
        // Part 0: vertex 0 in a cluster of volume 3; part 1: vertex 0 in a
        // cluster of volume 10. Vertex 0 (degree 2) must follow part 1.
        let degrees = DegreeTable::from_vec(vec![2, 1, 8]);
        let a = Clustering::from_parts(vec![0, 0, NO_CLUSTER], vec![3]);
        let b = Clustering::from_parts(vec![0, NO_CLUSTER, 0], vec![10]);
        let merged = merge_clusterings(&[a, b], &degrees);
        // Cluster ids: part 0's cluster is 0, part 1's is 1.
        assert_eq!(merged.raw_cluster_of(0), 1);
        assert_eq!(merged.raw_cluster_of(1), 0);
        assert_eq!(merged.raw_cluster_of(2), 1);
        assert_eq!(merged.volume(0), 3 - 2);
        assert_eq!(merged.volume(1), 10);
        merged.check_volume_invariant(&degrees).unwrap();
    }

    #[test]
    fn ties_prefer_the_earlier_part() {
        let degrees = DegreeTable::from_vec(vec![1, 1, 1]);
        let a = Clustering::from_parts(vec![0, 0, NO_CLUSTER], vec![2]);
        let b = Clustering::from_parts(vec![0, NO_CLUSTER, 0], vec![2]);
        let merged = merge_clusterings(&[a, b], &degrees);
        assert_eq!(merged.raw_cluster_of(0), 0, "tie must keep part 0");
        assert_eq!(merged.volume(0), 2);
        assert_eq!(merged.volume(1), 1);
    }

    #[test]
    fn merge_is_deterministic() {
        let g = test_graph();
        let a = cluster_in_parts(&g, 4, 40);
        let b = cluster_in_parts(&g, 4, 40);
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(a.raw_cluster_of(v), b.raw_cluster_of(v));
        }
    }

    #[test]
    fn merged_clusters_respect_local_caps() {
        let g = test_graph();
        let cap = 30u64;
        let merged = cluster_in_parts(&g, 3, cap);
        // Multi-member clusters can only have shrunk during the merge.
        let mut members = vec![0u32; merged.num_cluster_ids() as usize];
        for v in 0..g.num_vertices() as u32 {
            if let Some(c) = merged.cluster_of(v) {
                members[c as usize] += 1;
            }
        }
        for (c, &m) in members.iter().enumerate() {
            if m >= 2 {
                assert!(
                    merged.volume(c as u32) <= cap,
                    "cluster {c} volume {} > cap {cap}",
                    merged.volume(c as u32)
                );
            }
        }
    }

    #[test]
    fn merge_compacts_emptied_cluster_ids() {
        // Part 0's cluster empties entirely (its only member defects to
        // part 1's higher-volume cluster): the merged id space must skip
        // it, renumbering survivors in old-id order.
        let degrees = DegreeTable::from_vec(vec![3, 5, 4]);
        let a = Clustering::from_parts(vec![0, NO_CLUSTER, 1], vec![3, 4]);
        let b = Clustering::from_parts(vec![0, 0, NO_CLUSTER], vec![8]);
        let merged = merge_clusterings(&[a, b], &degrees);
        // Concatenated ids: part 0 → {0, 1}, part 1 → {2}. Vertex 0
        // (degree 3) defects from cluster 0 (vol 3) to cluster 2 (vol 8),
        // emptying cluster 0. Survivors {1, 2} renumber to {0, 1}.
        assert_eq!(merged.num_cluster_ids(), 2);
        assert_eq!(merged.raw_cluster_of(0), 1, "defector follows part 1");
        assert_eq!(merged.raw_cluster_of(1), 1);
        assert_eq!(merged.raw_cluster_of(2), 0, "old id 1 renumbers to 0");
        assert_eq!(merged.volumes(), &[4, 8]);
        merged.check_volume_invariant(&degrees).unwrap();
    }

    #[test]
    fn merged_id_space_stays_compact_on_real_splits() {
        let g = test_graph();
        for parts in [2usize, 3, 4, 8] {
            let merged = cluster_in_parts(&g, parts, 40);
            // Every id in the compacted space is live.
            for c in 0..merged.num_cluster_ids() {
                assert!(merged.volume(c) > 0, "{parts} parts: empty id {c} survived");
            }
        }
    }

    #[test]
    #[should_panic(expected = "same vertex set")]
    fn mismatched_vertex_counts_rejected() {
        let degrees = DegreeTable::from_vec(vec![1]);
        let a = Clustering::empty(1);
        let b = Clustering::empty(2);
        merge_clusterings(&[a, b], &degrees);
    }
}
