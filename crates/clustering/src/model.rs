//! The clustering result: vertex→cluster map and cluster volumes.
//!
//! These are the three `O(|V|)` arrays of Algorithm 1 (`d`, `vol`, `v2c`);
//! the degree array stays in [`tps_graph::degree::DegreeTable`] and is shared
//! with the partitioning phase ("the preprocessing phase has no additional
//! memory overhead in excess of the streaming partitioning phase", §IV-B).

use tps_graph::degree::DegreeTable;
use tps_graph::types::{ClusterId, VertexId};

/// Sentinel for "vertex has no cluster yet" (isolated vertices keep it).
pub const NO_CLUSTER: ClusterId = ClusterId::MAX;

/// A vertex clustering with volume bookkeeping.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Vertex → cluster id, `NO_CLUSTER` if unassigned.
    v2c: Vec<ClusterId>,
    /// Cluster id → volume (sum of member degrees). Indexed densely by the
    /// ids handed out during streaming; emptied clusters keep volume 0.
    volumes: Vec<u64>,
}

impl Clustering {
    /// A clustering with no vertices assigned and no clusters allocated.
    pub fn empty(num_vertices: u64) -> Self {
        Clustering {
            v2c: vec![NO_CLUSTER; num_vertices as usize],
            volumes: Vec::new(),
        }
    }

    /// Construct directly from parts (tests and the ablation baselines).
    ///
    /// # Panics
    /// Panics if a vertex references a cluster id outside `volumes`.
    pub fn from_parts(v2c: Vec<ClusterId>, volumes: Vec<u64>) -> Self {
        for &c in &v2c {
            assert!(
                c == NO_CLUSTER || (c as usize) < volumes.len(),
                "cluster id {c} out of range"
            );
        }
        Clustering { v2c, volumes }
    }

    /// Cluster of `v`, if assigned.
    #[inline]
    pub fn cluster_of(&self, v: VertexId) -> Option<ClusterId> {
        match self.v2c[v as usize] {
            NO_CLUSTER => None,
            c => Some(c),
        }
    }

    /// Raw cluster id of `v` (`NO_CLUSTER` when unassigned); the hot-path
    /// accessor used by the partitioning inner loops.
    #[inline]
    pub fn raw_cluster_of(&self, v: VertexId) -> ClusterId {
        self.v2c[v as usize]
    }

    /// Volume of cluster `c`.
    #[inline]
    pub fn volume(&self, c: ClusterId) -> u64 {
        self.volumes[c as usize]
    }

    /// Number of cluster ids ever allocated (including since-emptied ones).
    pub fn num_cluster_ids(&self) -> u32 {
        self.volumes.len() as u32
    }

    /// Number of clusters with non-zero volume.
    pub fn num_nonempty_clusters(&self) -> usize {
        self.volumes.iter().filter(|&&v| v > 0).count()
    }

    /// Number of vertices (assigned or not).
    pub fn num_vertices(&self) -> u64 {
        self.v2c.len() as u64
    }

    /// The volumes array (cluster id → volume).
    pub fn volumes(&self) -> &[u64] {
        &self.volumes
    }

    /// Largest cluster volume (0 if no clusters).
    pub fn max_volume(&self) -> u64 {
        self.volumes.iter().copied().max().unwrap_or(0)
    }

    /// Drop since-emptied cluster ids, renumbering the survivors
    /// (volume > 0) in ascending old-id order. Multi-pass streaming
    /// clustering abandons ids as vertices migrate, so on fragmented
    /// graphs the id space — and everything indexed by it (the merged
    /// volumes, the `c2p` placement, the distributed `Plan` frame) — can
    /// grow far past the live cluster count; compaction restores `O(live)`
    /// at `O(|V| + ids)` cost. The volume invariant guarantees no member
    /// references an emptied id (members have degree ≥ 1).
    pub fn compact_ids(&mut self) {
        let mut remap = vec![NO_CLUSTER; self.volumes.len()];
        let mut next = 0u32;
        for (old, &vol) in self.volumes.iter().enumerate() {
            if vol > 0 {
                remap[old] = next;
                next += 1;
            }
        }
        if next as usize == self.volumes.len() {
            return; // already compact
        }
        self.volumes.retain(|&v| v > 0);
        self.volumes.shrink_to_fit(); // retain keeps capacity; release it
        for c in self.v2c.iter_mut() {
            if *c != NO_CLUSTER {
                debug_assert_ne!(remap[*c as usize], NO_CLUSTER, "member of an empty cluster");
                *c = remap[*c as usize];
            }
        }
    }

    // ----- mutation API used by the streaming algorithms (public so
    // downstream extensions, e.g. the hypergraph generalisation, can drive
    // their own clustering passes over the same state) -----

    /// Assign `v` to a brand-new cluster with initial volume `vol`.
    /// Returns the new cluster's id.
    #[inline]
    pub fn create_cluster(&mut self, v: VertexId, vol: u64) -> ClusterId {
        let id = self.volumes.len() as ClusterId;
        self.volumes.push(vol);
        self.v2c[v as usize] = id;
        id
    }

    /// Move `v` (of degree `d`) from its current cluster to `to`.
    #[inline]
    pub fn migrate(&mut self, v: VertexId, d: u64, to: ClusterId) {
        let from = self.v2c[v as usize];
        debug_assert_ne!(from, NO_CLUSTER);
        debug_assert_ne!(from, to);
        self.volumes[from as usize] -= d;
        self.volumes[to as usize] += d;
        self.v2c[v as usize] = to;
    }

    /// Add `delta` to the volume of `c` (partial-degree mode of the Hollocou
    /// baseline, where volumes grow as degrees are discovered).
    #[inline]
    pub fn grow_volume(&mut self, c: ClusterId, delta: u64) {
        self.volumes[c as usize] += delta;
    }

    // ----- wire format (the distributed runtime ships clusterings between
    // workers and the coordinator; see `tps-dist`) -----

    /// Serialise into `out`: `|V|` (u64), `#cluster ids` (u32), the
    /// vertex→cluster map as little-endian u32s, the volumes as u64s.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(12 + self.v2c.len() * 4 + self.volumes.len() * 8);
        out.extend_from_slice(&(self.v2c.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.volumes.len() as u32).to_le_bytes());
        for &c in &self.v2c {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for &v in &self.volumes {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Inverse of [`Clustering::encode_into`]. Consumes exactly the encoded
    /// bytes from the front of `bytes`, returning the rest; rejects
    /// truncated input and out-of-range cluster ids.
    pub fn decode_from(bytes: &[u8]) -> Result<(Clustering, &[u8]), String> {
        let take = |b: &[u8], n: usize| -> Result<(), String> {
            if b.len() < n {
                Err(format!(
                    "clustering truncated: need {n} bytes, have {}",
                    b.len()
                ))
            } else {
                Ok(())
            }
        };
        take(bytes, 12)?;
        let num_vertices = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let num_ids = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let rest = &bytes[12..];
        let v2c_bytes = (num_vertices as usize)
            .checked_mul(4)
            .ok_or("clustering vertex count overflow")?;
        let vol_bytes = num_ids as usize * 8;
        take(rest, v2c_bytes + vol_bytes)?;
        let mut v2c = Vec::with_capacity(num_vertices as usize);
        for rec in rest[..v2c_bytes].chunks_exact(4) {
            let c = u32::from_le_bytes(rec.try_into().unwrap());
            if c != NO_CLUSTER && c >= num_ids {
                return Err(format!("cluster id {c} out of range ({num_ids} ids)"));
            }
            v2c.push(c);
        }
        let mut volumes = Vec::with_capacity(num_ids as usize);
        for rec in rest[v2c_bytes..v2c_bytes + vol_bytes].chunks_exact(8) {
            volumes.push(u64::from_le_bytes(rec.try_into().unwrap()));
        }
        Ok((Clustering { v2c, volumes }, &rest[v2c_bytes + vol_bytes..]))
    }

    /// Verify that every cluster's volume equals the sum of its members'
    /// degrees. `O(|V| + #clusters)`; test/debug helper.
    pub fn check_volume_invariant(&self, degrees: &DegreeTable) -> Result<(), String> {
        let mut recomputed = vec![0u64; self.volumes.len()];
        for (v, &c) in self.v2c.iter().enumerate() {
            if c != NO_CLUSTER {
                recomputed[c as usize] += degrees.degree(v as VertexId) as u64;
            }
        }
        for (c, (&expected, &actual)) in recomputed.iter().zip(&self.volumes).enumerate() {
            if expected != actual {
                return Err(format!(
                    "cluster {c}: stored volume {actual} != recomputed {expected}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_clustering_has_no_assignments() {
        let c = Clustering::empty(5);
        assert_eq!(c.num_vertices(), 5);
        assert_eq!(c.num_cluster_ids(), 0);
        assert_eq!(c.cluster_of(3), None);
        assert_eq!(c.max_volume(), 0);
    }

    #[test]
    fn create_and_migrate() {
        let mut c = Clustering::empty(3);
        let c0 = c.create_cluster(0, 4);
        let c1 = c.create_cluster(1, 2);
        assert_eq!(c.cluster_of(0), Some(c0));
        assert_eq!(c.volume(c0), 4);
        c.migrate(1, 2, c0);
        assert_eq!(c.cluster_of(1), Some(c0));
        assert_eq!(c.volume(c0), 6);
        assert_eq!(c.volume(c1), 0);
        assert_eq!(c.num_nonempty_clusters(), 1);
    }

    #[test]
    fn volume_invariant_detects_mismatch() {
        let degrees = DegreeTable::from_vec(vec![2, 2]);
        let good = Clustering::from_parts(vec![0, 0], vec![4]);
        assert!(good.check_volume_invariant(&degrees).is_ok());
        let bad = Clustering::from_parts(vec![0, 0], vec![5]);
        assert!(bad.check_volume_invariant(&degrees).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_parts_validates_ids() {
        Clustering::from_parts(vec![3], vec![1]);
    }

    #[test]
    fn wire_roundtrip_preserves_everything() {
        let c = Clustering::from_parts(vec![1, 0, NO_CLUSTER, 1], vec![5, 9]);
        let mut bytes = Vec::new();
        c.encode_into(&mut bytes);
        let (d, rest) = Clustering::decode_from(&bytes).unwrap();
        assert!(rest.is_empty());
        assert_eq!(d.v2c, c.v2c);
        assert_eq!(d.volumes, c.volumes);
        // Trailing bytes are handed back, not consumed.
        bytes.push(0xAB);
        let (_, rest) = Clustering::decode_from(&bytes).unwrap();
        assert_eq!(rest, &[0xAB]);
    }

    #[test]
    fn wire_rejects_truncation_and_bad_ids() {
        let c = Clustering::from_parts(vec![0, 0], vec![4]);
        let mut bytes = Vec::new();
        c.encode_into(&mut bytes);
        for cut in [0, 5, bytes.len() - 1] {
            assert!(Clustering::decode_from(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Corrupt a vertex's cluster id to an out-of-range value.
        bytes[12..16].copy_from_slice(&7u32.to_le_bytes());
        assert!(Clustering::decode_from(&bytes).is_err());
    }

    #[test]
    fn unassigned_vertices_ignored_by_invariant() {
        let degrees = DegreeTable::from_vec(vec![2, 0]);
        let c = Clustering::from_parts(vec![0, NO_CLUSTER], vec![2]);
        assert!(c.check_volume_invariant(&degrees).is_ok());
    }
}
