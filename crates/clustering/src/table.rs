//! The [`ClusterTable`] abstraction: what Algorithm 1 needs from its state.
//!
//! The streaming clustering pass touches its `O(|V|)` state through four
//! operations — look up a vertex's cluster, read a cluster's volume, create
//! a singleton cluster, migrate a vertex between clusters. Everything else
//! about the state (flat arrays vs. disk-backed pages) is a storage policy,
//! so the pass is generic over this trait: [`crate::model::Clustering`] is
//! the in-memory implementation, [`crate::paged::PagedClustering`] the
//! budget-bounded external one. All accessors take `&mut self` because a
//! paged implementation may fault pages (and update its LRU) on reads.

use tps_graph::types::{ClusterId, VertexId};

use crate::model::Clustering;
#[cfg(test)]
use crate::model::NO_CLUSTER;

/// Mutable vertex→cluster + cluster-volume state, as seen by the streaming
/// clustering pass (Algorithm 1).
///
/// Implementations must uphold the volume invariant the pass relies on:
/// after [`create_cluster`](ClusterTable::create_cluster) /
/// [`migrate`](ClusterTable::migrate), a cluster's volume is exactly the sum
/// of its members' degrees (as supplied by the caller).
pub trait ClusterTable {
    /// Raw cluster id of `v`, [`NO_CLUSTER`](crate::NO_CLUSTER) when unassigned.
    fn cluster_of(&mut self, v: VertexId) -> ClusterId;

    /// Volume of cluster `c`.
    fn volume(&mut self, c: ClusterId) -> u64;

    /// Assign `v` to a brand-new cluster with initial volume `vol`;
    /// returns the new cluster's id.
    fn create_cluster(&mut self, v: VertexId, vol: u64) -> ClusterId;

    /// Move `v` (of degree `d`) from its current cluster to `to`.
    fn migrate(&mut self, v: VertexId, d: u64, to: ClusterId);
}

impl ClusterTable for Clustering {
    #[inline]
    fn cluster_of(&mut self, v: VertexId) -> ClusterId {
        self.raw_cluster_of(v)
    }

    #[inline]
    fn volume(&mut self, c: ClusterId) -> u64 {
        Clustering::volume(self, c)
    }

    #[inline]
    fn create_cluster(&mut self, v: VertexId, vol: u64) -> ClusterId {
        Clustering::create_cluster(self, v, vol)
    }

    #[inline]
    fn migrate(&mut self, v: VertexId, d: u64, to: ClusterId) {
        Clustering::migrate(self, v, d, to)
    }
}

impl<T: ClusterTable + ?Sized> ClusterTable for &mut T {
    #[inline]
    fn cluster_of(&mut self, v: VertexId) -> ClusterId {
        (**self).cluster_of(v)
    }

    #[inline]
    fn volume(&mut self, c: ClusterId) -> u64 {
        (**self).volume(c)
    }

    #[inline]
    fn create_cluster(&mut self, v: VertexId, vol: u64) -> ClusterId {
        (**self).create_cluster(v, vol)
    }

    #[inline]
    fn migrate(&mut self, v: VertexId, d: u64, to: ClusterId) {
        (**self).migrate(v, d, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_implements_table() {
        let mut c = Clustering::empty(3);
        let table: &mut dyn ClusterTable = &mut c;
        assert_eq!(table.cluster_of(0), NO_CLUSTER);
        let id = table.create_cluster(0, 2);
        assert_eq!(table.cluster_of(0), id);
        assert_eq!(table.volume(id), 2);
        let other = table.create_cluster(1, 3);
        table.migrate(0, 2, other);
        assert_eq!(table.volume(other), 5);
        assert_eq!(table.volume(id), 0);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut c = Clustering::empty(2);
        let mut r = &mut c;
        let id = ClusterTable::create_cluster(&mut r, 1, 4);
        assert_eq!(ClusterTable::cluster_of(&mut r, 1), id);
        assert_eq!(ClusterTable::volume(&mut r, id), 4);
    }
}
