//! The worker: one shard of every phase, driven by coordinator messages.
//!
//! A worker is a thin state machine around `tps-core`'s per-shard kernels
//! ([`shard_degrees`], [`shard_clustering`], [`ShardAssigner`]) — the same
//! code the in-process `ParallelRunner` schedules onto threads, which is
//! why a distributed run is bit-identical to `--threads N`. The worker
//! never sees the whole graph's assignments: its decisions accumulate in an
//! [`AssignmentSpool`](tps_core::sink::AssignmentSpool) (in-memory or
//! spill-backed) and stream back as bounded `Run` batches when the
//! coordinator pulls them.
//!
//! Workers serve **jobs in a loop**: after a shard's runs are pulled the
//! worker waits for either a [`Reissue`](Message::Reissue) — another
//! shard whose previous worker failed — or a `Shutdown`. Each job is
//! self-contained (the kernels keep no cross-job state), and every frame a
//! worker sends for a job echoes the job's `(shard, epoch)` so the
//! coordinator can discard stale frames from an issuance it has abandoned.
//! A worker that reconnects after losing its coordinator handshakes with
//! [`Rejoin`](Message::Rejoin) instead of `Hello`.

use std::io;

use tps_core::balance::PartitionLoads;
use tps_core::parallel::{shard_clustering, shard_degrees, ShardAssigner, ShardLoads};
use tps_core::sink::{AssignmentSink, SpoolFactory};
use tps_core::two_phase::mapping::ClusterPlacement;
use tps_graph::degree::DegreeTable;
use tps_graph::ranged::RangedEdgeSource;
use tps_graph::stream::EdgeStream;
use tps_graph::types::{Edge, GraphInfo, PartitionId};

use crate::protocol::{
    InputDescriptor, Job, Message, ReplChunks, PROTOCOL_VERSION, RUN_BATCH_EDGES,
};
use crate::transport::{recv_msg, send_msg, Transport};
use crate::wire::corrupt;

/// Resolves a [`Job`]'s input descriptor to an edge source.
pub trait SourceResolver {
    /// Open the source named by `input`.
    fn open<'s>(&'s self, input: &InputDescriptor) -> io::Result<Box<dyn RangedEdgeSource + 's>>;
}

/// Resolver for out-of-process workers: opens `Path` descriptors through
/// `tps-io` (shared-filesystem deployment); rejects `Attached`.
#[derive(Clone, Copy, Debug, Default)]
pub struct PathResolver;

impl SourceResolver for PathResolver {
    fn open<'s>(&'s self, input: &InputDescriptor) -> io::Result<Box<dyn RangedEdgeSource + 's>> {
        match input {
            InputDescriptor::Path { path, reader } => tps_io::open_ranged_backend(path, *reader),
            InputDescriptor::Attached => Err(corrupt(
                "job says the input is attached, but this worker is out-of-process",
            )),
        }
    }
}

/// Resolver for in-process loopback workers: every job reads the one
/// attached source (and `Path` descriptors are honoured too, so mixed tests
/// can reuse it).
pub struct AttachedResolver<'g>(pub &'g dyn RangedEdgeSource);

impl SourceResolver for AttachedResolver<'_> {
    fn open<'s>(&'s self, input: &InputDescriptor) -> io::Result<Box<dyn RangedEdgeSource + 's>> {
        match input {
            InputDescriptor::Attached => Ok(Box::new(BorrowedSource(self.0))),
            InputDescriptor::Path { path, reader } => tps_io::open_ranged_backend(path, *reader),
        }
    }
}

/// Forwarding wrapper so a borrowed source can be boxed as a trait object.
struct BorrowedSource<'a>(&'a dyn RangedEdgeSource);

impl RangedEdgeSource for BorrowedSource<'_> {
    fn info(&self) -> GraphInfo {
        self.0.info()
    }

    fn open_range(&self, start: u64, end: u64) -> io::Result<Box<dyn EdgeStream + '_>> {
        self.0.open_range(start, end)
    }
}

/// Which handshake a worker opens with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Handshake {
    /// A fresh worker's first connection.
    Hello,
    /// A worker that was previously connected (its connection broke or its
    /// job aborted) offering itself for re-assignment.
    Rejoin,
}

/// Serve jobs over `transport` until the coordinator sends `Shutdown`.
///
/// On internal failure the worker sends an `Abort` with the cause (so the
/// coordinator fails the shard's current barrier instead of hanging) and
/// returns the error — the process-level worker can then reconnect with
/// [`Handshake::Rejoin`].
pub fn run_worker(
    transport: &mut dyn Transport,
    resolver: &dyn SourceResolver,
    spools: &dyn SpoolFactory,
) -> io::Result<()> {
    run_worker_handshake(transport, resolver, spools, Handshake::Hello)
}

/// [`run_worker`] with an explicit handshake kind (reconnections `Rejoin`).
pub fn run_worker_handshake(
    transport: &mut dyn Transport,
    resolver: &dyn SourceResolver,
    spools: &dyn SpoolFactory,
    handshake: Handshake,
) -> io::Result<()> {
    let result = serve(transport, resolver, spools, handshake);
    if let Err(e) = &result {
        let _ = send_msg(
            transport,
            &Message::Abort {
                reason: e.to_string(),
            },
        );
    }
    result
}

/// Receive, mapping `Abort` appropriately for mid-job steps.
fn expect(transport: &mut dyn Transport, phase: &str) -> io::Result<Message> {
    match recv_msg(transport)? {
        Message::Abort { reason } => Err(io::Error::other(format!(
            "coordinator aborted during {phase}: {reason}"
        ))),
        m => Ok(m),
    }
}

fn protocol_err(phase: &str, got: &Message) -> io::Error {
    corrupt(format!(
        "{phase}: unexpected {} message from coordinator",
        Message::tag_name(got.tag())
    ))
}

fn serve(
    transport: &mut dyn Transport,
    resolver: &dyn SourceResolver,
    spools: &dyn SpoolFactory,
    handshake: Handshake,
) -> io::Result<()> {
    send_msg(
        transport,
        &match handshake {
            Handshake::Hello => Message::Hello {
                version: PROTOCOL_VERSION,
            },
            Handshake::Rejoin => Message::Rejoin {
                version: PROTOCOL_VERSION,
            },
        },
    )?;
    loop {
        match expect(transport, "assignment")? {
            // First issuance and re-issue run the identical job body.
            Message::Job(job) | Message::Reissue(job) => {
                serve_job(transport, resolver, spools, job)?
            }
            // The job is complete (or the graph was empty).
            Message::Shutdown => return Ok(()),
            other => return Err(protocol_err("assignment", &other)),
        }
    }
}

fn serve_job(
    transport: &mut dyn Transport,
    resolver: &dyn SourceResolver,
    spools: &dyn SpoolFactory,
    job: Job,
) -> io::Result<()> {
    let shard = job.worker_index;
    let epoch = job.epoch;
    if job.trace {
        // Enable recording and discard anything a previous (failed) job
        // left on this serving thread, so the shipped events describe
        // exactly this issuance.
        tps_obs::set_enabled(true);
        let _ = tps_obs::take_thread_events();
    }
    if job.mem_budget_mb > 0 {
        // Honour the coordinator's budget before the source opens: the v2
        // decode cache is all-or-nothing per open. Workers take the same
        // decode-cache share of the deterministic split as a serial run;
        // cluster-state paging does not apply to shard workers (phase 1
        // state is merged at a barrier, not streamed through pages).
        let split = tps_core::job::MemBudgetSplit::of(job.mem_budget_mb << 20);
        tps_io::v2::set_decode_cache_budget(split.decode_cache);
    }
    let source = resolver.open(&job.input)?;
    let info = source.info();
    if info.num_vertices != job.num_vertices || info.num_edges != job.num_edges {
        return Err(corrupt(format!(
            "input mismatch: job says {}V/{}E, opened source has {}V/{}E",
            job.num_vertices, job.num_edges, info.num_vertices, info.num_edges
        )));
    }

    // Phase 0: shard degrees up, merged degrees + volume cap down.
    let sp = tps_obs::span("degree");
    let local_degrees = shard_degrees(&*source, job.shard, job.num_vertices)?;
    sp.end();
    send_msg(
        transport,
        &Message::Degrees {
            shard,
            epoch,
            degrees: local_degrees.as_slice().to_vec(),
        },
    )?;
    drop(local_degrees);
    let (degrees, volume_cap) = match expect(transport, "degree barrier")? {
        Message::Globals {
            degrees,
            volume_cap,
        } => {
            if degrees.len() as u64 != job.num_vertices {
                return Err(corrupt("merged degree table has the wrong vertex count"));
            }
            (DegreeTable::from_vec(degrees), volume_cap)
        }
        other => return Err(protocol_err("degree barrier", &other)),
    };

    // Phase 1: shard clustering up, merged clustering + placement down.
    let sp = tps_obs::span("clustering");
    let local_clustering = shard_clustering(
        &*source,
        job.shard,
        &job.config,
        &degrees,
        volume_cap,
        job.num_vertices,
        job.num_workers > 1,
    )?;
    sp.end();
    send_msg(
        transport,
        &Message::LocalClustering {
            shard,
            epoch,
            clustering: local_clustering,
        },
    )?;
    let (clustering, c2p) = match expect(transport, "clustering barrier")? {
        Message::Plan { clustering, c2p } => (clustering, c2p),
        other => return Err(protocol_err("clustering barrier", &other)),
    };
    if clustering.num_vertices() != job.num_vertices {
        return Err(corrupt("merged clustering has the wrong vertex count"));
    }
    if c2p.len() < clustering.num_cluster_ids() as usize || c2p.iter().any(|&p| p >= job.k) {
        return Err(corrupt("cluster placement is inconsistent with the plan"));
    }
    let placement = ClusterPlacement::from_c2p(c2p, &clustering, job.k);

    // Phase 2: prepartition + score with the quota-sliced standalone loads
    // (identical decisions to the in-process ledger tracker).
    let cap = PartitionLoads::new(job.k, job.num_edges, job.alpha).cap();
    let loads = ShardLoads::standalone(
        job.k,
        cap,
        job.worker_index as usize,
        job.num_workers as usize,
    );
    let mut assigner = ShardAssigner::new(
        job.config,
        &degrees,
        &clustering,
        &placement,
        tps_metrics::bitmatrix::ReplicationMatrix::new(job.num_vertices, job.k),
        loads,
    );
    let mut spool = spools.create_spool(job.worker_index as usize)?;
    if job.config.prepartitioning {
        let sp = tps_obs::span("prepartition");
        let mut s = source.open_range(job.shard.0, job.shard.1)?;
        assigner.prepartition_pass(&mut s, &mut *spool)?;
        if job.num_workers > 1 {
            // The replication barrier, in bounded vertex-range chunks
            // (protocol v3), strictly **interleaved**: send chunk `c`,
            // then block for merged chunk `c`. The coordinator's rounds
            // run in lockstep (collect chunk `c` from every shard, then
            // broadcast merged `c`), so interleaving keeps at most one
            // frame in flight per direction — sending every chunk up
            // front could deadlock a TCP transport once the unread merged
            // frames overflow the socket buffers, with both sides stuck
            // in blocking sends.
            let chunks = ReplChunks::new(job.num_vertices, job.k);
            for c in 0..chunks.count() {
                let (v0, v1) = chunks.vertex_range(c);
                send_msg(
                    transport,
                    &Message::ReplicationChunk {
                        shard,
                        epoch,
                        chunk: c,
                        words: assigner.replication_shard().range_words(v0, v1).to_vec(),
                    },
                )?;
                match expect(transport, "prepartition barrier")? {
                    Message::MergedReplicationChunk { chunk, words } => {
                        if chunk != c {
                            return Err(corrupt(format!(
                                "merged replication chunk {chunk} arrived out of order \
                                 (expected {c})"
                            )));
                        }
                        if words.len() != chunks.words_in_chunk(c) {
                            return Err(corrupt(format!(
                                "merged replication chunk {c} has {} words, expected {}",
                                words.len(),
                                chunks.words_in_chunk(c)
                            )));
                        }
                        let (v0, _) = chunks.vertex_range(c);
                        assigner
                            .install_replication_range(v0, &words)
                            .map_err(corrupt)?;
                    }
                    other => return Err(protocol_err("prepartition barrier", &other)),
                }
            }
        }
        sp.end();
    }
    {
        let sp = tps_obs::span("partition");
        let mut s = source.open_range(job.shard.0, job.shard.1)?;
        assigner.remaining_pass(&mut s, &mut *spool)?;
        sp.end();
    }
    let assigned: u64 = assigner.local_loads().iter().sum();
    // Ship this thread's drained events and a counter snapshot with the
    // barrier frame (v4) — the coordinator folds them into one trace. With
    // in-process (loopback) workers the counter snapshot is process-wide;
    // the coordinator keeps only per-worker *events* in that case.
    let (trace, counter_snap) = if job.trace {
        (tps_obs::take_thread_events(), tps_obs::counters_snapshot())
    } else {
        (Vec::new(), Vec::new())
    };
    send_msg(
        transport,
        &Message::ShardDone {
            shard,
            epoch,
            counters: assigner.counters(),
            loads: assigner.local_loads().to_vec(),
            assigned,
            trace,
            counter_snap,
        },
    )?;

    // Emit: stream the spool back as bounded Run batches when pulled.
    match expect(transport, "emit")? {
        Message::Pull => {}
        other => return Err(protocol_err("emit", &other)),
    }
    {
        let mut sender = RunSender {
            transport,
            shard,
            epoch,
            batch: Vec::with_capacity(RUN_BATCH_EDGES),
        };
        spool.replay(&mut sender)?;
        sender.flush()?;
    }
    send_msg(transport, &Message::RunsDone { shard, epoch })?;
    Ok(())
}

/// An [`AssignmentSink`] that ships batches of [`RUN_BATCH_EDGES`] records
/// as `Run` frames.
struct RunSender<'a> {
    transport: &'a mut dyn Transport,
    shard: u32,
    epoch: u32,
    batch: Vec<(Edge, PartitionId)>,
}

impl RunSender<'_> {
    fn flush(&mut self) -> io::Result<()> {
        if self.batch.is_empty() {
            return Ok(());
        }
        let batch = std::mem::replace(&mut self.batch, Vec::with_capacity(RUN_BATCH_EDGES));
        send_msg(
            self.transport,
            &Message::Run {
                shard: self.shard,
                epoch: self.epoch,
                batch,
            },
        )
    }
}

impl AssignmentSink for RunSender<'_> {
    #[inline]
    fn assign(&mut self, edge: Edge, p: PartitionId) -> io::Result<()> {
        self.batch.push((edge, p));
        if self.batch.len() >= RUN_BATCH_EDGES {
            self.flush()?;
        }
        Ok(())
    }
}
