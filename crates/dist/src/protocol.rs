//! The coordinator/worker message schema.
//!
//! One partitioning job exchanges the following messages per shard, in
//! lockstep with the two-phase algorithm's barriers (tags in parentheses):
//!
//! | # | direction | message (tag) | carries |
//! |---|-----------|---------------|---------|
//! | 1 | W → C | `Hello` (1) / `Rejoin` (15) | protocol version |
//! | 2 | C → W | `Job` (2) / `Reissue` (16) | shard descriptor: config, k/α, graph info, edge range, epoch, input |
//! | 3 | W → C | `Degrees` (3) | shard/epoch + the shard's exact degree counts |
//! | 4 | C → W | `Globals` (4) | merged degrees + resolved cluster volume cap |
//! | 5 | W → C | `LocalClustering` (5) | shard/epoch + the shard's phase-1 clustering |
//! | 6 | C → W | `Plan` (6) | merged clustering + cluster→partition map |
//! | 7 | W → C | `ReplicationChunk` (7) × c | shard/epoch + one vertex-range of pre-partitioning replica bits (N > 1 only) |
//! | 8 | C → W | `MergedReplicationChunk` (8) × c | OR of all shards over that vertex range (N > 1 only) |
//! | 9 | W → C | `ShardDone` (9) | shard/epoch + phase-2 counters + per-partition loads + drained trace events + counter snapshot (v4) |
//! | 10 | C → W | `Pull` (10) | request this shard's assignment runs |
//! | 11 | W → C | `Run` (11) | shard/epoch + one bounded batch of `(edge, partition)` records |
//! | 12 | W → C | `RunsDone` (12) | shard/epoch: end of this shard's runs |
//! | 13 | C → W | `Shutdown` (13) | job complete |
//! | 14 | either | `Abort` (14) | fatal error with reason |
//!
//! Steps 7/8 are skipped when pre-partitioning is disabled or there is only
//! one shard — both sides derive that from the `Job`, so the trace stays
//! deterministic. The coordinator pulls runs shard-by-shard in shard order
//! (step 10), which is what makes the emitted stream bit-identical to the
//! in-process runner's worker-order replay without the coordinator ever
//! holding more than one `Run` batch in memory.
//!
//! # Vertex-range-chunked replication barrier (protocol v3)
//!
//! The replication barrier used to ship the whole `O(|V|·k)`-bit matrix as
//! one frame each way, which overflows the 1 GiB `MAX_FRAME_LEN` sanity
//! cap around `|V|·⌈k/64⌉ ≈ 134M` words. v3 splits the barrier into
//! deterministic **vertex-range chunks** ([`ReplChunks`], derived
//! identically on both sides from `(|V|, k)`): a worker sends one
//! [`ReplicationChunk`](Message::ReplicationChunk) per range, the
//! coordinator ORs each range across shards and broadcasts one
//! [`MergedReplicationChunk`](Message::MergedReplicationChunk) back per
//! range — merging and re-broadcasting *ranges* instead of whole matrices,
//! so every barrier frame is bounded (~[`REPL_CHUNK_WORDS`] words) and the
//! coordinator's live merge state is one range, not one matrix. Chunk
//! payloads use zero-word-run encoding ([`crate::wire::put_word_runs`]):
//! replication rows are mostly zero on sparse graphs, so the frames are
//! usually far below the bound too.
//!
//! # Fault tolerance (protocol v2)
//!
//! Worker loss is routine, not fatal. Three additions make recovery safe:
//!
//! * **Per-shard epochs** — every issuance of a shard carries an epoch
//!   number (0 on first issue), and every worker→coordinator frame echoes
//!   `(shard, epoch)`. The coordinator discards frames tagged with an older
//!   epoch of the shard it is collecting — a presumed-dead worker's late
//!   frames are dropped, never merged twice.
//! * **`Reissue` (16)** — re-assignment of a shard whose previous worker
//!   failed, sent to a standby, an idle worker that already completed its
//!   own shard, or a reconnecting worker. Body is identical to `Job`; the
//!   distinct tag keeps traces self-describing.
//! * **`Rejoin` (15)** — the handshake of a worker that was previously
//!   connected (its connection broke, or its job aborted) and is offering
//!   itself for re-assignment. Body is identical to `Hello`.
//!
//! A worker serves jobs in a loop: after `RunsDone` it waits for another
//! `Reissue` or a `Shutdown`, so completed workers double as standbys.

use std::io;

use tps_clustering::model::Clustering;
use tps_core::two_phase::scoring::HdrfParams;
use tps_core::two_phase::{AssignCounters, MappingStrategy, RemainingStrategy, TwoPhaseConfig};
use tps_graph::types::{Edge, PartitionId};
use tps_io::ReaderBackend;

use crate::wire::{
    corrupt, put_f64, put_string, put_u32, put_u64, put_vec_u32, put_vec_u64, put_word_runs, Reader,
};

/// Protocol version pinned by the `Hello`/`Rejoin` handshake. Bump on any
/// schema change — there is no in-band negotiation. v2 added per-shard
/// epochs and the `Rejoin`/`Reissue` recovery frames; v3 replaced the
/// whole-matrix `ReplicationShard`/`MergedReplication` barrier with
/// vertex-range `ReplicationChunk`/`MergedReplicationChunk` frames
/// (zero-word-run encoded, bounded size); v4 appended the `trace` flag to
/// `Job` and the drained trace events + counter snapshot to `ShardDone`
/// (additive fields, but the frames are not v3-compatible, hence the bump).
/// v5 partitioned the tag space: tags 1–31 stay with this partitioning
/// protocol, tags 32+ are reserved for the `tps-serve` request frames
/// (`tps_serve::proto`), which ride the same length-prefixed transport —
/// a v5 endpoint can therefore tell a misdirected serve frame from a
/// corrupt one. v6 appended `mem_budget_mb` to `Job` (same appended-last
/// discipline as the v4 `trace` flag) so workers honour the coordinator's
/// `--mem-budget-mb` decode-cache share.
pub const PROTOCOL_VERSION: u32 = 6;

/// First message tag reserved for the `tps-serve` frame family (see the
/// v5 note on [`PROTOCOL_VERSION`]).
pub const SERVE_TAG_BASE: u8 = 32;

/// Edges per `Run` frame (bounded so neither side buffers a full shard:
/// 8192 records ≈ 96 KiB on the wire).
pub const RUN_BATCH_EDGES: usize = 8192;

/// Target packed words per replication chunk (1 MiB of bits). The actual
/// per-frame word count is `chunk_vertices × ⌈k/64⌉ ≤ max(this, ⌈k/64⌉)`
/// — a chunk never splits a vertex row, so a single row larger than the
/// target (k beyond 8M partitions) becomes one chunk by itself.
pub const REPL_CHUNK_WORDS: usize = 1 << 17;

/// The deterministic vertex-range chunking of the replication barrier,
/// derived identically by the coordinator and every worker from the job's
/// `(num_vertices, k)` — chunk geometry never crosses the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplChunks {
    num_vertices: u64,
    words_per_vertex: usize,
    chunk_vertices: u64,
}

impl ReplChunks {
    /// The chunking for a `num_vertices × k` replication matrix.
    pub fn new(num_vertices: u64, k: u32) -> ReplChunks {
        assert!(k > 0, "k must be positive");
        let words_per_vertex = (k as usize).div_ceil(64);
        let chunk_vertices = (REPL_CHUNK_WORDS / words_per_vertex).max(1) as u64;
        ReplChunks {
            num_vertices,
            words_per_vertex,
            chunk_vertices,
        }
    }

    /// Number of chunks (0 for an empty vertex set).
    pub fn count(&self) -> u32 {
        let n = self.num_vertices.div_ceil(self.chunk_vertices);
        debug_assert!(n <= u32::MAX as u64, "chunk count overflows u32");
        n as u32
    }

    /// The vertex range `[v0, v1)` of `chunk`.
    pub fn vertex_range(&self, chunk: u32) -> (u64, u64) {
        let v0 = chunk as u64 * self.chunk_vertices;
        debug_assert!(v0 < self.num_vertices, "chunk {chunk} out of range");
        (v0, (v0 + self.chunk_vertices).min(self.num_vertices))
    }

    /// Packed words carried by `chunk`.
    pub fn words_in_chunk(&self, chunk: u32) -> usize {
        let (v0, v1) = self.vertex_range(chunk);
        (v1 - v0) as usize * self.words_per_vertex
    }

    /// Packed words per vertex row (`⌈k/64⌉`).
    pub fn words_per_vertex(&self) -> usize {
        self.words_per_vertex
    }
}

/// How a worker obtains its edge source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InputDescriptor {
    /// The worker already holds the source (in-process loopback workers).
    Attached,
    /// Open `path` — a v1/v2 edge file on a filesystem shared with the
    /// coordinator — with the given reader backend.
    Path {
        /// Absolute path of the input file.
        path: String,
        /// Reader backend for the worker's range cursors.
        reader: ReaderBackend,
    },
}

/// Everything a worker needs to run its shard.
#[derive(Clone, Debug)]
pub struct Job {
    /// This shard's index in shard order.
    pub worker_index: u32,
    /// Total shards in the job.
    pub num_workers: u32,
    /// Issuance epoch of this shard: 0 on first issue, incremented on every
    /// re-issue after a worker failure. Echoed in every frame the worker
    /// sends for this job, so stale frames are identifiable.
    pub epoch: u32,
    /// Number of partitions.
    pub k: u32,
    /// Balance factor α.
    pub alpha: f64,
    /// The two-phase configuration (identical on every worker).
    pub config: TwoPhaseConfig,
    /// Vertices in the full graph.
    pub num_vertices: u64,
    /// Edges in the full graph.
    pub num_edges: u64,
    /// This worker's edge-index range `[start, end)`.
    pub shard: (u64, u64),
    /// Where the edges come from.
    pub input: InputDescriptor,
    /// Whether the worker should record span events and ship them (with a
    /// counter snapshot) in its `ShardDone` frame. Mirrors the
    /// coordinator's `--trace` state; does not change assignment output.
    pub trace: bool,
    /// The job's `--mem-budget-mb` (0 = unbudgeted). Workers apply their
    /// decode-cache share of the deterministic split (`MemBudgetSplit`);
    /// cluster-state paging is a serial-mode concern and does not apply to
    /// shard workers. Does not change assignment output.
    pub mem_budget_mb: u64,
}

/// A protocol message. See the module docs for the exchange order.
#[derive(Clone, Debug)]
pub enum Message {
    /// Worker handshake.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Handshake of a worker that was previously connected and is offering
    /// itself for re-assignment (reconnection or post-abort).
    Rejoin {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// First shard assignment (epoch 0).
    Job(Job),
    /// Re-assignment of a shard after a worker failure (epoch > 0).
    Reissue(Job),
    /// A shard's exact degree counts.
    Degrees {
        /// Shard index this contribution is for.
        shard: u32,
        /// Issuance epoch the sender is serving.
        epoch: u32,
        /// Exact degrees over the shard's edge range.
        degrees: Vec<u32>,
    },
    /// Merged degrees and the resolved cluster volume cap.
    Globals {
        /// Exact degrees over the full graph.
        degrees: Vec<u32>,
        /// The resolved per-cluster volume cap.
        volume_cap: u64,
    },
    /// A shard's local phase-1 clustering.
    LocalClustering {
        /// Shard index this contribution is for.
        shard: u32,
        /// Issuance epoch the sender is serving.
        epoch: u32,
        /// The shard's streaming clustering.
        clustering: Clustering,
    },
    /// The merged clustering and its cluster→partition placement.
    Plan {
        /// Union-by-volume merged clustering.
        clustering: Clustering,
        /// Cluster id → partition id.
        c2p: Vec<PartitionId>,
    },
    /// One vertex-range chunk of a shard's pre-partitioning replication
    /// bits (chunk geometry: [`ReplChunks`]; sent in chunk order).
    ReplicationChunk {
        /// Shard index this contribution is for.
        shard: u32,
        /// Issuance epoch the sender is serving.
        epoch: u32,
        /// Chunk index in `0..ReplChunks::count()`.
        chunk: u32,
        /// The chunk's packed words (zero-word-run encoded on the wire).
        words: Vec<u64>,
    },
    /// One merged vertex-range chunk: the OR of every shard's
    /// [`ReplicationChunk`](Message::ReplicationChunk) for that range.
    MergedReplicationChunk {
        /// Chunk index in `0..ReplChunks::count()`.
        chunk: u32,
        /// The merged packed words (zero-word-run encoded on the wire).
        words: Vec<u64>,
    },
    /// A shard's phase-2 summary.
    ShardDone {
        /// Shard index this summary is for.
        shard: u32,
        /// Issuance epoch the sender is serving.
        epoch: u32,
        /// The shard's assignment counters.
        counters: AssignCounters,
        /// Edges the shard committed per partition.
        loads: Vec<u64>,
        /// Total edges the shard assigned.
        assigned: u64,
        /// The worker's drained span/mark events (empty unless the job was
        /// traced). The `worker` field is assigned coordinator-side.
        trace: Vec<tps_obs::TraceEvent>,
        /// The worker's counter values at the barrier (empty unless
        /// traced).
        counter_snap: Vec<(String, u64)>,
    },
    /// Request the worker's assignment runs.
    Pull,
    /// One bounded batch of assignments, in decision order.
    Run {
        /// Shard index these assignments belong to.
        shard: u32,
        /// Issuance epoch the sender is serving.
        epoch: u32,
        /// The assignment records, in decision order.
        batch: Vec<(Edge, PartitionId)>,
    },
    /// End of this shard's runs.
    RunsDone {
        /// Shard index whose runs are complete.
        shard: u32,
        /// Issuance epoch the sender is serving.
        epoch: u32,
    },
    /// Job complete; the worker may exit.
    Shutdown,
    /// Fatal error.
    Abort {
        /// Human-readable cause.
        reason: String,
    },
}

impl Message {
    /// The message's wire tag.
    pub fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 1,
            Message::Job(_) => 2,
            Message::Degrees { .. } => 3,
            Message::Globals { .. } => 4,
            Message::LocalClustering { .. } => 5,
            Message::Plan { .. } => 6,
            Message::ReplicationChunk { .. } => 7,
            Message::MergedReplicationChunk { .. } => 8,
            Message::ShardDone { .. } => 9,
            Message::Pull => 10,
            Message::Run { .. } => 11,
            Message::RunsDone { .. } => 12,
            Message::Shutdown => 13,
            Message::Abort { .. } => 14,
            Message::Rejoin { .. } => 15,
            Message::Reissue(_) => 16,
        }
    }

    /// Human-readable name of a wire tag (diagnostics and traces).
    pub fn tag_name(tag: u8) -> &'static str {
        match tag {
            1 => "Hello",
            2 => "Job",
            3 => "Degrees",
            4 => "Globals",
            5 => "LocalClustering",
            6 => "Plan",
            7 => "ReplicationChunk",
            8 => "MergedReplicationChunk",
            9 => "ShardDone",
            10 => "Pull",
            11 => "Run",
            12 => "RunsDone",
            13 => "Shutdown",
            14 => "Abort",
            15 => "Rejoin",
            16 => "Reissue",
            _ => "unknown",
        }
    }

    /// The `(shard, epoch)` envelope of worker→coordinator data frames, if
    /// this message carries one — the coordinator's staleness check.
    pub fn shard_epoch(&self) -> Option<(u32, u32)> {
        match self {
            Message::Degrees { shard, epoch, .. }
            | Message::LocalClustering { shard, epoch, .. }
            | Message::ReplicationChunk { shard, epoch, .. }
            | Message::ShardDone { shard, epoch, .. }
            | Message::Run { shard, epoch, .. }
            | Message::RunsDone { shard, epoch } => Some((*shard, *epoch)),
            _ => None,
        }
    }

    /// Serialise into a frame body (tag byte + message body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![self.tag()];
        match self {
            Message::Hello { version } | Message::Rejoin { version } => put_u32(&mut out, *version),
            Message::Job(job) | Message::Reissue(job) => encode_job(&mut out, job),
            Message::Degrees {
                shard,
                epoch,
                degrees,
            } => {
                put_u32(&mut out, *shard);
                put_u32(&mut out, *epoch);
                put_vec_u32(&mut out, degrees);
            }
            Message::Globals {
                degrees,
                volume_cap,
            } => {
                put_u64(&mut out, *volume_cap);
                put_vec_u32(&mut out, degrees);
            }
            Message::LocalClustering {
                shard,
                epoch,
                clustering,
            } => {
                put_u32(&mut out, *shard);
                put_u32(&mut out, *epoch);
                clustering.encode_into(&mut out);
            }
            Message::Plan { clustering, c2p } => {
                clustering.encode_into(&mut out);
                put_vec_u32(&mut out, c2p);
            }
            Message::ReplicationChunk {
                shard,
                epoch,
                chunk,
                words,
            } => {
                put_u32(&mut out, *shard);
                put_u32(&mut out, *epoch);
                put_u32(&mut out, *chunk);
                put_word_runs(&mut out, words);
            }
            Message::MergedReplicationChunk { chunk, words } => {
                put_u32(&mut out, *chunk);
                put_word_runs(&mut out, words);
            }
            Message::ShardDone {
                shard,
                epoch,
                counters,
                loads,
                assigned,
                trace,
                counter_snap,
            } => {
                put_u32(&mut out, *shard);
                put_u32(&mut out, *epoch);
                put_u64(&mut out, counters.prepartitioned);
                put_u64(&mut out, counters.prepartition_overflow);
                put_u64(&mut out, counters.remaining);
                put_u64(&mut out, counters.fallback_hash);
                put_u64(&mut out, counters.fallback_least_loaded);
                put_u64(&mut out, *assigned);
                put_vec_u64(&mut out, loads);
                put_trace_events(&mut out, trace);
                put_counter_snap(&mut out, counter_snap);
            }
            Message::Pull | Message::Shutdown => {}
            Message::RunsDone { shard, epoch } => {
                put_u32(&mut out, *shard);
                put_u32(&mut out, *epoch);
            }
            Message::Run {
                shard,
                epoch,
                batch,
            } => {
                put_u32(&mut out, *shard);
                put_u32(&mut out, *epoch);
                put_u32(&mut out, batch.len() as u32);
                for (e, p) in batch {
                    put_u32(&mut out, e.src);
                    put_u32(&mut out, e.dst);
                    put_u32(&mut out, *p);
                }
            }
            Message::Abort { reason } => put_string(&mut out, reason),
        }
        out
    }

    /// Parse a frame body. Every malformed input is an `InvalidData` error.
    pub fn decode(frame: &[u8]) -> io::Result<Message> {
        let (&tag, body) = frame
            .split_first()
            .ok_or_else(|| corrupt("empty frame (missing message tag)"))?;
        let mut r = Reader::new(body);
        let msg = match tag {
            1 => Message::Hello { version: r.u32()? },
            15 => Message::Rejoin { version: r.u32()? },
            2 => Message::Job(decode_job(&mut r)?),
            16 => Message::Reissue(decode_job(&mut r)?),
            3 => {
                let shard = r.u32()?;
                let epoch = r.u32()?;
                Message::Degrees {
                    shard,
                    epoch,
                    degrees: r.vec_u32()?,
                }
            }
            4 => {
                let volume_cap = r.u64()?;
                let degrees = r.vec_u32()?;
                Message::Globals {
                    degrees,
                    volume_cap,
                }
            }
            5 => {
                let shard = r.u32()?;
                let epoch = r.u32()?;
                Message::LocalClustering {
                    shard,
                    epoch,
                    clustering: decode_clustering(&mut r)?,
                }
            }
            6 => {
                let clustering = decode_clustering(&mut r)?;
                let c2p = r.vec_u32()?;
                Message::Plan { clustering, c2p }
            }
            7 => {
                let shard = r.u32()?;
                let epoch = r.u32()?;
                let chunk = r.u32()?;
                Message::ReplicationChunk {
                    shard,
                    epoch,
                    chunk,
                    words: r.word_runs()?,
                }
            }
            8 => Message::MergedReplicationChunk {
                chunk: r.u32()?,
                words: r.word_runs()?,
            },
            9 => {
                let shard = r.u32()?;
                let epoch = r.u32()?;
                let counters = AssignCounters {
                    prepartitioned: r.u64()?,
                    prepartition_overflow: r.u64()?,
                    remaining: r.u64()?,
                    fallback_hash: r.u64()?,
                    fallback_least_loaded: r.u64()?,
                };
                let assigned = r.u64()?;
                let loads = r.vec_u64()?;
                let trace = read_trace_events(&mut r)?;
                let counter_snap = read_counter_snap(&mut r)?;
                Message::ShardDone {
                    shard,
                    epoch,
                    counters,
                    loads,
                    assigned,
                    trace,
                    counter_snap,
                }
            }
            10 => Message::Pull,
            11 => {
                let shard = r.u32()?;
                let epoch = r.u32()?;
                let n = r.u32()? as usize;
                if n > RUN_BATCH_EDGES {
                    return Err(corrupt(format!(
                        "run batch of {n} edges exceeds bound {RUN_BATCH_EDGES}"
                    )));
                }
                let mut batch = Vec::with_capacity(n);
                for _ in 0..n {
                    let src = r.u32()?;
                    let dst = r.u32()?;
                    let p = r.u32()?;
                    batch.push((Edge { src, dst }, p));
                }
                Message::Run {
                    shard,
                    epoch,
                    batch,
                }
            }
            12 => Message::RunsDone {
                shard: r.u32()?,
                epoch: r.u32()?,
            },
            13 => Message::Shutdown,
            14 => Message::Abort {
                reason: r.string()?,
            },
            other if other >= SERVE_TAG_BASE => {
                return Err(corrupt(format!(
                    "message tag {other} belongs to the tps-serve frame family \
                     (tags {SERVE_TAG_BASE}+) — this endpoint speaks the \
                     partitioning protocol"
                )))
            }
            other => return Err(corrupt(format!("unknown message tag {other}"))),
        };
        r.expect_empty()?;
        Ok(msg)
    }
}

/// Sanity cap on shipped trace events per `ShardDone` (a traced worker
/// records a handful of spans per phase; anything near this is corruption).
const MAX_TRACE_EVENTS: usize = 1 << 16;
/// Sanity cap on shipped counter snapshot entries.
const MAX_TRACE_COUNTERS: usize = 1 << 12;

fn put_trace_events(out: &mut Vec<u8>, events: &[tps_obs::TraceEvent]) {
    put_u32(out, events.len() as u32);
    for e in events {
        out.push(match e.kind {
            tps_obs::EventKind::Open => 0,
            tps_obs::EventKind::Close => 1,
            tps_obs::EventKind::Mark => 2,
        });
        put_string(out, &e.name);
        put_u32(out, e.tid);
        put_u64(out, e.ns);
        match &e.detail {
            None => out.push(0),
            Some(d) => {
                out.push(1);
                put_string(out, d);
            }
        }
    }
}

fn read_trace_events(r: &mut Reader) -> io::Result<Vec<tps_obs::TraceEvent>> {
    let n = r.u32()? as usize;
    if n > MAX_TRACE_EVENTS {
        return Err(corrupt(format!(
            "trace event count {n} exceeds bound {MAX_TRACE_EVENTS}"
        )));
    }
    let mut events = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let kind = match r.u8()? {
            0 => tps_obs::EventKind::Open,
            1 => tps_obs::EventKind::Close,
            2 => tps_obs::EventKind::Mark,
            other => return Err(corrupt(format!("unknown trace event kind {other}"))),
        };
        let name = r.string()?;
        let tid = r.u32()?;
        let ns = r.u64()?;
        let detail = match r.u8()? {
            0 => None,
            1 => Some(r.string()?),
            other => return Err(corrupt(format!("bad trace detail flag {other}"))),
        };
        events.push(tps_obs::TraceEvent {
            kind,
            name,
            worker: 0, // assigned by the coordinator on receipt
            tid,
            ns,
            detail,
        });
    }
    Ok(events)
}

fn put_counter_snap(out: &mut Vec<u8>, snap: &[(String, u64)]) {
    put_u32(out, snap.len() as u32);
    for (name, value) in snap {
        put_string(out, name);
        put_u64(out, *value);
    }
}

fn read_counter_snap(r: &mut Reader) -> io::Result<Vec<(String, u64)>> {
    let n = r.u32()? as usize;
    if n > MAX_TRACE_COUNTERS {
        return Err(corrupt(format!(
            "counter snapshot of {n} entries exceeds bound {MAX_TRACE_COUNTERS}"
        )));
    }
    let mut snap = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = r.string()?;
        snap.push((name, r.u64()?));
    }
    Ok(snap)
}

fn decode_clustering<'a>(r: &mut Reader<'a>) -> io::Result<Clustering> {
    let (c, rest) = Clustering::decode_from(r.tail()).map_err(corrupt)?;
    r.set_tail(rest);
    Ok(c)
}

fn encode_job(out: &mut Vec<u8>, job: &Job) {
    put_u32(out, job.worker_index);
    put_u32(out, job.num_workers);
    put_u32(out, job.epoch);
    put_u32(out, job.k);
    put_f64(out, job.alpha);
    // TwoPhaseConfig, field by field.
    put_u32(out, job.config.clustering_passes);
    put_f64(out, job.config.volume_cap_factor);
    match job.config.strategy {
        RemainingStrategy::TwoChoice => out.push(0),
        RemainingStrategy::Hdrf(h) => {
            out.push(1);
            put_f64(out, h.lambda);
            put_f64(out, h.epsilon);
        }
    }
    out.push(match job.config.mapping {
        MappingStrategy::SortedGraham => 0,
        MappingStrategy::UnsortedFirstFit => 1,
    });
    out.push(job.config.prepartitioning as u8);
    put_u64(out, job.config.hash_seed);
    put_u64(out, job.num_vertices);
    put_u64(out, job.num_edges);
    put_u64(out, job.shard.0);
    put_u64(out, job.shard.1);
    match &job.input {
        InputDescriptor::Attached => out.push(0),
        InputDescriptor::Path { path, reader } => {
            out.push(1);
            out.push(match reader {
                ReaderBackend::Buffered => 0,
                ReaderBackend::Mmap => 1,
                ReaderBackend::Prefetch => 2,
            });
            put_string(out, path);
        }
    }
    // v4: appended last so every fixed field keeps its v3 offset.
    out.push(job.trace as u8);
    // v6: appended after the v4 tail for the same reason.
    put_u64(out, job.mem_budget_mb);
}

fn decode_job(r: &mut Reader) -> io::Result<Job> {
    let worker_index = r.u32()?;
    let num_workers = r.u32()?;
    let epoch = r.u32()?;
    let k = r.u32()?;
    let alpha = r.f64()?;
    let clustering_passes = r.u32()?;
    let volume_cap_factor = r.f64()?;
    let strategy = match r.u8()? {
        0 => RemainingStrategy::TwoChoice,
        1 => RemainingStrategy::Hdrf(HdrfParams {
            lambda: r.f64()?,
            epsilon: r.f64()?,
        }),
        other => return Err(corrupt(format!("unknown scoring strategy {other}"))),
    };
    let mapping = match r.u8()? {
        0 => MappingStrategy::SortedGraham,
        1 => MappingStrategy::UnsortedFirstFit,
        other => return Err(corrupt(format!("unknown mapping strategy {other}"))),
    };
    let prepartitioning = match r.u8()? {
        0 => false,
        1 => true,
        other => return Err(corrupt(format!("bad prepartitioning flag {other}"))),
    };
    let hash_seed = r.u64()?;
    let num_vertices = r.u64()?;
    let num_edges = r.u64()?;
    let shard = (r.u64()?, r.u64()?);
    let input = match r.u8()? {
        0 => InputDescriptor::Attached,
        1 => {
            let reader = match r.u8()? {
                0 => ReaderBackend::Buffered,
                1 => ReaderBackend::Mmap,
                2 => ReaderBackend::Prefetch,
                other => return Err(corrupt(format!("unknown reader backend {other}"))),
            };
            InputDescriptor::Path {
                path: r.string()?,
                reader,
            }
        }
        other => return Err(corrupt(format!("unknown input descriptor {other}"))),
    };
    let trace = match r.u8()? {
        0 => false,
        1 => true,
        other => return Err(corrupt(format!("bad trace flag {other}"))),
    };
    let mem_budget_mb = r.u64()?;
    if num_workers == 0 || worker_index >= num_workers {
        return Err(corrupt(format!(
            "worker index {worker_index} out of range for {num_workers} workers"
        )));
    }
    if k == 0
        || alpha < 1.0
        || alpha.is_nan()
        || volume_cap_factor <= 0.0
        || volume_cap_factor.is_nan()
        || clustering_passes == 0
    {
        return Err(corrupt("job parameters out of range"));
    }
    if shard.0 > shard.1 || shard.1 > num_edges {
        return Err(corrupt(format!(
            "shard [{}, {}) out of bounds for |E| = {num_edges}",
            shard.0, shard.1
        )));
    }
    Ok(Job {
        worker_index,
        num_workers,
        epoch,
        k,
        alpha,
        config: TwoPhaseConfig {
            clustering_passes,
            volume_cap_factor,
            strategy,
            mapping,
            prepartitioning,
            hash_seed,
        },
        num_vertices,
        num_edges,
        shard,
        input,
        trace,
        mem_budget_mb,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &Message) -> Message {
        let bytes = msg.encode();
        let decoded = Message::decode(&bytes).unwrap();
        assert_eq!(decoded.encode(), bytes, "re-encode must be stable");
        decoded
    }

    #[test]
    fn job_roundtrips_both_strategies_and_inputs() {
        for (config, input) in [
            (TwoPhaseConfig::default(), InputDescriptor::Attached),
            (
                TwoPhaseConfig::hdrf_variant(),
                InputDescriptor::Path {
                    path: "/data/graph.bel".into(),
                    reader: ReaderBackend::Mmap,
                },
            ),
        ] {
            let job = Job {
                worker_index: 1,
                num_workers: 4,
                epoch: 3,
                k: 32,
                alpha: 1.05,
                config,
                num_vertices: 1000,
                num_edges: 5000,
                shard: (1250, 2500),
                input: input.clone(),
                trace: true,
                mem_budget_mb: 512,
            };
            let Message::Job(back) = roundtrip(&Message::Job(job.clone())) else {
                panic!("tag changed");
            };
            assert_eq!(back.shard, (1250, 2500));
            assert_eq!(back.epoch, 3);
            assert_eq!(back.input, input);
            assert!(back.trace);
            assert_eq!(back.mem_budget_mb, 512);
            assert_eq!(back.config.hash_seed, TwoPhaseConfig::default().hash_seed);
            // A Reissue carries the identical body under its own tag.
            let Message::Reissue(again) = roundtrip(&Message::Reissue(job)) else {
                panic!("tag changed");
            };
            assert_eq!(again.epoch, 3);
        }
    }

    #[test]
    fn every_fixed_message_roundtrips() {
        for msg in [
            Message::Hello {
                version: PROTOCOL_VERSION,
            },
            Message::Rejoin {
                version: PROTOCOL_VERSION,
            },
            Message::Degrees {
                shard: 1,
                epoch: 2,
                degrees: vec![0, 3, 7],
            },
            Message::Globals {
                degrees: vec![1, 2],
                volume_cap: 99,
            },
            Message::ShardDone {
                shard: 3,
                epoch: 1,
                counters: AssignCounters {
                    prepartitioned: 1,
                    prepartition_overflow: 2,
                    remaining: 3,
                    fallback_hash: 4,
                    fallback_least_loaded: 5,
                },
                loads: vec![7, 8],
                assigned: 15,
                trace: vec![],
                counter_snap: vec![],
            },
            Message::Pull,
            Message::Run {
                shard: 0,
                epoch: 4,
                batch: vec![(Edge::new(1, 2), 0), (Edge::new(3, 4), 7)],
            },
            Message::RunsDone { shard: 2, epoch: 0 },
            Message::Shutdown,
            Message::Abort {
                reason: "boom".into(),
            },
        ] {
            let tag = msg.tag();
            assert_eq!(roundtrip(&msg).tag(), tag);
        }
    }

    #[test]
    fn shard_epoch_envelope_is_exposed_on_worker_data_frames() {
        assert_eq!(
            Message::Degrees {
                shard: 2,
                epoch: 5,
                degrees: vec![],
            }
            .shard_epoch(),
            Some((2, 5))
        );
        assert_eq!(
            Message::RunsDone { shard: 1, epoch: 9 }.shard_epoch(),
            Some((1, 9))
        );
        assert_eq!(Message::Pull.shard_epoch(), None);
        assert_eq!(Message::Shutdown.shard_epoch(), None);
        assert_eq!(
            Message::Hello {
                version: PROTOCOL_VERSION
            }
            .shard_epoch(),
            None
        );
    }

    #[test]
    fn clustering_and_replication_messages_roundtrip() {
        let c = Clustering::from_parts(vec![0, 1, u32::MAX], vec![3, 4]);
        let Message::Plan { clustering, c2p } = roundtrip(&Message::Plan {
            clustering: c.clone(),
            c2p: vec![1, 0],
        }) else {
            panic!("tag changed");
        };
        assert_eq!(clustering.volumes(), &[3, 4]);
        assert_eq!(c2p, vec![1, 0]);

        let Message::LocalClustering {
            shard,
            epoch,
            clustering,
        } = roundtrip(&Message::LocalClustering {
            shard: 1,
            epoch: 2,
            clustering: c,
        })
        else {
            panic!("tag changed");
        };
        assert_eq!((shard, epoch), (1, 2));
        assert_eq!(clustering.volumes(), &[3, 4]);

        // Chunk payloads: empty, all-zero, and mixed-run words roundtrip.
        for words in [vec![], vec![0u64; 9], vec![0, 7, 0, 0, 9]] {
            let Message::ReplicationChunk {
                shard,
                epoch,
                chunk,
                words: back,
            } = roundtrip(&Message::ReplicationChunk {
                shard: 3,
                epoch: 1,
                chunk: 2,
                words: words.clone(),
            })
            else {
                panic!("tag changed");
            };
            assert_eq!((shard, epoch, chunk), (3, 1, 2));
            assert_eq!(back, words);

            let Message::MergedReplicationChunk { chunk, words: back } =
                roundtrip(&Message::MergedReplicationChunk {
                    chunk: 4,
                    words: words.clone(),
                })
            else {
                panic!("tag changed");
            };
            assert_eq!(chunk, 4);
            assert_eq!(back, words);
        }
    }

    #[test]
    fn corrupt_replication_chunks_error_not_panic() {
        let good = Message::ReplicationChunk {
            shard: 0,
            epoch: 0,
            chunk: 1,
            words: vec![0, 0, 5, 6],
        }
        .encode();
        for cut in [1, 8, 13, good.len() - 1] {
            assert!(Message::decode(&good[..cut]).is_err(), "cut {cut}");
        }
        // A word count past the sanity cap is corruption, not an
        // allocation request.
        let mut out = vec![7u8];
        put_u32(&mut out, 0);
        put_u32(&mut out, 0);
        put_u32(&mut out, 0);
        put_u32(&mut out, (crate::wire::MAX_RUN_WORDS + 1) as u32);
        assert!(Message::decode(&out).is_err());
        // Trailing garbage after a complete chunk body.
        let mut trailing = good.clone();
        trailing.push(9);
        assert!(Message::decode(&trailing).is_err());
    }

    #[test]
    fn chunk_geometry_is_deterministic_and_bounded() {
        // Small graphs: one chunk covering everything.
        let small = ReplChunks::new(1000, 8);
        assert_eq!(small.count(), 1);
        assert_eq!(small.vertex_range(0), (0, 1000));
        assert_eq!(small.words_in_chunk(0), 1000);

        // Empty vertex set: no chunks.
        assert_eq!(ReplChunks::new(0, 8).count(), 0);

        // Beyond the target: multiple chunks, exact cover, bounded words,
        // ragged tail.
        let big = ReplChunks::new(300_000, 8);
        assert_eq!(big.count(), 3);
        let mut covered = 0;
        for c in 0..big.count() {
            let (v0, v1) = big.vertex_range(c);
            assert_eq!(v0, covered, "chunks must tile the vertex space");
            assert!(big.words_in_chunk(c) <= REPL_CHUNK_WORDS);
            covered = v1;
        }
        assert_eq!(covered, 300_000);
        assert_eq!(big.words_in_chunk(2), 300_000 - 2 * REPL_CHUNK_WORDS);

        // Wide k: fewer vertices per chunk, same bound.
        let wide = ReplChunks::new(300_000, 130);
        assert_eq!(wide.words_per_vertex(), 3);
        assert!(wide.count() > big.count());
        for c in 0..wide.count() {
            assert!(wide.words_in_chunk(c) <= REPL_CHUNK_WORDS);
        }

        // Absurdly wide k (a vertex row larger than the target): one
        // vertex per chunk, frame = one row.
        let row = ReplChunks::new(4, u32::MAX);
        assert_eq!(row.count(), 4);
        assert_eq!(row.words_in_chunk(0), row.words_per_vertex());
    }

    #[test]
    fn corrupt_bodies_error_not_panic() {
        // Empty frame, unknown tag, truncated bodies, trailing garbage,
        // out-of-range enum values.
        assert!(Message::decode(&[]).is_err());
        assert!(Message::decode(&[99]).is_err());
        assert!(Message::decode(&[1, 0, 0]).is_err(), "Hello cut short");
        assert!(Message::decode(&[15, 0]).is_err(), "Rejoin cut short");
        let mut hello = Message::Hello { version: 1 }.encode();
        hello.push(0);
        assert!(Message::decode(&hello).is_err(), "trailing byte");
        let mut job = Message::Job(Job {
            worker_index: 0,
            num_workers: 1,
            epoch: 0,
            k: 2,
            alpha: 1.05,
            config: TwoPhaseConfig::default(),
            num_vertices: 10,
            num_edges: 10,
            shard: (0, 10),
            input: InputDescriptor::Attached,
            trace: false,
            mem_budget_mb: 0,
        })
        .encode();
        for cut in [1, 5, job.len() / 2, job.len() - 1] {
            assert!(Message::decode(&job[..cut]).is_err(), "cut {cut}");
        }
        // Strategy byte out of range (offset: tag 1 + 4×u32 16 + f64 8 +
        // u32 4 + f64 8 = byte 37).
        job[37] = 9;
        assert!(Message::decode(&job).is_err());
    }

    #[test]
    fn shard_bounds_are_validated_on_decode() {
        let job = Job {
            worker_index: 0,
            num_workers: 2,
            epoch: 0,
            k: 4,
            alpha: 1.05,
            config: TwoPhaseConfig::default(),
            num_vertices: 10,
            num_edges: 10,
            shard: (8, 20),
            input: InputDescriptor::Attached,
            trace: false,
            mem_budget_mb: 0,
        };
        assert!(Message::decode(&Message::Job(job).encode()).is_err());
    }

    #[test]
    fn oversized_run_batch_rejected() {
        let mut out = vec![11u8];
        put_u32(&mut out, 0);
        put_u32(&mut out, 0);
        put_u32(&mut out, (RUN_BATCH_EDGES + 1) as u32);
        assert!(Message::decode(&out).is_err());
    }

    #[test]
    fn shard_done_trace_payload_roundtrips() {
        let msg = Message::ShardDone {
            shard: 2,
            epoch: 1,
            counters: AssignCounters::default(),
            loads: vec![3, 4],
            assigned: 7,
            trace: vec![
                tps_obs::TraceEvent {
                    kind: tps_obs::EventKind::Open,
                    name: "degree".into(),
                    worker: 0,
                    tid: 1,
                    ns: 100,
                    detail: None,
                },
                tps_obs::TraceEvent {
                    kind: tps_obs::EventKind::Close,
                    name: "degree".into(),
                    worker: 0,
                    tid: 1,
                    ns: 900,
                    detail: Some("note".into()),
                },
            ],
            counter_snap: vec![("io.v2.chunks_decoded".into(), 12)],
        };
        let Message::ShardDone {
            trace,
            counter_snap,
            ..
        } = roundtrip(&msg)
        else {
            panic!("tag changed");
        };
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].detail.as_deref(), Some("note"));
        assert_eq!(counter_snap, vec![("io.v2.chunks_decoded".to_string(), 12)]);
    }

    #[test]
    fn corrupt_trace_payload_rejected() {
        // An event count past the sanity cap is corruption, not an
        // allocation request.
        let mut out = Message::ShardDone {
            shard: 0,
            epoch: 0,
            counters: AssignCounters::default(),
            loads: vec![],
            assigned: 0,
            trace: vec![],
            counter_snap: vec![],
        }
        .encode();
        // Strip the two empty v4 vec headers (4 bytes each) and splice in
        // an oversized event count with no payload.
        out.truncate(out.len() - 8);
        put_u32(&mut out, u32::MAX);
        assert!(Message::decode(&out).is_err());
    }
}
