//! Pluggable frame transports: TCP, in-process loopback, and tracing.
//!
//! The protocol above ([`crate::protocol`]) encodes messages to frame bytes;
//! a [`Transport`] only moves those bytes. Because *all* serialisation
//! happens above the transport, a loopback channel pair and a TCP socket
//! carry byte-identical frames — the trace proptests in
//! `tests/tests/dist.rs` pin exactly that, which is what makes the
//! socket-free loopback runner a faithful test double for multi-process
//! deployments.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::protocol::Message;
use crate::wire::{read_frame, write_frame};

/// Moves opaque frames between a coordinator and one worker.
pub trait Transport: Send {
    /// Send one frame.
    fn send(&mut self, frame: &[u8]) -> io::Result<()>;
    /// Receive one frame, blocking.
    fn recv(&mut self) -> io::Result<Vec<u8>>;
    /// Bound how long [`recv`](Transport::recv) blocks; `None` waits
    /// forever. A timed-out receive fails with
    /// [`io::ErrorKind::TimedOut`]/[`WouldBlock`](io::ErrorKind::WouldBlock)
    /// and may leave the stream mid-frame — the fault-tolerant coordinator
    /// treats any timeout as a dead worker and drops the connection.
    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()>;
}

/// Whether an I/O error indicates the receive deadline elapsed (the two
/// kinds platforms map socket read timeouts to).
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Frame traffic counters, fed by every [`send_msg`] / [`send_frame`] /
/// [`recv_msg`] call. `dist.frames.bytes` totals both directions.
static DIST_FRAMES_SENT: tps_obs::Counter = tps_obs::Counter::new("dist.frames.sent");
static DIST_FRAMES_RECV: tps_obs::Counter = tps_obs::Counter::new("dist.frames.recv");
static DIST_FRAMES_BYTES: tps_obs::Counter = tps_obs::Counter::new("dist.frames.bytes");

/// Encode and send `msg`.
pub fn send_msg(t: &mut dyn Transport, msg: &Message) -> io::Result<()> {
    send_frame(t, &msg.encode())
}

/// Send one pre-encoded frame (broadcast replays reuse encoded barrier
/// frames), counted like [`send_msg`].
pub fn send_frame(t: &mut dyn Transport, frame: &[u8]) -> io::Result<()> {
    DIST_FRAMES_SENT.incr();
    DIST_FRAMES_BYTES.add(frame.len() as u64);
    t.send(frame)
}

/// Receive and decode one message.
pub fn recv_msg(t: &mut dyn Transport) -> io::Result<Message> {
    let frame = t.recv()?;
    DIST_FRAMES_RECV.incr();
    DIST_FRAMES_BYTES.add(frame.len() as u64);
    Message::decode(&frame)
}

/// A [`Transport`] over a connected TCP stream, length-prefix framed.
///
/// Reads and writes are buffered independently (the protocol is
/// request/response at phase barriers but streams `Run` frames during
/// emit); every send flushes, since each message unblocks the peer.
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpTransport {
    /// Wrap a connected stream. `TCP_NODELAY` is set — the barrier messages
    /// are latency-bound, not bandwidth-bound.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true).ok();
        let write_half = stream.try_clone()?;
        Ok(TcpTransport {
            reader: BufReader::with_capacity(1 << 16, stream),
            writer: BufWriter::with_capacity(1 << 16, write_half),
        })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, frame)?;
        self.writer.flush()
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        read_frame(&mut self.reader)
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }
}

/// One end of an in-process loopback channel pair.
///
/// Frames cross unchanged through unbounded channels — no sockets, no
/// syscalls, deterministic and deadlock-free for this protocol (each side
/// has at most a bounded number of unconsumed frames in flight).
pub struct LoopbackTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    timeout: Option<Duration>,
}

/// A connected pair of loopback transports (coordinator side, worker side).
pub fn loopback_pair() -> (LoopbackTransport, LoopbackTransport) {
    let (a_tx, a_rx) = channel();
    let (b_tx, b_rx) = channel();
    (
        LoopbackTransport {
            tx: a_tx,
            rx: b_rx,
            timeout: None,
        },
        LoopbackTransport {
            tx: b_tx,
            rx: a_rx,
            timeout: None,
        },
    )
}

impl Transport for LoopbackTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "loopback peer disconnected"))
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let closed = || {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "loopback peer closed mid-protocol",
            )
        };
        match self.timeout {
            None => self.rx.recv().map_err(|_| closed()),
            Some(t) => self.rx.recv_timeout(t).map_err(|e| match e {
                RecvTimeoutError::Timeout => io::Error::new(
                    io::ErrorKind::TimedOut,
                    "loopback peer sent nothing within the receive timeout",
                ),
                RecvTimeoutError::Disconnected => closed(),
            }),
        }
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.timeout = timeout;
        Ok(())
    }
}

/// One observed frame: direction, message tag, frame length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// `true` for frames this side sent, `false` for received.
    pub sent: bool,
    /// The frame's message tag byte (0 for an empty frame).
    pub tag: u8,
    /// Total frame bytes.
    pub len: usize,
}

impl TraceEvent {
    /// The tag's message name.
    pub fn name(&self) -> &'static str {
        Message::tag_name(self.tag)
    }
}

/// Wraps any transport, recording a [`TraceEvent`] per frame into a shared
/// log — the instrument behind the loopback-equals-TCP protocol tests.
pub struct TraceTransport<T: Transport> {
    inner: T,
    trace: Arc<Mutex<Vec<TraceEvent>>>,
}

impl<T: Transport> TraceTransport<T> {
    /// Wrap `inner`, appending events to `trace`.
    pub fn new(inner: T, trace: Arc<Mutex<Vec<TraceEvent>>>) -> Self {
        TraceTransport { inner, trace }
    }
}

impl<T: Transport> Transport for TraceTransport<T> {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.trace.lock().expect("trace lock").push(TraceEvent {
            sent: true,
            tag: frame.first().copied().unwrap_or(0),
            len: frame.len(),
        });
        self.inner.send(frame)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let frame = self.inner.recv()?;
        self.trace.lock().expect("trace lock").push(TraceEvent {
            sent: false,
            tag: frame.first().copied().unwrap_or(0),
            len: frame.len(),
        });
        Ok(frame)
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_moves_frames_both_ways() {
        let (mut a, mut b) = loopback_pair();
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap(), b"ping");
        b.send(b"pong").unwrap();
        assert_eq!(a.recv().unwrap(), b"pong");
    }

    #[test]
    fn loopback_recv_timeout_fires_and_clears() {
        let (mut a, mut b) = loopback_pair();
        a.set_recv_timeout(Some(Duration::from_millis(10))).unwrap();
        let err = a.recv().unwrap_err();
        assert!(is_timeout(&err), "{err}");
        b.send(b"late").unwrap();
        assert_eq!(a.recv().unwrap(), b"late");
        a.set_recv_timeout(None).unwrap();
        b.send(b"untimed").unwrap();
        assert_eq!(a.recv().unwrap(), b"untimed");
    }

    #[test]
    fn tcp_recv_timeout_is_a_timeout_error() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpTransport::new(stream).unwrap();
        server
            .set_recv_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let err = server.recv().unwrap_err();
        assert!(is_timeout(&err), "{err}");
    }

    #[test]
    fn loopback_disconnect_is_an_error_not_a_hang() {
        let (mut a, b) = loopback_pair();
        drop(b);
        assert!(a.send(b"x").is_err());
        assert_eq!(a.recv().unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn tcp_transport_roundtrips_frames() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut t = TcpTransport::new(TcpStream::connect(addr).unwrap()).unwrap();
            t.send(b"hello over tcp").unwrap();
            t.recv().unwrap()
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpTransport::new(stream).unwrap();
        assert_eq!(server.recv().unwrap(), b"hello over tcp");
        server.send(b"ack").unwrap();
        assert_eq!(client.join().unwrap(), b"ack");
    }

    #[test]
    fn tcp_recv_on_truncated_stream_errors() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            use std::io::Write;
            let mut s = TcpStream::connect(addr).unwrap();
            // Promise 100 bytes, deliver 3, hang up.
            s.write_all(&100u32.to_le_bytes()).unwrap();
            s.write_all(b"abc").unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpTransport::new(stream).unwrap();
        let err = server.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        client.join().unwrap();
    }

    #[test]
    fn trace_records_direction_tag_and_length() {
        let trace = Arc::new(Mutex::new(Vec::new()));
        let (a, mut b) = loopback_pair();
        let mut a = TraceTransport::new(a, trace.clone());
        a.send(&[7, 1, 2]).unwrap();
        b.send(&[13]).unwrap();
        a.recv().unwrap();
        let events = trace.lock().unwrap().clone();
        assert_eq!(
            events,
            vec![
                TraceEvent {
                    sent: true,
                    tag: 7,
                    len: 3
                },
                TraceEvent {
                    sent: false,
                    tag: 13,
                    len: 1
                },
            ]
        );
        assert_eq!(events[1].name(), "Shutdown");
    }
}
