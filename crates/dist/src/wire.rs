//! Frame and primitive codecs of the distributed protocol.
//!
//! Everything on the wire is a **frame**: a little-endian `u32` byte length
//! followed by that many payload bytes. The first payload byte is the
//! message tag (see [`crate::protocol`]); the rest is the message body,
//! built from the fixed-width primitives here. There is no compression, no
//! optional fields and no versioned schema evolution — the [`Hello`]
//! handshake pins an exact protocol version instead, which keeps the codec
//! auditable and the corrupt-input behaviour easy to test: every decode
//! error is an `InvalidData`/`UnexpectedEof` `io::Error`, never a panic.
//!
//! [`Hello`]: crate::protocol::Message::Hello

use std::io::{self, Read, Write};

/// Hard upper bound on one frame's payload (a degree table for 256M
/// vertices). A length prefix beyond this is treated as stream corruption
/// rather than an allocation request.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// An `InvalidData` error with `msg`.
pub fn corrupt<E: Into<Box<dyn std::error::Error + Send + Sync>>>(msg: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> io::Result<()> {
    if frame.len() > MAX_FRAME_LEN {
        return Err(corrupt(format!(
            "refusing to send a {} byte frame (cap {MAX_FRAME_LEN})",
            frame.len()
        )));
    }
    w.write_all(&(frame.len() as u32).to_le_bytes())?;
    w.write_all(frame)
}

/// Read one length-prefixed frame, rejecting lengths beyond
/// [`MAX_FRAME_LEN`] and mapping short reads to `UnexpectedEof`.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(corrupt(format!(
            "frame length {len} exceeds cap {MAX_FRAME_LEN} (corrupt stream?)"
        )));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("truncated frame: promised {len} bytes"),
            )
        } else {
            e
        }
    })?;
    Ok(buf)
}

/// Bounds-checked cursor over a received frame body.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Cursor over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(corrupt(format!(
                "message truncated: need {n} more bytes, have {}",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// One byte.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Little-endian IEEE-754 `f64`.
    pub fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u32`-counted vector of `u32`s.
    pub fn vec_u32(&mut self) -> io::Result<Vec<u32>> {
        let n = self.u32()? as usize;
        let bytes = self.take(
            n.checked_mul(4)
                .ok_or_else(|| corrupt("u32 vec overflow"))?,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// A `u32`-counted vector of `u64`s.
    pub fn vec_u64(&mut self) -> io::Result<Vec<u64>> {
        let n = self.u32()? as usize;
        let bytes = self.take(
            n.checked_mul(8)
                .ok_or_else(|| corrupt("u64 vec overflow"))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// A `u32`-counted UTF-8 string.
    pub fn string(&mut self) -> io::Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string is not valid UTF-8"))
    }

    /// The unconsumed tail (for nested codecs that track their own length).
    pub fn tail(&mut self) -> &'a [u8] {
        std::mem::take(&mut self.buf)
    }

    /// Replace the cursor's view (after a nested codec consumed a prefix).
    pub fn set_tail(&mut self, rest: &'a [u8]) {
        self.buf = rest;
    }

    /// Error unless every byte was consumed — trailing garbage means the
    /// sender and receiver disagree on the schema.
    pub fn expect_empty(&self) -> io::Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(corrupt(format!(
                "{} trailing bytes after message body",
                self.buf.len()
            )))
        }
    }
}

/// Append helpers mirroring [`Reader`].
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `f64`.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32`-counted vector of `u32`s.
pub fn put_vec_u32(out: &mut Vec<u8>, v: &[u32]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_u32(out, x);
    }
}

/// Append a `u32`-counted vector of `u64`s.
pub fn put_vec_u64(out: &mut Vec<u8>, v: &[u64]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_u64(out, x);
    }
}

/// Append a `u32`-counted UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Cap on the decoded length of one [`put_word_runs`] sequence (2^24 words
/// = 128 MiB of packed bits). Replication chunks are far smaller (the
/// chunking targets [`crate::protocol::REPL_CHUNK_WORDS`] words, and a
/// single vertex row `⌈k/64⌉` can only exceed that for k in the millions);
/// a count beyond this cap is treated as stream corruption rather than an
/// allocation request — zero runs compress, so a tiny frame could
/// otherwise demand an enormous buffer.
pub const MAX_RUN_WORDS: usize = 1 << 24;

/// Append a `u64`-word sequence with **zero-word-run encoding**: a `u32`
/// total count, then greedy groups of `u32 zeros`, `u32 literals`,
/// `literals × u64`. Replication-matrix rows are mostly zero on sparse
/// graphs, so the run groups collapse the bulk of a chunk to a few bytes;
/// the encoding is canonical (maximal runs), so equal word sequences
/// encode to equal bytes.
pub fn put_word_runs(out: &mut Vec<u8>, words: &[u64]) {
    put_u32(out, words.len() as u32);
    let mut i = 0;
    while i < words.len() {
        let zeros_start = i;
        while i < words.len() && words[i] == 0 {
            i += 1;
        }
        let lit_start = i;
        while i < words.len() && words[i] != 0 {
            i += 1;
        }
        put_u32(out, (lit_start - zeros_start) as u32);
        put_u32(out, (i - lit_start) as u32);
        for &w in &words[lit_start..i] {
            put_u64(out, w);
        }
    }
}

impl<'a> Reader<'a> {
    /// Inverse of [`put_word_runs`]. Rejects counts beyond
    /// [`MAX_RUN_WORDS`], groups that overflow the declared count, empty
    /// groups (no progress), and truncation.
    pub fn word_runs(&mut self) -> io::Result<Vec<u64>> {
        let total = self.u32()? as usize;
        if total > MAX_RUN_WORDS {
            return Err(corrupt(format!(
                "word-run sequence of {total} words exceeds cap {MAX_RUN_WORDS}"
            )));
        }
        let mut out = Vec::with_capacity(total);
        while out.len() < total {
            let zeros = self.u32()? as usize;
            let lits = self.u32()? as usize;
            if zeros == 0 && lits == 0 {
                return Err(corrupt("empty word-run group"));
            }
            let new_len = out
                .len()
                .checked_add(zeros)
                .and_then(|n| n.checked_add(lits))
                .filter(|&n| n <= total)
                .ok_or_else(|| corrupt("word-run group overflows the declared count"))?;
            out.resize(out.len() + zeros, 0u64);
            for _ in 0..lits {
                out.push(self.u64()?);
            }
            debug_assert_eq!(out.len(), new_len);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err(), "stream exhausted");
    }

    #[test]
    fn oversized_length_prefix_is_corruption_not_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("cap"));
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(b"only ten b");
        let err = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("promised 100"));
    }

    #[test]
    fn primitive_roundtrips() {
        let mut out = Vec::new();
        put_u32(&mut out, 7);
        put_u64(&mut out, u64::MAX - 1);
        put_f64(&mut out, 1.05);
        put_vec_u32(&mut out, &[1, 2, 3]);
        put_vec_u64(&mut out, &[9, 10]);
        put_string(&mut out, "2PS-L×4");
        let mut r = Reader::new(&out);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), 1.05);
        assert_eq!(r.vec_u32().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.vec_u64().unwrap(), vec![9, 10]);
        assert_eq!(r.string().unwrap(), "2PS-L×4");
        r.expect_empty().unwrap();
    }

    #[test]
    fn reader_rejects_truncation_and_trailing_bytes() {
        let mut out = Vec::new();
        put_u32(&mut out, 1);
        let mut r = Reader::new(&out);
        assert!(r.u64().is_err(), "u64 from 4 bytes");
        let mut out = Vec::new();
        put_vec_u32(&mut out, &[1, 2]);
        let mut r = Reader::new(&out[..6]);
        assert!(r.vec_u32().is_err(), "vec cut mid-element");
        let mut r = Reader::new(&[1, 2, 3]);
        r.u8().unwrap();
        assert!(r.expect_empty().is_err());
    }

    #[test]
    fn word_runs_roundtrip_all_shapes() {
        for words in [
            vec![],
            vec![0u64; 7],
            vec![1, 2, 3],
            vec![0, 0, 5, 0, 6, 7, 0, 0, 0],
            vec![u64::MAX; 3],
            vec![0, 1, 0, 1, 0],
        ] {
            let mut out = Vec::new();
            put_word_runs(&mut out, &words);
            let mut r = Reader::new(&out);
            assert_eq!(r.word_runs().unwrap(), words, "{words:?}");
            r.expect_empty().unwrap();
            // Canonical: re-encoding the decoded words is byte-stable.
            let mut again = Vec::new();
            put_word_runs(&mut again, &words);
            assert_eq!(again, out);
        }
    }

    #[test]
    fn word_runs_compress_zero_heavy_sequences() {
        let mut sparse = vec![0u64; 100_000];
        sparse[40_000] = 7;
        let mut out = Vec::new();
        put_word_runs(&mut out, &sparse);
        assert!(
            out.len() < 64,
            "sparse sequence should collapse: {} bytes",
            out.len()
        );
        let mut r = Reader::new(&out);
        assert_eq!(r.word_runs().unwrap(), sparse);
    }

    #[test]
    fn word_runs_reject_corruption() {
        // Count beyond the cap.
        let mut out = Vec::new();
        put_u32(&mut out, (MAX_RUN_WORDS + 1) as u32);
        assert!(Reader::new(&out).word_runs().is_err());
        // Empty group: no progress.
        let mut out = Vec::new();
        put_u32(&mut out, 4);
        put_u32(&mut out, 0);
        put_u32(&mut out, 0);
        assert!(Reader::new(&out).word_runs().is_err());
        // Group overflowing the declared count.
        let mut out = Vec::new();
        put_u32(&mut out, 2);
        put_u32(&mut out, 5);
        put_u32(&mut out, 0);
        assert!(Reader::new(&out).word_runs().is_err());
        // Truncated literals.
        let mut out = Vec::new();
        put_word_runs(&mut out, &[1, 2, 3]);
        assert!(Reader::new(&out[..out.len() - 1]).word_runs().is_err());
    }

    #[test]
    fn invalid_utf8_string_rejected() {
        let mut out = Vec::new();
        put_u32(&mut out, 2);
        out.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Reader::new(&out).string().is_err());
    }
}
