//! Fault injection for chaos testing: kill a worker at any protocol point.
//!
//! A [`FaultTransport`] wraps a worker-side [`Transport`] and "kills" the
//! worker when a configured [`KillSpec`] matches a frame event. Two kill
//! modes model the two deployment shapes:
//!
//! * [`KillMode::Sever`] — drop the inner transport (closing both
//!   directions, exactly like a crashed process's socket) and fail every
//!   subsequent operation. Used by in-process loopback chaos tests.
//! * [`KillMode::Exit`] — call `std::process::exit` so the OS closes the
//!   socket. Used by `tps dist worker --kill-at` (the `--dist-local`
//!   spawner forwards it), which is what the CI `dist-chaos` job drives.
//!
//! The trigger fires *after* the matching frame completes: `send:run:1`
//! delivers one full `Run` frame and then dies — a genuine mid-stream
//! death — and `recv:globals` dies right after the worker learns the
//! merged degrees, i.e. while phase 1 runs.

use std::io;
use std::time::Duration;

use crate::protocol::Message;
use crate::transport::Transport;

/// Which frame event triggers the kill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillPoint {
    /// After the `n`-th frame with this tag is received (1-based).
    AfterRecv {
        /// The message tag to match.
        tag: u8,
        /// Which occurrence triggers (1 = first).
        n: u32,
    },
    /// After the `n`-th frame with this tag is sent (1-based).
    AfterSend {
        /// The message tag to match.
        tag: u8,
        /// Which occurrence triggers (1 = first).
        n: u32,
    },
    /// After `n` frames total (sends + receives); `0` kills before the
    /// first frame moves.
    Frames(u32),
}

/// A parsed `--kill-at` specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillSpec {
    /// The trigger.
    pub point: KillPoint,
}

impl KillSpec {
    /// Parse a spec string:
    ///
    /// * `recv:TAG[:N]` — after receiving the N-th frame named `TAG`
    ///   (message names as in the protocol table, case-insensitive);
    /// * `send:TAG[:N]` — after sending the N-th such frame;
    /// * `frames:N` — after N frames in either direction.
    pub fn parse(spec: &str) -> Result<KillSpec, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let point = match parts.as_slice() {
            ["frames", n] => KillPoint::Frames(
                n.parse()
                    .map_err(|_| format!("kill spec {spec:?}: bad frame count {n:?}"))?,
            ),
            ["recv", tag] => KillPoint::AfterRecv {
                tag: tag_by_name(tag)?,
                n: 1,
            },
            ["send", tag] => KillPoint::AfterSend {
                tag: tag_by_name(tag)?,
                n: 1,
            },
            ["recv", tag, n] => KillPoint::AfterRecv {
                tag: tag_by_name(tag)?,
                n: parse_count(spec, n)?,
            },
            ["send", tag, n] => KillPoint::AfterSend {
                tag: tag_by_name(tag)?,
                n: parse_count(spec, n)?,
            },
            _ => {
                return Err(format!(
                    "kill spec {spec:?}: expected recv:TAG[:N], send:TAG[:N] or frames:N"
                ))
            }
        };
        Ok(KillSpec { point })
    }
}

fn parse_count(spec: &str, n: &str) -> Result<u32, String> {
    let n: u32 = n
        .parse()
        .map_err(|_| format!("kill spec {spec:?}: bad occurrence count {n:?}"))?;
    if n == 0 {
        return Err(format!("kill spec {spec:?}: occurrence counts are 1-based"));
    }
    Ok(n)
}

fn tag_by_name(name: &str) -> Result<u8, String> {
    (1..=16u8)
        .find(|&t| Message::tag_name(t).eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown message name {name:?} in kill spec"))
}

/// What happens when the kill triggers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillMode {
    /// Drop the inner transport and fail all further operations — the
    /// in-process stand-in for a crashed worker.
    Sever,
    /// `std::process::exit(3)` — a real crashed worker process.
    Exit,
}

/// A worker-side transport that dies per a [`KillSpec`] (see module docs).
pub struct FaultTransport<T: Transport> {
    inner: Option<T>,
    spec: KillSpec,
    mode: KillMode,
    frames: u32,
    sends: u32,
    recvs: u32,
    sent_by_tag: [u32; 17],
    recv_by_tag: [u32; 17],
}

impl<T: Transport> FaultTransport<T> {
    /// Wrap `inner`, killing per `spec` with `mode`.
    pub fn new(inner: T, spec: KillSpec, mode: KillMode) -> Self {
        FaultTransport {
            inner: Some(inner),
            spec,
            mode,
            frames: 0,
            sends: 0,
            recvs: 0,
            sent_by_tag: [0; 17],
            recv_by_tag: [0; 17],
        }
    }

    fn dead(&self) -> io::Error {
        io::Error::new(
            io::ErrorKind::BrokenPipe,
            "worker killed by fault injection",
        )
    }

    fn kill(&mut self) {
        match self.mode {
            KillMode::Sever => {
                // Dropping the inner transport closes both directions, as a
                // process death closes its socket.
                self.inner = None;
            }
            KillMode::Exit => std::process::exit(3),
        }
    }

    /// Whether a pre-op trigger (frames:0 style) fires now.
    fn check_pre(&mut self) {
        if self.spec.point == KillPoint::Frames(self.frames) {
            self.kill();
        }
    }

    /// Record a completed frame event and fire a matching trigger.
    fn check_post(&mut self, sent: bool, tag: u8) {
        self.frames += 1;
        let slot = usize::from(tag.min(16));
        let by_tag = if sent {
            self.sends += 1;
            self.sent_by_tag[slot] += 1;
            self.sent_by_tag[slot]
        } else {
            self.recvs += 1;
            self.recv_by_tag[slot] += 1;
            self.recv_by_tag[slot]
        };
        let fired = match self.spec.point {
            KillPoint::Frames(n) => self.frames >= n,
            KillPoint::AfterSend { tag: t, n } => sent && t == tag && by_tag >= n,
            KillPoint::AfterRecv { tag: t, n } => !sent && t == tag && by_tag >= n,
        };
        if fired {
            self.kill();
        }
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.check_pre();
        let Some(inner) = self.inner.as_mut() else {
            return Err(self.dead());
        };
        inner.send(frame)?;
        self.check_post(true, frame.first().copied().unwrap_or(0));
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.check_pre();
        let Some(inner) = self.inner.as_mut() else {
            return Err(self.dead());
        };
        let frame = inner.recv()?;
        self.check_post(false, frame.first().copied().unwrap_or(0));
        if self.inner.is_none() {
            // The trigger severed us on this very frame: the frame was
            // consumed but the worker dies before acting on it — drop it.
            return Err(self.dead());
        }
        Ok(frame)
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        match self.inner.as_mut() {
            Some(inner) => inner.set_recv_timeout(timeout),
            None => Err(self.dead()),
        }
    }
}

impl std::fmt::Display for KillSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.point {
            KillPoint::Frames(n) => write!(f, "frames:{n}"),
            KillPoint::AfterSend { tag, n } => {
                write!(f, "send:{}:{n}", Message::tag_name(tag).to_lowercase())
            }
            KillPoint::AfterRecv { tag, n } => {
                write!(f, "recv:{}:{n}", Message::tag_name(tag).to_lowercase())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback_pair;

    #[test]
    fn parses_all_spec_shapes() {
        assert_eq!(
            KillSpec::parse("frames:7").unwrap().point,
            KillPoint::Frames(7)
        );
        assert_eq!(
            KillSpec::parse("recv:globals").unwrap().point,
            KillPoint::AfterRecv { tag: 4, n: 1 }
        );
        assert_eq!(
            KillSpec::parse("send:Run:3").unwrap().point,
            KillPoint::AfterSend { tag: 11, n: 3 }
        );
        assert_eq!(
            KillSpec::parse("send:LocalClustering").unwrap().point,
            KillPoint::AfterSend { tag: 5, n: 1 }
        );
        for bad in [
            "",
            "frames",
            "frames:x",
            "recv:NoSuchTag",
            "send:run:0",
            "whenever",
        ] {
            assert!(KillSpec::parse(bad).is_err(), "{bad:?} should fail");
        }
        let spec = KillSpec::parse("send:run:2").unwrap();
        assert_eq!(KillSpec::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn sever_after_nth_send_delivers_then_dies() {
        let (a, mut b) = loopback_pair();
        let mut t =
            FaultTransport::new(a, KillSpec::parse("send:hello:2").unwrap(), KillMode::Sever);
        let hello = Message::Hello { version: 1 }.encode();
        t.send(&hello).unwrap();
        t.send(&hello).unwrap(); // delivered, then severed
        assert_eq!(b.recv().unwrap(), hello);
        assert_eq!(b.recv().unwrap(), hello);
        assert!(t.send(&hello).is_err(), "dead after trigger");
        assert!(b.recv().is_err(), "peer sees the closed channel");
    }

    #[test]
    fn sever_on_recv_consumes_the_frame_and_dies() {
        let (a, mut b) = loopback_pair();
        let mut t = FaultTransport::new(
            a,
            KillSpec::parse("recv:shutdown").unwrap(),
            KillMode::Sever,
        );
        b.send(&Message::Pull.encode()).unwrap();
        b.send(&Message::Shutdown.encode()).unwrap();
        assert_eq!(t.recv().unwrap()[0], 10, "pre-trigger frame passes");
        assert!(t.recv().is_err(), "trigger frame is consumed, worker dies");
        assert!(t.recv().is_err());
    }

    #[test]
    fn frames_zero_kills_before_anything_moves() {
        let (a, mut b) = loopback_pair();
        let mut t = FaultTransport::new(a, KillSpec::parse("frames:0").unwrap(), KillMode::Sever);
        assert!(t.send(&[1, 0, 0, 0, 0]).is_err());
        assert!(b.recv().is_err(), "channel closed without a frame");
    }
}
