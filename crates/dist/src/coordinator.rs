//! The coordinator: shard-map owner, barrier merger, emit sequencer —
//! fault-tolerant against worker loss at any protocol point.
//!
//! The coordinator mirrors `tps_core::parallel::ParallelRunner` exactly,
//! with transports where the in-process runner has scoped threads:
//!
//! * the shard map is [`tps_graph::ranged::split_even`] over the edge count
//!   — the same ranges `--threads N` uses, which is the precondition for
//!   bit-identical output;
//! * degree tables and clusterings are merged in shard order with the same
//!   merge functions (`merge_degree_tables`, `merge_clusterings`);
//!   replication state is merged **one vertex-range chunk at a time**
//!   (protocol v3): for each chunk the coordinator ORs every shard's
//!   contribution into one bounded word buffer, encodes the merged chunk
//!   once, broadcasts it, and drops the buffer — it never materialises a
//!   whole `O(|V|·k)` matrix, and no barrier frame can outgrow
//!   [`MAX_FRAME_LEN`](crate::wire::MAX_FRAME_LEN) (OR is commutative,
//!   associative *and idempotent*, so chunk-at-a-time merging — and even
//!   re-merging a recovering worker's identical resends — cannot change
//!   the result);
//! * assignments are pulled back shard-by-shard in shard order as bounded
//!   [`Run`](crate::protocol::Message::Run) batches, so the coordinator
//!   never materialises a full shard's output and the emitted stream equals
//!   the in-process runner's worker-order replay;
//! * the `cap_overshoot` counter is reconstructed from the merged loads
//!   (`tps_core::parallel::overshoot_from_loads`) — provably equal to the
//!   in-process ledger's count for every interleaving.
//!
//! # Fault tolerance
//!
//! Worker loss — a read/write error, a receive timeout
//! ([`FaultPolicy::frame_timeout`]), or an explicit `Abort` — is recovered
//! per shard, not per job:
//!
//! 1. the failed connection is dropped and the shard's **epoch** is bumped,
//!    so any frame a presumed-dead worker manages to deliver later is
//!    recognisably stale and discarded rather than merged twice;
//! 2. the shard is **re-issued** (a [`Reissue`](crate::protocol::Message)
//!    frame) to the first available worker: an idle standby, a worker that
//!    already completed its own shard, or a fresh/reconnecting connection
//!    produced by the [`WorkerSupply`];
//! 3. the replacement is **caught up**: phase-1 state is recomputed from
//!    the source for that range (its `Degrees`/`LocalClustering` resends
//!    are byte-identical by determinism and discarded when the barrier
//!    already passed), and phase-2 state is re-entered by re-broadcasting
//!    the stored encoded `Globals`/`Plan` frames and the merged
//!    replication chunks the barrier has completed so far;
//! 4. a shard that died mid-`Run` stream resumes exactly: the coordinator
//!    skips the records it already emitted (the replacement's replay is
//!    bit-identical, so the skip is a provably safe fast-forward).
//!
//! Every broadcast frame is encoded **once** and the buffer reused across
//! workers and re-issues — the `O(|V|)` barrier messages dominate protocol
//! cost, and the stored encodings double as the recovery state.
//!
//! Output therefore stays bit-identical to `--threads N` no matter which
//! worker dies at which barrier, as long as the retry budget
//! ([`FaultPolicy::max_retries`]) and the supply hold out.

use std::collections::VecDeque;
use std::io;

use tps_clustering::merge::merge_clusterings;
use tps_clustering::model::Clustering;
use tps_core::parallel::{
    cluster_placement, merge_degree_tables, overshoot_from_loads, record_clustering_counters,
    record_phase2_counters, resolve_volume_cap,
};
use tps_core::partitioner::{PartitionParams, RunReport};
use tps_core::sink::AssignmentSink;
use tps_core::two_phase::{AssignCounters, TwoPhaseConfig};
use tps_graph::degree::DegreeTable;
use tps_graph::ranged::split_even;
use tps_graph::types::GraphInfo;

use crate::protocol::{InputDescriptor, Job, Message, ReplChunks, PROTOCOL_VERSION};
use crate::transport::{is_timeout, recv_msg, send_frame, send_msg, Transport};
use crate::wire::corrupt;

/// Shard re-issues after a worker failure (each bumps the shard's epoch).
static DIST_EPOCH_REISSUES: tps_obs::Counter = tps_obs::Counter::new("dist.epoch.reissues");
/// Failed workers that reconnected with `Rejoin` after an `Abort`.
static DIST_WORKER_REJOINS: tps_obs::Counter = tps_obs::Counter::new("dist.worker.rejoins");

/// How the coordinator reacts to worker failure. The default is the
/// pre-v2 fail-fast behaviour: no retries, no frame timeout.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPolicy {
    /// Total shard re-issues allowed across the job; `0` fails the job on
    /// the first worker loss.
    pub max_retries: u32,
    /// Bound on how long one `recv` from a worker may block before the
    /// worker is presumed dead. `None` waits forever — a *hung* (rather
    /// than dead) worker then hangs the job, so deployments should set it
    /// generously above the slowest expected phase.
    ///
    /// Detection is receive-side only: `std::net::TcpStream` exposes no
    /// write timeout, so a coordinator *send* to a hung worker can still
    /// block once the kernel send buffer fills (an `O(|V|)` broadcast to a
    /// SIGSTOPped peer). Dead peers fail promptly either way; a truly hung
    /// peer on the send path is eventually surfaced by TCP's own
    /// retransmission timeout rather than this bound.
    pub frame_timeout: Option<std::time::Duration>,
}

impl FaultPolicy {
    /// A policy allowing `max_retries` re-issues, with no frame timeout.
    pub fn with_retries(max_retries: u32) -> Self {
        FaultPolicy {
            max_retries,
            ..Default::default()
        }
    }
}

/// Produces replacement worker connections mid-run: freshly accepted
/// sockets (reconnecting or late-joining workers), respawned local worker
/// processes — whatever the deployment can offer. The coordinator
/// handshakes (`Hello`/`Rejoin`) every connection the supply returns.
pub trait WorkerSupply {
    /// Produce one replacement connection, or `Ok(None)` if none can be
    /// provided (the job then fails if no idle worker remains).
    fn replacement(&mut self) -> io::Result<Option<Box<dyn Transport>>>;
}

/// A supply that never produces replacements — retries can then only use
/// standbys passed up-front and workers that already completed their shard.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoReplacements;

impl WorkerSupply for NoReplacements {
    fn replacement(&mut self) -> io::Result<Option<Box<dyn Transport>>> {
        Ok(None)
    }
}

/// The per-shard protocol step the coordinator is about to perform; every
/// step strictly before it (in [`Stage::rank`] order) has completed for
/// that shard (the global barrier loops guarantee this), which is exactly
/// what a replacement worker must be caught up through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    /// Receive the shard's degree table.
    Degrees,
    /// Send the merged-degrees frame.
    Globals,
    /// Receive the shard's local clustering.
    Clustering,
    /// Send the merged plan frame.
    Plan,
    /// Receive the shard's replication chunk `c` (pre-partitioning, N > 1).
    Replication(u32),
    /// Send the merged replication chunk `c` (pre-partitioning, N > 1).
    MergedRepl(u32),
    /// Receive the shard's phase-2 summary.
    Done,
    /// Pull the shard's assignment runs.
    Emit,
}

impl Stage {
    /// Protocol-order rank. The chunked replication rounds *interleave*
    /// (`Replication(0) < MergedRepl(0) < Replication(1) < …`), so a
    /// derived enum ordering — all `Replication` before all `MergedRepl` —
    /// would mis-order them; catch-up depends on this rank.
    fn rank(self) -> (u8, u64) {
        match self {
            Stage::Degrees => (0, 0),
            Stage::Globals => (1, 0),
            Stage::Clustering => (2, 0),
            Stage::Plan => (3, 0),
            Stage::Replication(c) => (4, 2 * c as u64),
            Stage::MergedRepl(c) => (4, 2 * c as u64 + 1),
            Stage::Done => (5, 0),
            Stage::Emit => (6, 0),
        }
    }
}

impl PartialOrd for Stage {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Stage {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

/// An error during one shard step, classified for the retry loop.
enum StageErr {
    /// The worker (or its connection) failed — drop it, re-issue the shard.
    Worker(io::Error),
    /// A coordinator-side failure (e.g. the sink) — fail the job.
    Fatal(io::Error),
}

impl StageErr {
    fn worker<E: Into<Box<dyn std::error::Error + Send + Sync>>>(e: E) -> StageErr {
        StageErr::Worker(corrupt(e))
    }
}

/// What a completed receive step yields back to the barrier loops.
enum StageOut {
    None,
    Degrees(DegreeTable),
    Clustering(Clustering),
}

struct ShardState {
    epoch: u32,
    /// Records of this shard already written to the sink (resume point for
    /// a mid-`Run`-stream re-issue).
    emitted: u64,
    done: Option<(AssignCounters, Vec<u64>, u64)>,
}

/// Run one distributed partitioning job over `shards` edge ranges, starting
/// from the given connected transports (the first `shards` become the
/// initial workers; extras are standbys), emitting every assignment into
/// `sink` in shard order.
///
/// `info` must describe the same graph every worker will open via `input`.
/// On worker failure the job recovers per `policy`, drawing replacement
/// connections from `supply` when no idle worker is available. On job
/// failure the coordinator best-effort broadcasts an `Abort` so workers
/// exit instead of blocking on a barrier.
#[allow(clippy::too_many_arguments)] // one call site per deployment; a builder would obscure the protocol inputs
pub fn run_coordinator(
    config: &TwoPhaseConfig,
    params: &PartitionParams,
    info: GraphInfo,
    input: &InputDescriptor,
    shards: usize,
    transports: Vec<Box<dyn Transport>>,
    supply: &mut dyn WorkerSupply,
    policy: &FaultPolicy,
    mem_budget_mb: u64,
    sink: &mut dyn AssignmentSink,
) -> io::Result<RunReport> {
    assert!(shards >= 1, "need at least one shard");
    let mut co = Coordinator {
        config: *config,
        k: params.k,
        alpha: params.alpha,
        mem_budget_mb,
        info,
        input: input.clone(),
        policy: *policy,
        supply,
        n: shards,
        ranges: Vec::new(),
        conns: (0..shards).map(|_| None).collect(),
        idle: VecDeque::new(),
        pending: transports.into_iter().collect(),
        states: (0..shards)
            .map(|_| ShardState {
                epoch: 0,
                emitted: 0,
                done: None,
            })
            .collect(),
        retries: 0,
        rejoined: 0,
        last_handshake_err: None,
        globals_frame: None,
        plan_frame: None,
        repl_chunks: ReplChunks::new(info.num_vertices, params.k),
        repl_acc: Vec::new(),
        merged_repl_frames: Vec::new(),
    };
    let result = co.drive(sink);
    if let Err(e) = &result {
        co.abort_all(e);
    }
    result
}

struct Coordinator<'a> {
    config: TwoPhaseConfig,
    k: u32,
    alpha: f64,
    /// `--mem-budget-mb` forwarded to every `Job` (0 = unbudgeted).
    mem_budget_mb: u64,
    info: GraphInfo,
    input: InputDescriptor,
    policy: FaultPolicy,
    supply: &'a mut dyn WorkerSupply,
    n: usize,
    ranges: Vec<(u64, u64)>,
    /// The connection currently serving each shard.
    conns: Vec<Option<Box<dyn Transport>>>,
    /// Handshaken connections with no current assignment (standbys and
    /// workers whose shard completed).
    idle: VecDeque<Box<dyn Transport>>,
    /// Connections not yet handshaken (the initial transports).
    pending: VecDeque<Box<dyn Transport>>,
    states: Vec<ShardState>,
    retries: u32,
    rejoined: u64,
    /// The most recent up-front handshake failure — context for a later
    /// "no replacement available" error, not a spent retry.
    last_handshake_err: Option<io::Error>,
    /// Broadcast frames, encoded once at their barrier and reused for every
    /// worker and every catch-up (ROADMAP "transport efficiency").
    globals_frame: Option<Vec<u8>>,
    plan_frame: Option<Vec<u8>>,
    /// The deterministic vertex-range chunking of the replication barrier.
    repl_chunks: ReplChunks,
    /// The chunk currently being merged: one bounded word buffer, ORed
    /// into by every shard's `Replication(c)` stage, then encoded and
    /// dropped — the coordinator never holds a whole matrix.
    repl_acc: Vec<u64>,
    /// Merged replication chunks, encoded once per completed round and
    /// reused for every worker and every catch-up (zero-word-run encoded,
    /// so this recovery state is small on sparse graphs).
    merged_repl_frames: Vec<Vec<u8>>,
}

impl Coordinator<'_> {
    fn drive(&mut self, sink: &mut dyn AssignmentSink) -> io::Result<RunReport> {
        let mut report = RunReport::default();

        // Handshake every up-front connection before any work is assigned.
        // A connection that fails its handshake is dropped without touching
        // the retry budget: it never held a shard, and a dead *spare* must
        // not fail a job whose shard workers are all healthy. If the loss
        // leaves a shard unservable, the assignment loop below surfaces it
        // (with this failure as context).
        while let Some(mut t) = self.pending.pop_front() {
            match self.handshake(&mut *t) {
                Ok(()) => self.idle.push_back(t),
                Err(e) => {
                    drop_failed(t, &e);
                    self.last_handshake_err = Some(e);
                }
            }
        }

        if self.info.num_edges == 0 {
            self.shutdown_all();
            return Ok(report);
        }

        // Shard map: the same even edge-index split as `--threads N`. Every
        // shard gets its job eagerly so workers compute phase 0 in parallel.
        self.ranges = split_even(self.info.num_edges, self.n);
        for s in 0..self.n {
            let t = self.acquire(s, Stage::Degrees)?;
            self.conns[s] = Some(t);
        }

        // Phase 0: merge per-shard degree tables in shard order.
        let s0 = tps_obs::span("degree");
        let mut tables: Vec<DegreeTable> = Vec::with_capacity(self.n);
        for s in 0..self.n {
            match self.advance(s, Stage::Degrees, sink)? {
                StageOut::Degrees(d) => tables.push(d),
                _ => unreachable!("Degrees stage yields a degree table"),
            }
        }
        let degrees = merge_degree_tables(tables);
        report.phases.record("degree", s0.end());
        let volume_cap = resolve_volume_cap(&self.config, self.k, &degrees);
        self.globals_frame = Some(
            Message::Globals {
                degrees: degrees.as_slice().to_vec(),
                volume_cap,
            }
            .encode(),
        );
        for s in 0..self.n {
            self.advance(s, Stage::Globals, sink)?;
        }

        // Phase 1: merge per-shard clusterings (union-by-volume, shard order).
        let s1 = tps_obs::span("clustering");
        let mut locals: Vec<Clustering> = Vec::with_capacity(self.n);
        for s in 0..self.n {
            match self.advance(s, Stage::Clustering, sink)? {
                StageOut::Clustering(c) => locals.push(c),
                _ => unreachable!("Clustering stage yields a clustering"),
            }
        }
        let clustering = merge_clusterings(&locals, &degrees);
        drop(locals);
        drop(degrees);
        report.phases.record("clustering", s1.end());

        // Phase 2 step 1: placement, computed once here, broadcast to shards.
        let s2 = tps_obs::span("mapping");
        let placement = cluster_placement(&self.config, &clustering, self.k);
        report.phases.record("mapping", s2.end());
        self.plan_frame = Some(
            Message::Plan {
                clustering: clustering.clone(),
                c2p: placement.c2p().to_vec(),
            }
            .encode(),
        );
        for s in 0..self.n {
            self.advance(s, Stage::Plan, sink)?;
        }

        // Phase 2 step 2 barrier: OR the replication state one vertex-range
        // chunk at a time (skipped exactly when the in-process runner skips
        // its barrier). Each round merges every shard's chunk into one
        // bounded buffer, encodes the merged chunk once, broadcasts it, and
        // drops the buffer — `O(chunk)` live merge state, never `O(|V|·k)`.
        let s3 = tps_obs::span("prepartition");
        if self.replication_active() {
            for c in 0..self.repl_chunks.count() {
                self.repl_acc = vec![0u64; self.repl_chunks.words_in_chunk(c)];
                for s in 0..self.n {
                    self.advance(s, Stage::Replication(c), sink)?;
                }
                let words = std::mem::take(&mut self.repl_acc);
                self.merged_repl_frames
                    .push(Message::MergedReplicationChunk { chunk: c, words }.encode());
                for s in 0..self.n {
                    self.advance(s, Stage::MergedRepl(c), sink)?;
                }
            }
        }
        report.phases.record("prepartition", s3.end());

        // Phase 2 step 3: collect shard summaries.
        let s4 = tps_obs::span("partition");
        for s in 0..self.n {
            self.advance(s, Stage::Done, sink)?;
        }
        let mut counters = AssignCounters::default();
        let mut loads = vec![0u64; self.k as usize];
        let mut assigned_total = 0u64;
        for state in &self.states {
            let (c, l, assigned) = state.done.as_ref().expect("done barrier completed");
            counters.merge(c);
            for (acc, v) in loads.iter_mut().zip(l) {
                *acc += v;
            }
            assigned_total += assigned;
        }
        report.phases.record("partition", s4.end());

        // Emit: pull each shard's runs in shard order — bounded batches, one
        // worker at a time, so coordinator memory stays O(RUN_BATCH_EDGES).
        let s5 = tps_obs::span("emit");
        for s in 0..self.n {
            self.advance(s, Stage::Emit, sink)?;
            // This shard is complete; its worker becomes a standby for any
            // later shard's re-issue.
            if let Some(t) = self.conns[s].take() {
                self.idle.push_back(t);
            }
        }
        report.phases.record("emit", s5.end());
        self.shutdown_all();

        let emitted: u64 = self.states.iter().map(|s| s.emitted).sum();
        if emitted != self.info.num_edges || assigned_total != self.info.num_edges {
            return Err(corrupt(format!(
                "assignment count mismatch: |E| = {}, shards reported {assigned_total}, emitted {emitted}",
                self.info.num_edges
            )));
        }

        report.count("workers", self.n as u64);
        report.count("worker_retries", self.retries as u64);
        report.count("workers_rejoined", self.rejoined);
        let overshoot = overshoot_from_loads(&loads, self.k, self.info.num_edges, self.alpha);
        record_phase2_counters(&mut report, &counters, overshoot);
        record_clustering_counters(&mut report, &clustering, volume_cap);
        Ok(report)
    }

    fn replication_active(&self) -> bool {
        self.config.prepartitioning && self.n > 1
    }

    /// Publish this shard's protocol position (and fleet liveness) as
    /// gauges for the `--metrics-addr` scrape endpoint. Called at stage
    /// transitions only — barrier cost dwarfs the gauge-map updates.
    fn publish_progress(&self, s: usize, stage: Stage) {
        if !tps_obs::metrics_enabled() {
            return;
        }
        let (major, minor) = stage.rank();
        tps_obs::set_gauge(&format!("dist.shard.{s}.stage"), major as f64);
        tps_obs::set_gauge(&format!("dist.shard.{s}.stage.step"), minor as f64);
        tps_obs::set_gauge(
            &format!("dist.shard.{s}.epoch"),
            self.states[s].epoch as f64,
        );
        tps_obs::set_gauge(
            &format!("dist.shard.{s}.emitted"),
            self.states[s].emitted as f64,
        );
        let live = self.conns.iter().filter(|c| c.is_some()).count();
        tps_obs::set_gauge("dist.workers.live", live as f64);
        tps_obs::set_gauge("dist.workers.idle", self.idle.len() as f64);
        tps_obs::set_gauge("dist.retries", self.retries as f64);
        tps_obs::set_gauge("dist.shards", self.n as f64);
    }

    /// Perform `stage` for shard `s`, re-issuing the shard to a replacement
    /// worker on failure until it succeeds or the retry budget is spent.
    fn advance(
        &mut self,
        s: usize,
        stage: Stage,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<StageOut> {
        self.publish_progress(s, stage);
        loop {
            let mut t = match self.conns[s].take() {
                Some(t) => t,
                None => self.acquire(s, stage)?,
            };
            match self.do_stage(&mut *t, s, stage, sink) {
                Ok(out) => {
                    self.conns[s] = Some(t);
                    return Ok(out);
                }
                Err(StageErr::Worker(e)) => {
                    // Tell a still-alive worker why it is being abandoned,
                    // then close the connection: late frames can't be read,
                    // and the next issuance's epoch marks any that already
                    // arrived as stale.
                    drop_failed(t, &e);
                    self.states[s].epoch += 1;
                    DIST_EPOCH_REISSUES.incr();
                    tps_obs::instant_with("dist.fault.reissue", format!("shard {s} {stage:?}"));
                    self.note_failure(&format!("shard {s} {stage:?}"), e)?;
                }
                Err(StageErr::Fatal(e)) => return Err(e),
            }
        }
    }

    /// Count one worker failure against the retry budget.
    fn note_failure(&mut self, what: &str, e: io::Error) -> io::Result<()> {
        self.retries += 1;
        if tps_obs::metrics_enabled() {
            tps_obs::set_gauge("dist.retries", self.retries as f64);
        }
        if is_timeout(&e) {
            tps_obs::instant_with("dist.fault.timeout", format!("{what}: {e}"));
        }
        tps_obs::instant_with("dist.fault.retry", format!("{what}: {e}"));
        if self.retries > self.policy.max_retries {
            return Err(io::Error::new(
                e.kind(),
                format!(
                    "worker failed during {what}; retry budget exhausted \
                     ({} allowed): {e}",
                    self.policy.max_retries
                ),
            ));
        }
        Ok(())
    }

    /// Produce a caught-up connection for shard `s` about to run `stage`:
    /// an idle worker if one exists, else a supply replacement.
    fn acquire(&mut self, s: usize, stage: Stage) -> io::Result<Box<dyn Transport>> {
        loop {
            let mut t = match self.idle.pop_front() {
                Some(t) => t,
                None => match self.supply.replacement()? {
                    Some(mut t) => {
                        if let Err(e) = self.handshake(&mut *t) {
                            drop_failed(t, &e);
                            self.note_failure("replacement handshake", e)?;
                            continue;
                        }
                        t
                    }
                    None => {
                        // Surface the handshake failure (and its kind) that
                        // cost us the connection, if that is why we are short.
                        let (kind, context) = match &self.last_handshake_err {
                            Some(e) => (
                                e.kind(),
                                format!(" (a connection was dropped at handshake: {e})"),
                            ),
                            None => (io::ErrorKind::Other, String::new()),
                        };
                        return Err(io::Error::new(
                            kind,
                            format!(
                                "shard {s} has no worker and no replacement is available{context}"
                            ),
                        ));
                    }
                },
            };
            match self.catch_up(&mut *t, s, stage) {
                Ok(()) => return Ok(t),
                Err(e) => {
                    drop_failed(t, &e);
                    self.states[s].epoch += 1;
                    DIST_EPOCH_REISSUES.incr();
                    tps_obs::instant_with("dist.fault.reissue", format!("shard {s} catch-up"));
                    self.note_failure(&format!("shard {s} catch-up"), e)?;
                }
            }
        }
    }

    /// Validate a connection's `Hello`/`Rejoin` and apply the frame timeout.
    fn handshake(&mut self, t: &mut dyn Transport) -> io::Result<()> {
        t.set_recv_timeout(self.policy.frame_timeout)?;
        match recv_msg(t)? {
            Message::Hello { version } | Message::Rejoin { version }
                if version != PROTOCOL_VERSION =>
            {
                Err(corrupt(format!(
                    "worker speaks protocol {version}, coordinator {PROTOCOL_VERSION}"
                )))
            }
            Message::Hello { .. } => Ok(()),
            Message::Rejoin { .. } => {
                self.rejoined += 1;
                DIST_WORKER_REJOINS.incr();
                tps_obs::instant("dist.fault.rejoin");
                Ok(())
            }
            Message::Abort { reason } => Err(io::Error::other(format!(
                "worker aborted during handshake: {reason}"
            ))),
            other => Err(corrupt(format!(
                "handshake: unexpected {} message",
                Message::tag_name(other.tag())
            ))),
        }
    }

    /// The job descriptor for shard `s` at its current epoch.
    fn job_for(&self, s: usize) -> Job {
        Job {
            worker_index: s as u32,
            num_workers: self.n as u32,
            epoch: self.states[s].epoch,
            k: self.k,
            alpha: self.alpha,
            config: self.config,
            num_vertices: self.info.num_vertices,
            num_edges: self.info.num_edges,
            shard: self.ranges[s],
            input: self.input.clone(),
            trace: tps_obs::enabled(),
            mem_budget_mb: self.mem_budget_mb,
        }
    }

    /// Issue shard `s` to a fresh connection and replay every step strictly
    /// before `target` from the stored barrier state: contribution resends
    /// are received and discarded (they are bit-identical to the merged
    /// originals by determinism), broadcasts are replayed from the encoded
    /// frames. The worker computes phase 1 from the source and re-enters
    /// phase 2 from the re-broadcast merged state.
    fn catch_up(&mut self, t: &mut dyn Transport, s: usize, target: Stage) -> io::Result<()> {
        let job = self.job_for(s);
        let assignment = if job.epoch == 0 {
            Message::Job(job)
        } else {
            Message::Reissue(job)
        };
        send_msg(t, &assignment)?;
        if target <= Stage::Degrees {
            return Ok(());
        }
        self.replay_recv(t, s, 3, "catch-up degrees")?;
        if target <= Stage::Globals {
            return Ok(());
        }
        send_frame(t, self.globals_frame.as_ref().expect("past degree barrier"))?;
        if target <= Stage::Clustering {
            return Ok(());
        }
        self.replay_recv(t, s, 5, "catch-up clustering")?;
        if target <= Stage::Plan {
            return Ok(());
        }
        send_frame(
            t,
            self.plan_frame.as_ref().expect("past clustering barrier"),
        )?;
        if self.replication_active() {
            // Replay the completed chunk rounds: the replacement resends
            // every chunk eagerly (bit-identical by determinism), so the
            // already-merged ones are consumed and discarded, and the
            // stored merged frames re-enter it into the barrier exactly
            // where the round loop stands.
            for c in 0..self.repl_chunks.count() {
                if target <= Stage::Replication(c) {
                    return Ok(());
                }
                self.replay_recv_chunk(t, s, c)?;
                if target <= Stage::MergedRepl(c) {
                    return Ok(());
                }
                send_frame(t, &self.merged_repl_frames[c as usize])?;
            }
        }
        if target <= Stage::Done {
            return Ok(());
        }
        self.replay_recv(t, s, 9, "catch-up summary")?;
        Ok(())
    }

    /// Receive and discard a replayed replication chunk whose round already
    /// completed, insisting on the expected chunk index and current epoch.
    fn replay_recv_chunk(&self, t: &mut dyn Transport, s: usize, c: u32) -> io::Result<()> {
        match self.recv_current(t, s, "catch-up replication")? {
            Message::ReplicationChunk { chunk, .. } if chunk == c => Ok(()),
            Message::ReplicationChunk { chunk, .. } => Err(corrupt(format!(
                "catch-up replication: chunk {chunk} arrived out of order (expected {c})"
            ))),
            other => Err(corrupt(format!(
                "catch-up replication: expected ReplicationChunk, got {}",
                Message::tag_name(other.tag())
            ))),
        }
    }

    /// Receive and discard a replayed contribution whose barrier already
    /// passed, insisting on the expected tag and current epoch.
    fn replay_recv(&self, t: &mut dyn Transport, s: usize, tag: u8, phase: &str) -> io::Result<()> {
        let msg = self.recv_current(t, s, phase)?;
        if msg.tag() != tag {
            return Err(corrupt(format!(
                "{phase}: expected {}, got {}",
                Message::tag_name(tag),
                Message::tag_name(msg.tag())
            )));
        }
        Ok(())
    }

    /// Receive the next non-stale frame for shard `s`: frames tagged with
    /// an older epoch (a presumed-dead worker's leftovers) are discarded;
    /// a different shard or a future epoch is a protocol violation; an
    /// `Abort` is a worker failure.
    fn recv_current(&self, t: &mut dyn Transport, s: usize, phase: &str) -> io::Result<Message> {
        let epoch = self.states[s].epoch;
        loop {
            let msg = recv_msg(t)
                .map_err(|e| io::Error::new(e.kind(), format!("shard {s}, {phase}: {e}")))?;
            if let Message::Abort { reason } = &msg {
                return Err(io::Error::other(format!(
                    "worker aborted shard {s} during {phase}: {reason}"
                )));
            }
            match msg.shard_epoch() {
                Some((ms, me)) if ms == s as u32 && me == epoch => return Ok(msg),
                Some((ms, me)) if ms == s as u32 && me < epoch => {
                    // Stale frame from a previous issuance of this shard:
                    // discard, never merge twice.
                    tps_obs::instant_with(
                        "dist.fault.stale_frame",
                        format!("shard {s}, {phase}: epoch {me} < {epoch}"),
                    );
                    continue;
                }
                Some((ms, me)) => {
                    return Err(corrupt(format!(
                        "{phase}: frame for shard {ms} epoch {me}, expected shard {s} epoch {epoch}"
                    )))
                }
                None => return Ok(msg),
            }
        }
    }

    /// One protocol step for shard `s` on transport `t` (which is detached
    /// from `self.conns` while this runs).
    fn do_stage(
        &mut self,
        t: &mut dyn Transport,
        s: usize,
        stage: Stage,
        sink: &mut dyn AssignmentSink,
    ) -> Result<StageOut, StageErr> {
        match stage {
            Stage::Degrees => match self
                .recv_current(t, s, "degree")
                .map_err(StageErr::Worker)?
            {
                Message::Degrees { degrees, .. } => {
                    if degrees.len() as u64 != self.info.num_vertices {
                        return Err(StageErr::worker(format!(
                            "shard {s} sent degrees for {} vertices, expected {}",
                            degrees.len(),
                            self.info.num_vertices
                        )));
                    }
                    Ok(StageOut::Degrees(DegreeTable::from_vec(degrees)))
                }
                other => Err(unexpected(s, "degree", &other)),
            },
            Stage::Globals => {
                send_frame(
                    t,
                    self.globals_frame.as_ref().expect("encoded at the barrier"),
                )
                .map_err(StageErr::Worker)?;
                Ok(StageOut::None)
            }
            Stage::Clustering => {
                match self
                    .recv_current(t, s, "clustering")
                    .map_err(StageErr::Worker)?
                {
                    Message::LocalClustering { clustering, .. } => {
                        if clustering.num_vertices() != self.info.num_vertices {
                            return Err(StageErr::worker(format!(
                                "shard {s} clustered {} vertices, expected {}",
                                clustering.num_vertices(),
                                self.info.num_vertices
                            )));
                        }
                        Ok(StageOut::Clustering(clustering))
                    }
                    other => Err(unexpected(s, "clustering", &other)),
                }
            }
            Stage::Plan => {
                send_frame(t, self.plan_frame.as_ref().expect("encoded at the barrier"))
                    .map_err(StageErr::Worker)?;
                Ok(StageOut::None)
            }
            Stage::Replication(c) => {
                match self
                    .recv_current(t, s, "prepartition")
                    .map_err(StageErr::Worker)?
                {
                    Message::ReplicationChunk { chunk, words, .. } => {
                        if chunk != c {
                            return Err(StageErr::worker(format!(
                                "shard {s} sent replication chunk {chunk} out of order \
                                 (expected {c})"
                            )));
                        }
                        if words.len() != self.repl_acc.len() {
                            return Err(StageErr::worker(format!(
                                "shard {s} sent {} words for replication chunk {c}, expected {}",
                                words.len(),
                                self.repl_acc.len()
                            )));
                        }
                        // Reject malformed rows *before* merging: the
                        // accumulator is immutable once encoded, so one
                        // poisoned contribution (e.g. stray bits beyond
                        // partition k−1) would otherwise fail every
                        // worker's install of the merged chunk (and every
                        // catch-up replay of it) — a whole-job failure
                        // where dropping the one faulty worker suffices.
                        if let Err(e) = tps_metrics::bitmatrix::validate_packed_rows(&words, self.k)
                        {
                            return Err(StageErr::worker(format!(
                                "shard {s}, replication chunk {c}: {e}"
                            )));
                        }
                        // OR into the round's accumulator. Idempotent, so a
                        // recovering worker's identical re-send of an
                        // already-merged chunk cannot change the result.
                        for (acc, &w) in self.repl_acc.iter_mut().zip(&words) {
                            *acc |= w;
                        }
                        Ok(StageOut::None)
                    }
                    other => Err(unexpected(s, "prepartition", &other)),
                }
            }
            Stage::MergedRepl(c) => {
                send_frame(t, &self.merged_repl_frames[c as usize]).map_err(StageErr::Worker)?;
                Ok(StageOut::None)
            }
            Stage::Done => match self
                .recv_current(t, s, "partition")
                .map_err(StageErr::Worker)?
            {
                Message::ShardDone {
                    counters,
                    loads,
                    assigned,
                    trace,
                    counter_snap,
                    ..
                } => {
                    if loads.len() != self.k as usize {
                        return Err(StageErr::worker(format!(
                            "shard {s} reported loads for {} partitions, expected {}",
                            loads.len(),
                            self.k
                        )));
                    }
                    // Accepted exactly once per shard: replayed frames are
                    // consumed by catch_up, so per-shard spans never double.
                    if !trace.is_empty() {
                        tps_obs::record_remote(s as u32 + 1, trace);
                    }
                    if !counter_snap.is_empty() {
                        tps_obs::record_remote_counters(s as u32 + 1, counter_snap);
                    }
                    self.states[s].done = Some((counters, loads, assigned));
                    Ok(StageOut::None)
                }
                other => Err(unexpected(s, "partition", &other)),
            },
            Stage::Emit => {
                self.emit_shard(t, s, sink)?;
                Ok(StageOut::None)
            }
        }
    }

    /// Pull shard `s`'s runs, skipping the `emitted` records a previous
    /// issuance already delivered (the replay is bit-identical, so the skip
    /// resumes the stream exactly).
    fn emit_shard(
        &mut self,
        t: &mut dyn Transport,
        s: usize,
        sink: &mut dyn AssignmentSink,
    ) -> Result<(), StageErr> {
        send_msg(t, &Message::Pull).map_err(StageErr::Worker)?;
        let mut skip = self.states[s].emitted;
        loop {
            match self.recv_current(t, s, "emit").map_err(StageErr::Worker)? {
                Message::Run { batch, .. } => {
                    for (edge, p) in batch {
                        if skip > 0 {
                            skip -= 1;
                            continue;
                        }
                        if p >= self.k {
                            return Err(StageErr::worker(format!(
                                "shard {s} assigned partition {p} (k = {})",
                                self.k
                            )));
                        }
                        sink.assign(edge, p).map_err(StageErr::Fatal)?;
                        self.states[s].emitted += 1;
                    }
                }
                Message::RunsDone { .. } => {
                    if skip > 0 {
                        return Err(StageErr::worker(format!(
                            "shard {s} replayed {skip} fewer records than previously emitted"
                        )));
                    }
                    return Ok(());
                }
                other => return Err(unexpected(s, "emit", &other)),
            }
        }
    }

    /// Best-effort send of one pre-encoded frame to every live connection
    /// (assigned, idle, and never-handshaken); failures are ignored.
    fn broadcast_best_effort(&mut self, frame: &[u8]) {
        for t in self
            .conns
            .iter_mut()
            .flatten()
            .chain(&mut self.idle)
            .chain(&mut self.pending)
        {
            let _ = t.send(frame);
        }
    }

    /// `Shutdown` everyone — the job is over.
    fn shutdown_all(&mut self) {
        self.broadcast_best_effort(&Message::Shutdown.encode());
    }

    /// `Abort` broadcast after a job failure, so workers fail their current
    /// barrier instead of hanging.
    fn abort_all(&mut self, e: &io::Error) {
        self.broadcast_best_effort(
            &Message::Abort {
                reason: e.to_string(),
            }
            .encode(),
        );
    }
}

fn unexpected(s: usize, phase: &str, got: &Message) -> StageErr {
    StageErr::worker(format!(
        "shard {s}, {phase}: unexpected {} message",
        Message::tag_name(got.tag())
    ))
}

/// Best-effort `Abort` to a connection being abandoned, so a still-alive
/// worker learns why (and, if it reconnects, does so with `Rejoin`); a
/// genuinely dead connection just fails the send silently.
fn drop_failed(mut t: Box<dyn Transport>, e: &io::Error) {
    let _ = t.send(
        &Message::Abort {
            reason: e.to_string(),
        }
        .encode(),
    );
}
