//! The coordinator: shard-map owner, barrier merger, emit sequencer.
//!
//! The coordinator mirrors `tps_core::parallel::ParallelRunner` exactly,
//! with transports where the in-process runner has scoped threads:
//!
//! * the shard map is [`tps_graph::ranged::split_even`] over the edge count
//!   — the same ranges `--threads N` uses, which is the precondition for
//!   bit-identical output;
//! * degree tables, clusterings and replication shards are merged in worker
//!   order with the same merge functions (`merge_degree_tables`,
//!   `merge_clusterings`, `ReplicationMatrix::merge_from`);
//! * assignments are pulled back worker-by-worker in shard order as bounded
//!   [`Run`](crate::protocol::Message::Run) batches, so the coordinator
//!   never materialises a full shard's output and the emitted stream equals
//!   the in-process runner's worker-order replay;
//! * the `cap_overshoot` counter is reconstructed from the merged loads
//!   (`tps_core::parallel::overshoot_from_loads`) — provably equal to the
//!   in-process ledger's count for every interleaving.

use std::io;
use std::time::Instant;

use tps_clustering::merge::merge_clusterings;
use tps_core::parallel::{
    cluster_placement, merge_degree_tables, overshoot_from_loads, record_clustering_counters,
    record_phase2_counters, resolve_volume_cap,
};
use tps_core::partitioner::{PartitionParams, RunReport};
use tps_core::sink::AssignmentSink;
use tps_core::two_phase::{AssignCounters, TwoPhaseConfig};
use tps_graph::degree::DegreeTable;
use tps_graph::ranged::split_even;
use tps_graph::types::GraphInfo;
use tps_metrics::bitmatrix::ReplicationMatrix;

use crate::protocol::{InputDescriptor, Job, Message, PROTOCOL_VERSION};
use crate::transport::{recv_msg, send_msg, Transport};
use crate::wire::corrupt;

/// Receive a message from worker `w`, turning `Abort` into an error.
fn expect(t: &mut dyn Transport, w: usize, phase: &str) -> io::Result<Message> {
    match recv_msg(t) {
        Ok(Message::Abort { reason }) => Err(io::Error::other(format!(
            "worker {w} aborted during {phase}: {reason}"
        ))),
        Ok(m) => Ok(m),
        Err(e) => Err(io::Error::new(
            e.kind(),
            format!("worker {w}, {phase}: {e}"),
        )),
    }
}

fn protocol_err(w: usize, phase: &str, got: &Message) -> io::Error {
    corrupt(format!(
        "worker {w}, {phase}: unexpected {} message",
        Message::tag_name(got.tag())
    ))
}

/// Run one distributed partitioning job over `workers` connected
/// transports, emitting every assignment into `sink` in shard order.
///
/// `info` must describe the same graph every worker will open via `input`.
/// On error the coordinator best-effort broadcasts an `Abort` so workers
/// exit instead of blocking on a barrier.
pub fn run_coordinator(
    config: &TwoPhaseConfig,
    params: &PartitionParams,
    info: GraphInfo,
    input: &InputDescriptor,
    workers: &mut [Box<dyn Transport + '_>],
    sink: &mut dyn AssignmentSink,
) -> io::Result<RunReport> {
    let result = drive(config, params, info, input, workers, sink);
    if let Err(e) = &result {
        let abort = Message::Abort {
            reason: e.to_string(),
        };
        for t in workers.iter_mut() {
            let _ = send_msg(&mut **t, &abort);
        }
    }
    result
}

fn drive(
    config: &TwoPhaseConfig,
    params: &PartitionParams,
    info: GraphInfo,
    input: &InputDescriptor,
    workers: &mut [Box<dyn Transport + '_>],
    sink: &mut dyn AssignmentSink,
) -> io::Result<RunReport> {
    let n = workers.len();
    assert!(n >= 1, "need at least one worker transport");
    let mut report = RunReport::default();

    // Handshake: every worker announces itself before any work is assigned.
    for (w, t) in workers.iter_mut().enumerate() {
        match expect(&mut **t, w, "handshake")? {
            Message::Hello { version } if version == PROTOCOL_VERSION => {}
            Message::Hello { version } => {
                return Err(corrupt(format!(
                    "worker {w} speaks protocol {version}, coordinator {PROTOCOL_VERSION}"
                )));
            }
            other => return Err(protocol_err(w, "handshake", &other)),
        }
    }

    if info.num_edges == 0 {
        for t in workers.iter_mut() {
            send_msg(&mut **t, &Message::Shutdown)?;
        }
        return Ok(report);
    }

    // Shard map: the same even edge-index split as `--threads N`.
    let ranges = split_even(info.num_edges, n);
    for (w, t) in workers.iter_mut().enumerate() {
        send_msg(
            &mut **t,
            &Message::Job(Job {
                worker_index: w as u32,
                num_workers: n as u32,
                k: params.k,
                alpha: params.alpha,
                config: *config,
                num_vertices: info.num_vertices,
                num_edges: info.num_edges,
                shard: ranges[w],
                input: input.clone(),
            }),
        )?;
    }

    // Phase 0: merge per-shard degree tables in worker order.
    let t0 = Instant::now();
    let mut tables = Vec::with_capacity(n);
    for (w, t) in workers.iter_mut().enumerate() {
        match expect(&mut **t, w, "degree")? {
            Message::Degrees(d) => {
                if d.len() as u64 != info.num_vertices {
                    return Err(corrupt(format!(
                        "worker {w} sent degrees for {} vertices, expected {}",
                        d.len(),
                        info.num_vertices
                    )));
                }
                tables.push(DegreeTable::from_vec(d));
            }
            other => return Err(protocol_err(w, "degree", &other)),
        }
    }
    let degrees = merge_degree_tables(tables);
    report.phases.record("degree", t0.elapsed());
    let volume_cap = resolve_volume_cap(config, params.k, &degrees);
    let globals = Message::Globals {
        degrees: degrees.as_slice().to_vec(),
        volume_cap,
    };
    for t in workers.iter_mut() {
        send_msg(&mut **t, &globals)?;
    }

    // Phase 1: merge per-shard clusterings (union-by-volume, worker order).
    let t1 = Instant::now();
    let mut locals = Vec::with_capacity(n);
    for (w, t) in workers.iter_mut().enumerate() {
        match expect(&mut **t, w, "clustering")? {
            Message::LocalClustering(c) => {
                if c.num_vertices() != info.num_vertices {
                    return Err(corrupt(format!(
                        "worker {w} clustered {} vertices, expected {}",
                        c.num_vertices(),
                        info.num_vertices
                    )));
                }
                locals.push(c);
            }
            other => return Err(protocol_err(w, "clustering", &other)),
        }
    }
    let clustering = merge_clusterings(&locals, &degrees);
    drop(locals);
    report.phases.record("clustering", t1.elapsed());

    // Phase 2 step 1: placement, computed once here, broadcast to shards.
    let t2 = Instant::now();
    let placement = cluster_placement(config, &clustering, params.k);
    report.phases.record("mapping", t2.elapsed());
    let plan = Message::Plan {
        clustering: clustering.clone(),
        c2p: placement.c2p().to_vec(),
    };
    for t in workers.iter_mut() {
        send_msg(&mut **t, &plan)?;
    }

    // Phase 2 step 2 barrier: OR the replication shards (skipped exactly
    // when the in-process runner skips its merge).
    let t3 = Instant::now();
    if config.prepartitioning && n > 1 {
        let mut merged: Option<ReplicationMatrix> = None;
        for (w, t) in workers.iter_mut().enumerate() {
            match expect(&mut **t, w, "prepartition")? {
                Message::ReplicationShard(m) => {
                    if m.num_vertices() != info.num_vertices || m.k() != params.k {
                        return Err(corrupt(format!(
                            "worker {w} sent a {}×{} replication shard, expected {}×{}",
                            m.num_vertices(),
                            m.k(),
                            info.num_vertices,
                            params.k
                        )));
                    }
                    match &mut merged {
                        None => merged = Some(m),
                        Some(acc) => acc.merge_from(&m),
                    }
                }
                other => return Err(protocol_err(w, "prepartition", &other)),
            }
        }
        let merged = Message::MergedReplication(merged.expect("n > 1 shards merged"));
        for t in workers.iter_mut() {
            send_msg(&mut **t, &merged)?;
        }
    }
    report.phases.record("prepartition", t3.elapsed());

    // Phase 2 step 3: collect shard summaries.
    let t4 = Instant::now();
    let mut counters = AssignCounters::default();
    let mut loads = vec![0u64; params.k as usize];
    let mut assigned_total = 0u64;
    for (w, t) in workers.iter_mut().enumerate() {
        match expect(&mut **t, w, "partition")? {
            Message::ShardDone {
                counters: c,
                loads: l,
                assigned,
            } => {
                if l.len() != params.k as usize {
                    return Err(corrupt(format!(
                        "worker {w} reported loads for {} partitions, expected {}",
                        l.len(),
                        params.k
                    )));
                }
                counters.merge(&c);
                for (acc, v) in loads.iter_mut().zip(l) {
                    *acc += v;
                }
                assigned_total += assigned;
            }
            other => return Err(protocol_err(w, "partition", &other)),
        }
    }
    report.phases.record("partition", t4.elapsed());

    // Emit: pull each worker's runs in shard order — bounded batches, one
    // worker at a time, so coordinator memory stays O(RUN_BATCH_EDGES).
    let t5 = Instant::now();
    let mut emitted = 0u64;
    for (w, t) in workers.iter_mut().enumerate() {
        send_msg(&mut **t, &Message::Pull)?;
        loop {
            match expect(&mut **t, w, "emit")? {
                Message::Run(batch) => {
                    emitted += batch.len() as u64;
                    for (edge, p) in batch {
                        if p >= params.k {
                            return Err(corrupt(format!(
                                "worker {w} assigned partition {p} (k = {})",
                                params.k
                            )));
                        }
                        sink.assign(edge, p)?;
                    }
                }
                Message::RunsDone => break,
                other => return Err(protocol_err(w, "emit", &other)),
            }
        }
    }
    report.phases.record("emit", t5.elapsed());
    for t in workers.iter_mut() {
        send_msg(&mut **t, &Message::Shutdown)?;
    }

    if emitted != info.num_edges || assigned_total != info.num_edges {
        return Err(corrupt(format!(
            "assignment count mismatch: |E| = {}, shards reported {assigned_total}, emitted {emitted}",
            info.num_edges
        )));
    }

    report.count("workers", n as u64);
    let overshoot = overshoot_from_loads(&loads, params.k, info.num_edges, params.alpha);
    record_phase2_counters(&mut report, &counters, overshoot);
    record_clustering_counters(&mut report, &clustering, volume_cap);
    Ok(report)
}
