//! The loopback runner: a full coordinator/worker job in one process.
//!
//! Workers run on scoped threads, connected to the coordinator through
//! [`loopback_pair`] channel transports. Every frame that would cross a
//! socket crosses a channel instead — byte for byte the same protocol —
//! which makes this the deterministic, socket-free reference deployment:
//! the `dist_scaling` bench measures it and the CI `dist-smoke` job diffs
//! its output against `--threads N`.

use std::io;

use tps_core::partitioner::{PartitionParams, RunReport};
use tps_core::sink::{AssignmentSink, MemorySpoolFactory};
use tps_core::two_phase::TwoPhaseConfig;
use tps_graph::ranged::RangedEdgeSource;

use crate::coordinator::{run_coordinator, FaultPolicy, NoReplacements};
use crate::protocol::InputDescriptor;
use crate::transport::{loopback_pair, Transport};
use crate::worker::{run_worker, AttachedResolver};

/// Partition `source` with `workers` loopback workers, emitting into `sink`
/// in shard order. Deterministic for a fixed worker count and bit-identical
/// to `ParallelRunner` at the same `--threads` (see `tests/tests/dist.rs`).
/// Loopback workers cannot die spontaneously, so the run uses the fail-fast
/// [`FaultPolicy`]; the chaos tests drive `run_coordinator` directly with
/// fault-injecting transports and a respawning supply.
pub fn run_dist_local(
    source: &dyn RangedEdgeSource,
    config: &TwoPhaseConfig,
    params: &PartitionParams,
    workers: usize,
    sink: &mut dyn AssignmentSink,
) -> io::Result<RunReport> {
    let workers = workers.max(1);
    let mut coordinator_sides: Vec<Box<dyn Transport>> = Vec::with_capacity(workers);
    let mut worker_sides = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (c, w) = loopback_pair();
        coordinator_sides.push(Box::new(c));
        worker_sides.push(w);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = worker_sides
            .into_iter()
            .map(|mut t| {
                scope.spawn(move || {
                    run_worker(&mut t, &AttachedResolver(source), &MemorySpoolFactory)
                })
            })
            .collect();
        let report = run_coordinator(
            config,
            params,
            source.info(),
            &InputDescriptor::Attached,
            workers,
            coordinator_sides,
            &mut NoReplacements,
            &FaultPolicy::default(),
            0,
            sink,
        );
        // Coordinator failures drop the channels, so workers always unblock;
        // prefer the coordinator's error, else surface the first worker's.
        let mut worker_err = None;
        for h in handles {
            if let Err(e) = h.join().expect("dist worker thread panicked") {
                worker_err.get_or_insert(e);
            }
        }
        match (report, worker_err) {
            (Ok(r), None) => Ok(r),
            (Err(e), _) => Err(e),
            (Ok(_), Some(e)) => Err(e),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::parallel::ParallelRunner;
    use tps_core::sink::VecSink;
    use tps_graph::datasets::Dataset;
    use tps_graph::stream::InMemoryGraph;
    use tps_graph::types::Edge;

    fn dist(g: &InMemoryGraph, k: u32, workers: usize) -> (Vec<(Edge, u32)>, RunReport) {
        let mut sink = VecSink::new();
        let report = run_dist_local(
            g,
            &TwoPhaseConfig::default(),
            &PartitionParams::new(k),
            workers,
            &mut sink,
        )
        .unwrap();
        (sink.into_assignments(), report)
    }

    #[test]
    fn loopback_matches_parallel_runner_bit_for_bit() {
        let g = Dataset::Ok.generate_scaled(0.02);
        for workers in [1usize, 2, 3, 4] {
            let mut expected = VecSink::new();
            let runner_report = ParallelRunner::new(TwoPhaseConfig::default(), workers)
                .partition(&g, &PartitionParams::new(16), &mut expected)
                .unwrap();
            let mut sink = VecSink::new();
            let report = run_dist_local(
                &g,
                &TwoPhaseConfig::default(),
                &PartitionParams::new(16),
                workers,
                &mut sink,
            )
            .unwrap();
            assert_eq!(
                sink.assignments(),
                expected.assignments(),
                "workers = {workers}"
            );
            // Counter parity (phases/timing aside): same decisions, same counts.
            for key in [
                "prepartitioned",
                "prepartition_overflow",
                "remaining",
                "fallback_hash",
                "fallback_least_loaded",
                "cap_overshoot",
                "clusters",
                "cluster_volume_cap",
                "max_cluster_volume",
            ] {
                assert_eq!(
                    report.counter(key),
                    runner_report.counter(key),
                    "counter {key} at {workers} workers"
                );
            }
            assert_eq!(report.counter("workers"), workers as u64);
        }
    }

    #[test]
    fn hdrf_variant_and_restreaming_run_distributed() {
        let g = Dataset::It.generate_scaled(0.01);
        for config in [
            TwoPhaseConfig::hdrf_variant(),
            TwoPhaseConfig::with_passes(2),
        ] {
            let mut expected = VecSink::new();
            ParallelRunner::new(config, 2)
                .partition(&g, &PartitionParams::new(8), &mut expected)
                .unwrap();
            let mut sink = VecSink::new();
            run_dist_local(&g, &config, &PartitionParams::new(8), 2, &mut sink).unwrap();
            assert_eq!(sink.assignments(), expected.assignments());
        }
    }

    #[test]
    fn prepartitioning_disabled_skips_the_replication_barrier() {
        let g = Dataset::Ok.generate_scaled(0.01);
        let config = TwoPhaseConfig {
            prepartitioning: false,
            ..Default::default()
        };
        let mut expected = VecSink::new();
        ParallelRunner::new(config, 3)
            .partition(&g, &PartitionParams::new(8), &mut expected)
            .unwrap();
        let mut sink = VecSink::new();
        run_dist_local(&g, &config, &PartitionParams::new(8), 3, &mut sink).unwrap();
        assert_eq!(sink.assignments(), expected.assignments());
    }

    #[test]
    fn empty_graph_is_a_noop_with_clean_shutdown() {
        let g = InMemoryGraph::from_edges(vec![]);
        let (assignments, report) = dist(&g, 4, 3);
        assert!(assignments.is_empty());
        assert_eq!(report.counter("workers"), 0);
    }

    #[test]
    fn more_workers_than_edges_still_assigns_all() {
        let g = InMemoryGraph::from_edges(vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)]);
        let (assignments, _) = dist(&g, 2, 8);
        assert_eq!(assignments.len(), 3);
    }
}
