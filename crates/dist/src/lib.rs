//! `tps-dist` — coordinator/worker distributed two-phase partitioning over
//! a network-addressable shard map.
//!
//! The paper's two-phase design decomposes into per-range passes joined at
//! two state merges (degrees + clustering after phase 1, replication shards
//! inside phase 2). The in-process `ParallelRunner` exploits that with
//! threads; this crate promotes the same decomposition across processes:
//!
//! ```text
//!                      coordinator
//!        shard map: split_even(|E|, N) edge-index ranges
//!      ┌───────────────┬───────────────┬───────────────┐
//!      │ worker 0      │ worker 1      │ worker N−1    │
//!      │ [0, |E|/N)    │ [|E|/N, …)    │ […, |E|)      │
//!      └──────┬────────┴──────┬────────┴──────┬────────┘
//!             │   degrees ↑ / merged ↓        │      barrier 1
//!             │   clustering ↑ / plan ↓       │      barrier 2
//!             │   replication ↑ / merged ↓    │      barrier 3
//!             │   runs ↑ (bounded batches)    │      emit, shard order
//! ```
//!
//! Each worker opens its contiguous edge-index range through any
//! [`RangedEdgeSource`](tps_graph::ranged::RangedEdgeSource) backend (v1
//! record seeks, v2 chunk-index scheduling, mmap, prefetch) and runs the
//! *same* per-shard kernels as `--threads N` (`tps_core::parallel`). The
//! coordinator owns the shard map, performs the merges in worker order, and
//! replays per-worker assignment runs in shard order — so for a fixed shard
//! map the output is **bit-identical** to the in-process runner's, whatever
//! the transport.
//!
//! # Fault tolerance
//!
//! Worker loss at any protocol point is recovered per shard (protocol v2):
//! the coordinator detects a dead or aborting worker (read error, frame
//! timeout, explicit `Abort`), bumps the shard's **epoch** so stale frames
//! from the presumed-dead worker are discarded, and re-issues the shard to
//! a standby, an idle completed worker, or a connection produced by a
//! [`WorkerSupply`] (reconnecting workers handshake with `Rejoin`). Phase-1
//! state is recomputed from the source per range; phase 2 is re-entered by
//! re-broadcasting the stored encoded `Globals`/`Plan` frames and the
//! merged replication chunks (protocol v3 splits that barrier into
//! bounded vertex-range `ReplicationChunk`/`MergedReplicationChunk`
//! frames) through exactly the chunk rounds the barrier has completed;
//! a shard that died mid-`Run` stream resumes by skipping the
//! records already emitted. Output stays **bit-identical to `--threads N`**
//! no matter which worker dies where — see [`coordinator`] and the chaos
//! tests in `tests/tests/dist_fault.rs`.
//!
//! # Crate layout
//!
//! * [`wire`] — length-prefixed frames and primitive codecs; all corrupt
//!   input surfaces as `io::Error`, never a panic.
//! * [`protocol`] — the message schema (see its table) and the pinned
//!   [`PROTOCOL_VERSION`].
//! * [`transport`] — the [`Transport`] trait with
//!   [`TcpTransport`] (std `TcpStream`, no async
//!   runtime), [`loopback_pair`] channels, and a
//!   tracing wrapper proving both carry identical frames.
//! * [`coordinator`] / [`worker`] — the two state machines (the
//!   coordinator owns retry, catch-up and epoch bookkeeping).
//! * [`fault`] — kill-injection transports (`--kill-at`, chaos tests).
//! * [`local`] — [`run_dist_local`]: a full job over
//!   loopback transports in one process (tests, benches, CI smoke).
//!
//! The CLI front ends live in `tps`: `tps dist coordinator` /
//! `tps dist worker`, plus `--dist-local` to spawn the worker processes
//! automatically.

pub mod coordinator;
pub mod fault;
pub mod local;
pub mod protocol;
pub mod transport;
pub mod wire;
pub mod worker;

pub use coordinator::{run_coordinator, FaultPolicy, NoReplacements, WorkerSupply};
pub use fault::{FaultTransport, KillMode, KillPoint, KillSpec};
pub use local::run_dist_local;
pub use protocol::{InputDescriptor, Job, Message, ReplChunks, PROTOCOL_VERSION, SERVE_TAG_BASE};
pub use transport::{
    loopback_pair, LoopbackTransport, TcpTransport, TraceEvent, TraceTransport, Transport,
};
pub use worker::{
    run_worker, run_worker_handshake, AttachedResolver, Handshake, PathResolver, SourceResolver,
};
