//! `tps-core` — the primary contribution of *Out-of-Core Edge Partitioning at
//! Linear Run-Time* (Mayer, Orujzade, Jacobsen; ICDE 2022): the **2PS-L**
//! edge partitioner, together with the partitioning framework shared by all
//! algorithms in this workspace.
//!
//! # The algorithm in one paragraph
//!
//! 2PS-L partitions the edge set of a graph into `k` balanced parts while
//! streaming it from external storage, in time linear in `|E|` and
//! *independent of `k`*. Phase 1 clusters vertices with a bounded-volume
//! streaming clustering (see [`tps_clustering`]). Phase 2 (a) packs clusters
//! onto partitions with Graham's sorted list scheduling, (b) pre-partitions
//! every edge whose endpoints land on the same partition, and (c) scores each
//! remaining edge against exactly **two** candidate partitions — the ones
//! associated with its endpoints' clusters — using a degree- and
//! cluster-volume-aware scoring function, under a hard `α·|E|/k` balance cap.
//!
//! # Crate layout
//!
//! * [`partitioner`] — the [`Partitioner`] trait,
//!   run parameters and reports; implemented by 2PS-L here and by every
//!   baseline in `tps-baselines`.
//! * [`sink`] — assignment sinks: where `(edge, partition)` decisions go
//!   (quality tracking, in-memory collection, per-partition files).
//! * [`balance`] — per-partition load accounting with the hard balance cap.
//! * [`two_phase`] — the 2PS-L implementation (and its 2PS-HDRF variant).
//! * [`parallel`] — the chunk-parallel execution layer: [`parallel::ParallelRunner`]
//!   runs both phases with one worker per contiguous edge range (mergeable
//!   clustering state, sharded replication matrices, quota-sliced lock-free
//!   load reservation — see the module docs for the scheme and its
//!   determinism/quality bounds).
//! * [`job`] — the unified [`JobSpec`] builder describing a run (input,
//!   engine, execution knobs) for every front-end; the four historical
//!   `run_partitioner*` entry points in [`runner`] are deprecated shims
//!   over it.
//! * [`runner`] — [`RunOutcome`] plus the deprecated convenience shims.
//! * [`incremental`] — the dynamic-graph transformation (§VI): retained
//!   phase state, O(1) insert/remove, snapshot/restore — the write path of
//!   the `tps serve` daemon.
//!
//! # Quickstart
//!
//! ```
//! use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
//! use tps_core::partitioner::{PartitionParams, Partitioner};
//! use tps_core::sink::QualitySink;
//! use tps_graph::datasets::Dataset;
//!
//! let graph = Dataset::Ok.generate_scaled(0.02);
//! let params = PartitionParams::new(8);
//! let mut partitioner = TwoPhasePartitioner::new(TwoPhaseConfig::default());
//! let mut sink = QualitySink::new(graph.num_vertices(), params.k);
//! let mut stream = graph.stream();
//! partitioner.partition(&mut stream, &params, &mut sink).unwrap();
//! let metrics = sink.finish();
//! assert_eq!(metrics.num_edges, graph.num_edges());
//! assert!(metrics.alpha <= params.alpha + 1e-9);
//! ```

pub mod balance;
pub mod incremental;
pub mod job;
pub mod parallel;
pub mod partitioner;
pub mod runner;
pub mod sink;
pub mod two_phase;

pub use job::{ExecPlan, InputProvider, JobEngine, JobInput, JobSpec, ReaderKind, ThreadMode};
pub use parallel::ParallelRunner;
pub use partitioner::{PartitionParams, Partitioner, RunReport};
pub use runner::RunOutcome;
pub use sink::{AssignmentSink, NullSink, QualitySink, VecSink};
pub use two_phase::{RemainingStrategy, TwoPhaseConfig, TwoPhasePartitioner};
