//! Scoring functions for the streaming partitioning pass.
//!
//! # The 2PS-L two-choice score (paper §III-B, step 3)
//!
//! For an edge `(u, v)` and a candidate partition `p`:
//!
//! ```text
//! s(u, v, p)  =  g_u + g_v + sc_u + sc_v
//! g_u  = 1 + (1 − d_u / (d_u + d_v))   if u is replicated on p, else 0
//! sc_u = vol(c_u) / (vol(c_u) + vol(c_v))   if c_u is mapped to p, else 0
//! ```
//!
//! The `g` terms reward partitions that already host an endpoint, weighting
//! the *lower-degree* endpoint higher (cutting through high-degree vertices
//! is cheaper — the HDRF insight). The `sc` terms are 2PS-L's novelty: they
//! reward the partition associated with the **higher-volume** cluster,
//! because more of that cluster's edges are still to come in the stream.
//!
//! Evaluated for exactly two candidates per edge regardless of `k` — this is
//! what makes 2PS-L linear-time.
//!
//! # The HDRF score (used by the 2PS-HDRF variant)
//!
//! `C_HDRF(u,v,p) = C_REP(u,v,p) + λ · C_BAL(p)` with the degree-weighted
//! replication reward `C_REP` and the balance reward
//! `C_BAL = (maxsize − |p|) / (ε + maxsize − minsize)`, evaluated for **all
//! k** partitions (Petroni et al., CIKM'15).

use tps_graph::types::{PartitionId, VertexId};
use tps_metrics::bitmatrix::ReplicaSet;

/// Everything the two-choice score needs to know about one edge.
#[derive(Clone, Copy, Debug)]
pub struct EdgeScoreInputs {
    /// First endpoint.
    pub u: VertexId,
    /// Second endpoint.
    pub v: VertexId,
    /// Exact degree of `u`.
    pub du: u64,
    /// Exact degree of `v`.
    pub dv: u64,
    /// Volume of `u`'s cluster.
    pub vol_cu: u64,
    /// Volume of `v`'s cluster.
    pub vol_cv: u64,
    /// Partition mapped to `u`'s cluster.
    pub pu: PartitionId,
    /// Partition mapped to `v`'s cluster.
    pub pv: PartitionId,
}

/// The degree-balance term `g` shared by both scores:
/// `1 + (1 − d_self / (d_u + d_v))` when replicated, else 0.
///
/// Branchless: the `replicated` bit comes from the replication matrix and
/// is data-dependent (close to 50/50 in the assignment loop), so a branch
/// here mispredicts constantly. The multiply-by-{0.0, 1.0} form keeps the
/// replicated value bit-identical to the branchy
/// `1.0 + (1.0 - d_self / d_sum)` expression.
#[inline]
fn g_term(replicated: bool, d_self: u64, d_sum: u64) -> f64 {
    debug_assert!(d_sum > 0, "edge endpoints must have positive degrees");
    f64::from(replicated) * (1.0 + (1.0 - d_self as f64 / d_sum as f64))
}

/// The 2PS-L score `s(u, v, p)` for candidate partition `p`. Generic over
/// the replication state so the owned-matrix (serial, dist worker) and
/// shared-matrix (chunk-parallel) kernels score identically by
/// construction.
#[inline]
pub fn two_choice_score<R: ReplicaSet>(inputs: &EdgeScoreInputs, p: PartitionId, v2p: &R) -> f64 {
    let d_sum = inputs.du + inputs.dv;
    let vol_sum = (inputs.vol_cu + inputs.vol_cv) as f64;
    debug_assert!(
        vol_sum > 0.0,
        "clusters of edge endpoints cannot both be empty"
    );
    // Branchless throughout: each term is gated by a {0.0, 1.0} factor
    // rather than a data-dependent branch. Adding a gated-out 0.0 term is
    // exact (all terms are non-negative), so the sum is bit-identical to
    // the branchy formulation.
    let mut score = 0.0;
    score += g_term(v2p.contains(inputs.u, p), inputs.du, d_sum);
    score += g_term(v2p.contains(inputs.v, p), inputs.dv, d_sum);
    score += f64::from(inputs.pu == p) * (inputs.vol_cu as f64 / vol_sum);
    score += f64::from(inputs.pv == p) * (inputs.vol_cv as f64 / vol_sum);
    score
}

/// Pick the better of the two candidate partitions `{pu, pv}` for the edge.
/// Ties favour `pu` (the first endpoint's cluster partition), matching the
/// strict `>` comparison of Algorithm 2.
#[inline]
pub fn two_choice_best<R: ReplicaSet>(inputs: &EdgeScoreInputs, v2p: &R) -> PartitionId {
    if inputs.pu == inputs.pv {
        return inputs.pu;
    }
    let su = two_choice_score(inputs, inputs.pu, v2p);
    let sv = two_choice_score(inputs, inputs.pv, v2p);
    // Which candidate wins is data-dependent and unpredictable; the index
    // select compiles to a conditional move instead of a branch.
    [inputs.pu, inputs.pv][usize::from(sv > su)]
}

/// HDRF scoring parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HdrfParams {
    /// Balance weight λ (the paper's appendix uses 1.1).
    pub lambda: f64,
    /// Stabiliser ε in the balance denominator.
    pub epsilon: f64,
}

impl Default for HdrfParams {
    fn default() -> Self {
        HdrfParams {
            lambda: 1.1,
            epsilon: 1.0,
        }
    }
}

/// The HDRF score of `p` for edge `(u, v)` given current loads.
///
/// The argument list mirrors the quantities of the published formula; a
/// params struct would only obscure the correspondence.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn hdrf_score<R: ReplicaSet>(
    u: VertexId,
    v: VertexId,
    du: u64,
    dv: u64,
    p: PartitionId,
    v2p: &R,
    load: u64,
    max_load: u64,
    min_load: u64,
    params: &HdrfParams,
) -> f64 {
    let d_sum = du + dv;
    let c_rep = g_term(v2p.contains(u, p), du, d_sum) + g_term(v2p.contains(v, p), dv, d_sum);
    let c_bal =
        (max_load as f64 - load as f64) / (params.epsilon + max_load as f64 - min_load as f64);
    c_rep + params.lambda * c_bal
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_metrics::bitmatrix::ReplicationMatrix;

    fn inputs(du: u64, dv: u64, vol_cu: u64, vol_cv: u64) -> EdgeScoreInputs {
        EdgeScoreInputs {
            u: 0,
            v: 1,
            du,
            dv,
            vol_cu,
            vol_cv,
            pu: 0,
            pv: 1,
        }
    }

    #[test]
    fn fresh_edge_prefers_higher_volume_cluster() {
        // No replicas anywhere: only the sc terms differ; the higher-volume
        // cluster's partition must win.
        let v2p = ReplicationMatrix::new(2, 2);
        let inp = inputs(3, 3, 10, 30);
        assert_eq!(two_choice_best(&inp, &v2p), 1);
        let inp2 = inputs(3, 3, 30, 10);
        assert_eq!(two_choice_best(&inp2, &v2p), 0);
    }

    #[test]
    fn replication_dominates_volume() {
        // u already lives on partition 0; vol pulls towards 1, but the g term
        // (≥ 1) outweighs the sc term (≤ 1).
        let mut v2p = ReplicationMatrix::new(2, 2);
        v2p.set(0, 0);
        let inp = inputs(2, 2, 1, 99);
        assert_eq!(two_choice_best(&inp, &v2p), 0);
    }

    #[test]
    fn lower_degree_replica_weighs_more() {
        // Both endpoints replicated, on different partitions. The partition
        // holding the *lower-degree* endpoint should score higher (its g term
        // is larger), volumes equal.
        let mut v2p = ReplicationMatrix::new(2, 2);
        v2p.set(0, 0); // u (low degree) on p0
        v2p.set(1, 1); // v (high degree) on p1
        let inp = inputs(1, 9, 50, 50);
        // g_u(p0) = 1 + (1 - 0.1) = 1.9 ; g_v(p1) = 1 + (1 - 0.9) = 1.1
        assert_eq!(two_choice_best(&inp, &v2p), 0);
    }

    #[test]
    fn ties_prefer_first_endpoint_partition() {
        let v2p = ReplicationMatrix::new(2, 2);
        let inp = inputs(3, 3, 10, 10);
        assert_eq!(two_choice_best(&inp, &v2p), 0);
    }

    #[test]
    fn same_candidate_short_circuits() {
        let v2p = ReplicationMatrix::new(2, 4);
        let mut inp = inputs(1, 1, 1, 1);
        inp.pu = 3;
        inp.pv = 3;
        assert_eq!(two_choice_best(&inp, &v2p), 3);
    }

    #[test]
    fn score_components_add_up() {
        let mut v2p = ReplicationMatrix::new(2, 2);
        v2p.set(0, 0);
        v2p.set(1, 0);
        let inp = inputs(2, 6, 20, 60);
        // On p0: g_u = 1 + (1 - 2/8) = 1.75, g_v = 1 + (1 - 6/8) = 1.25,
        // sc_u = 20/80 = 0.25, sc_v = 0 (pv = 1)  → total 3.25.
        let s = two_choice_score(&inp, 0, &v2p);
        assert!((s - 3.25).abs() < 1e-12, "{s}");
    }

    #[test]
    fn hdrf_balance_term_prefers_empty_partition() {
        let v2p = ReplicationMatrix::new(2, 2);
        let params = HdrfParams::default();
        // No replicas: only balance distinguishes. p0 holds 10 edges, p1 none.
        let s0 = hdrf_score(0, 1, 2, 2, 0, &v2p, 10, 10, 0, &params);
        let s1 = hdrf_score(0, 1, 2, 2, 1, &v2p, 0, 10, 0, &params);
        assert!(s1 > s0);
    }

    #[test]
    fn hdrf_replication_beats_balance_at_default_lambda() {
        let mut v2p = ReplicationMatrix::new(2, 2);
        v2p.set(0, 0);
        v2p.set(1, 0);
        let params = HdrfParams::default();
        // p0 is fuller but holds both endpoints.
        let s0 = hdrf_score(0, 1, 2, 2, 0, &v2p, 10, 10, 0, &params);
        let s1 = hdrf_score(0, 1, 2, 2, 1, &v2p, 0, 10, 0, &params);
        assert!(s0 > s1);
    }
}
