//! The 2PS-L partitioner (paper Algorithms 1 + 2) and its 2PS-HDRF variant.
//!
//! A full run makes `3 + passes` streaming passes over the edge stream:
//!
//! 1. **degree** — exact vertex degrees (`O(|E|)`, shared with DBH);
//! 2. **clustering** × `passes` — bounded-volume streaming clustering;
//! 3. **pre-partitioning** — edges whose endpoint clusters are co-located
//!    are assigned directly to that partition;
//! 4. **remaining** — every other edge is scored against exactly two
//!    candidate partitions (the clusters' partitions), with degree-based
//!    hashing and least-loaded placement as balance-cap fallbacks.
//!
//! The [`RemainingStrategy::Hdrf`] variant replaces step 4's two-choice
//! scoring with the full `O(k)` HDRF scoring over all partitions — this is
//! the paper's 2PS-HDRF comparison point (Fig. 9): better replication
//! factors, linear-in-`k` run-time.

pub mod mapping;
pub mod scoring;

use std::io;
use std::sync::Arc;

use tps_clustering::model::{Clustering, NO_CLUSTER};
use tps_clustering::paged::{PageStoreProvider, PagedClustering, DEFAULT_PAGE_SIZE};
use tps_clustering::streaming::{clustering_pass, clustering_pass_on, VolumeCap};
use tps_graph::degree::DegreeTable;
use tps_graph::hash::seeded_hash_to_partition;
use tps_graph::stream::{discover_info, EdgeStream};
use tps_graph::types::{ClusterId, Edge, PartitionId, VertexId};
use tps_metrics::bitmatrix::{ReplicaSet, ReplicationMatrix};

use crate::balance::{LoadTracker, PartitionLoads};
use crate::partitioner::{PartitionParams, Partitioner, RunReport};
use crate::sink::AssignmentSink;
use crate::two_phase::mapping::ClusterPlacement;
use crate::two_phase::scoring::{hdrf_score, two_choice_best, EdgeScoreInputs, HdrfParams};

static CLUSTERING_CLUSTERS: tps_obs::Counter = tps_obs::Counter::new("clustering.clusters");
static CORE_ASSIGN_PREPARTITIONED: tps_obs::Counter =
    tps_obs::Counter::new("core.assign.prepartitioned");
static CORE_ASSIGN_REMAINING: tps_obs::Counter = tps_obs::Counter::new("core.assign.remaining");
static CORE_ASSIGN_FALLBACK: tps_obs::Counter = tps_obs::Counter::new("core.assign.fallback");
static CORE_PAGING_BUDGET_BYTES: tps_obs::Counter =
    tps_obs::Counter::new("core.paging.budget_bytes");
static CORE_PAGING_FAULTS: tps_obs::Counter = tps_obs::Counter::new("core.paging.faults");
static CORE_PAGING_EVICTIONS: tps_obs::Counter = tps_obs::Counter::new("core.paging.evictions");
static CORE_PAGING_WRITEBACKS: tps_obs::Counter = tps_obs::Counter::new("core.paging.writebacks");

/// How edges that were not pre-partitioned are scored.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RemainingStrategy {
    /// 2PS-L: constant-time scoring of the two candidate partitions.
    TwoChoice,
    /// 2PS-HDRF: HDRF scoring over all `k` partitions (`O(k)` per edge).
    Hdrf(HdrfParams),
}

/// How clusters are packed onto partitions (ablation hook).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MappingStrategy {
    /// Graham's sorted list scheduling (the paper's choice, 4/3-approx).
    SortedGraham,
    /// First-fit in cluster-id order (ablation: what the sorting buys).
    UnsortedFirstFit,
}

/// Configuration of the two-phase partitioner.
#[derive(Clone, Copy, Debug)]
pub struct TwoPhaseConfig {
    /// Streaming clustering passes (paper default: 1, i.e. no re-streaming).
    pub clustering_passes: u32,
    /// Cluster volume cap as a multiple of the fair share `2|E|/k`.
    /// The paper mandates an explicit cap but not its value; our ablation
    /// (bench `ablations`) finds 0.5 — i.e. `cap = |E|/k` — strictly better
    /// than 1.0 on every dataset (finer clusters pack better under Graham
    /// scheduling and overflow the balance cap less), and values ≥ 2 or
    /// unbounded degrade sharply, which is exactly the failure the paper's
    /// extension #1 exists to prevent. See DESIGN.md §5.
    pub volume_cap_factor: f64,
    /// Scoring strategy for non-pre-partitioned edges.
    pub strategy: RemainingStrategy,
    /// Cluster→partition mapping strategy.
    pub mapping: MappingStrategy,
    /// Enable the pre-partitioning pass (ablation switch; the paper always
    /// pre-partitions).
    pub prepartitioning: bool,
    /// Seed of the degree-based-hash fallback.
    pub hash_seed: u64,
}

impl Default for TwoPhaseConfig {
    fn default() -> Self {
        TwoPhaseConfig {
            clustering_passes: 1,
            volume_cap_factor: 0.5,
            strategy: RemainingStrategy::TwoChoice,
            mapping: MappingStrategy::SortedGraham,
            prepartitioning: true,
            hash_seed: 0x2B5C_0DE0_0BA1_A2CE,
        }
    }
}

impl TwoPhaseConfig {
    /// The 2PS-HDRF variant with default HDRF parameters (λ = 1.1).
    pub fn hdrf_variant() -> Self {
        TwoPhaseConfig {
            strategy: RemainingStrategy::Hdrf(HdrfParams::default()),
            ..Default::default()
        }
    }

    /// With a given number of clustering passes (Fig. 7/8 re-streaming).
    pub fn with_passes(passes: u32) -> Self {
        TwoPhaseConfig {
            clustering_passes: passes,
            ..Default::default()
        }
    }
}

/// Out-of-core execution policy for the serial runner: keep cluster state
/// (`v2c`, volumes, `c2p`) in a [`PagedClustering`] bounded by
/// `budget_bytes`, spilling cold pages through `provider`'s store.
#[derive(Clone)]
pub struct ClusterPaging {
    /// Byte budget for resident cluster pages (0 = one frame, fully
    /// external).
    pub budget_bytes: u64,
    /// Page size in bytes (default [`DEFAULT_PAGE_SIZE`]; tests shrink it
    /// to force eviction on small graphs).
    pub page_size: usize,
    /// Opens the backing page store (e.g. `tps-io`'s checksummed file
    /// store, or [`tps_clustering::paged::MemPageStoreProvider`] in tests).
    pub provider: Arc<dyn PageStoreProvider>,
}

impl ClusterPaging {
    /// Paging under `budget_bytes`, with the page size adapted to it: a
    /// fault costs one page of I/O and memcpy, so a small budget wants
    /// small pages, while a large budget wants large pages to amortise
    /// per-page overhead. Halving from the 64 KiB default until the budget
    /// holds ≥128 frames (floor 4 KiB) keeps the frame pool deep enough
    /// that the stream's working window stays resident even when the whole
    /// table is 10× over budget.
    pub fn new(budget_bytes: u64, provider: Arc<dyn PageStoreProvider>) -> Self {
        let mut page_size = DEFAULT_PAGE_SIZE;
        while page_size > 4096 && budget_bytes / (page_size as u64) < 128 {
            page_size /= 2;
        }
        ClusterPaging {
            budget_bytes,
            page_size,
            provider,
        }
    }
}

impl std::fmt::Debug for ClusterPaging {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterPaging")
            .field("budget_bytes", &self.budget_bytes)
            .field("page_size", &self.page_size)
            .finish_non_exhaustive()
    }
}

/// The 2PS-L / 2PS-HDRF partitioner.
#[derive(Clone, Debug)]
pub struct TwoPhasePartitioner {
    config: TwoPhaseConfig,
    paging: Option<ClusterPaging>,
}

impl TwoPhasePartitioner {
    /// Create a partitioner with `config`.
    pub fn new(config: TwoPhaseConfig) -> Self {
        assert!(
            config.clustering_passes >= 1,
            "need at least one clustering pass"
        );
        assert!(
            config.volume_cap_factor > 0.0,
            "volume cap factor must be positive"
        );
        TwoPhasePartitioner {
            config,
            paging: None,
        }
    }

    /// Run with cluster state paged to disk under `paging`'s budget (the
    /// out-of-core mode). Output is bit-identical to the unpaged run at
    /// every budget; only peak memory and I/O traffic change.
    pub fn with_cluster_paging(mut self, paging: ClusterPaging) -> Self {
        self.paging = Some(paging);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &TwoPhaseConfig {
        &self.config
    }

    /// The out-of-core run: the same five phases as the flat path, with
    /// every cluster-state access routed through a [`PagedClustering`]
    /// bounded by the paging budget. The decision sequence is shared (see
    /// [`EdgeAssigner`]), so output is bit-identical to the flat path.
    fn partition_paged(
        &self,
        paging: &ClusterPaging,
        stream: &mut dyn EdgeStream,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<RunReport> {
        let mut report = RunReport::default();
        let info = discover_info(stream)?;
        if info.num_edges == 0 {
            return Ok(report);
        }

        // Phase 0: exact degrees (one streaming pass).
        let s0 = tps_obs::span("degree");
        let degrees = DegreeTable::compute(stream, info.num_vertices)?;
        report.phases.record("degree", s0.end());

        // Phase 1: streaming clustering against the paged table.
        let s1 = tps_obs::span("clustering");
        let cap = VolumeCap::FractionOfTotal(self.config.volume_cap_factor / params.k as f64)
            .resolve(degrees.total_volume());
        let backing = paging.provider.open_store(paging.page_size)?;
        let mut table = PagedClustering::with_page_size(
            info.num_vertices,
            paging.budget_bytes,
            paging.page_size,
            backing,
        );
        for _ in 0..self.config.clustering_passes {
            let pass = tps_obs::span("clustering.pass");
            clustering_pass_on(stream, &degrees, cap, &mut table)?;
            table.check_io()?;
            pass.end();
        }
        report.phases.record("clustering", s1.end());

        // Phase 2 step 1: schedule the live clusters straight into the
        // paged `c2p` array. The live list is the one transient term that
        // scales with the clustering, not the budget: O(#live clusters)
        // (see ARCHITECTURE.md "Memory model" for the accounting).
        let s2 = tps_obs::span("mapping");
        let mut live: Vec<(ClusterId, u64)> = Vec::new();
        table.for_each_volume(|c, vol| {
            if vol > 0 {
                live.push((c, vol));
            }
        });
        table.check_io()?;
        let num_clusters = live.len() as u64;
        let max_cluster_volume = live.iter().map(|&(_, vol)| vol).max().unwrap_or(0);
        mapping::schedule_live_clusters(
            &mut live,
            params.k,
            self.config.mapping == MappingStrategy::SortedGraham,
            |c, p| table.set_partition_of(c, p),
        );
        drop(live);
        table.check_io()?;
        report.phases.record("mapping", s2.end());

        let mut state = EdgeAssigner::with_view(
            &degrees,
            &mut table,
            ReplicationMatrix::new(info.num_vertices, params.k),
            PartitionLoads::new(params.k, info.num_edges, params.alpha),
            self.config.hash_seed,
        );

        // Phase 2 step 2: pre-partitioning pass.
        if self.config.prepartitioning {
            let s3 = tps_obs::span("prepartition");
            stream.reset()?;
            while let Some(edge) = stream.next_edge()? {
                state.prepartition_edge(edge, sink)?;
            }
            report.phases.record("prepartition", s3.end());
        }

        // Phase 2 step 3: score-and-assign the remaining edges.
        let s4 = tps_obs::span("partition");
        stream.reset()?;
        while let Some(edge) = stream.next_edge()? {
            if self.config.prepartitioning && state.prepartition_target(edge).is_some() {
                continue; // already assigned in the pre-partitioning pass
            }
            state.assign_remaining(edge, self.config.strategy, sink)?;
        }
        report.phases.record("partition", s4.end());

        let counters = state.counters;
        table.check_io()?;
        let stats = table.stats();

        report.count("prepartitioned", counters.prepartitioned);
        report.count("prepartition_overflow", counters.prepartition_overflow);
        report.count("remaining", counters.remaining);
        report.count("fallback_hash", counters.fallback_hash);
        report.count("fallback_least_loaded", counters.fallback_least_loaded);
        report.count("clusters", num_clusters);
        report.count("cluster_volume_cap", cap);
        report.count("max_cluster_volume", max_cluster_volume);
        report.count("paging_budget_bytes", paging.budget_bytes);
        report.count("paging_faults", stats.faults);
        report.count("paging_evictions", stats.evictions);
        report.count("paging_writebacks", stats.writebacks);
        CLUSTERING_CLUSTERS.add(num_clusters);
        CORE_ASSIGN_PREPARTITIONED.add(counters.prepartitioned);
        CORE_ASSIGN_REMAINING.add(counters.remaining);
        CORE_ASSIGN_FALLBACK.add(counters.fallback_hash + counters.fallback_least_loaded);
        CORE_PAGING_BUDGET_BYTES.add(paging.budget_bytes);
        CORE_PAGING_FAULTS.add(stats.faults);
        CORE_PAGING_EVICTIONS.add(stats.evictions);
        CORE_PAGING_WRITEBACKS.add(stats.writebacks);
        Ok(report)
    }
}

/// Counters of the phase-2 edge kernel (summed across workers when the
/// kernel runs chunk-parallel or distributed — the counters cross the wire
/// in `tps-dist`'s shard-done message).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AssignCounters {
    /// Edges placed by the pre-partitioning condition.
    pub prepartitioned: u64,
    /// Pre-partitionable edges bounced off a full target partition.
    pub prepartition_overflow: u64,
    /// Edges handled by the scoring pass.
    pub remaining: u64,
    /// Fallback placements via the degree-based hash.
    pub fallback_hash: u64,
    /// Last-resort least-loaded placements.
    pub fallback_least_loaded: u64,
}

impl AssignCounters {
    /// Accumulate another worker's counters.
    pub fn merge(&mut self, other: &AssignCounters) {
        self.prepartitioned += other.prepartitioned;
        self.prepartition_overflow += other.prepartition_overflow;
        self.remaining += other.remaining;
        self.fallback_hash += other.fallback_hash;
        self.fallback_least_loaded += other.fallback_least_loaded;
    }
}

/// The phase-1+2 state phase 2 reads per edge: a vertex's cluster, a
/// cluster's volume and a cluster's partition. The in-memory
/// ([`PlanView`]) and paged ([`PagedClustering`]) storages implement it,
/// so the per-edge decision kernel is storage-agnostic. Accessors take
/// `&mut self` because the paged view faults pages (and updates its LRU)
/// on reads.
pub(crate) trait ClusterView {
    /// Raw cluster id of `v` (`NO_CLUSTER` when unassigned).
    fn cluster_of(&mut self, v: VertexId) -> ClusterId;
    /// Volume of cluster `c`.
    fn volume(&mut self, c: ClusterId) -> u64;
    /// Partition placement of cluster `c`.
    fn partition_of(&mut self, c: ClusterId) -> PartitionId;
}

/// The flat in-memory [`ClusterView`]: a finished [`Clustering`] plus its
/// [`ClusterPlacement`].
pub(crate) struct PlanView<'a> {
    pub(crate) clustering: &'a Clustering,
    pub(crate) placement: &'a ClusterPlacement,
}

impl ClusterView for PlanView<'_> {
    #[inline]
    fn cluster_of(&mut self, v: VertexId) -> ClusterId {
        self.clustering.raw_cluster_of(v)
    }
    #[inline]
    fn volume(&mut self, c: ClusterId) -> u64 {
        self.clustering.volume(c)
    }
    #[inline]
    fn partition_of(&mut self, c: ClusterId) -> PartitionId {
        self.placement.partition_of(c)
    }
}

impl ClusterView for PagedClustering {
    #[inline]
    fn cluster_of(&mut self, v: VertexId) -> ClusterId {
        self.raw_cluster_of(v)
    }
    #[inline]
    fn volume(&mut self, c: ClusterId) -> u64 {
        self.cluster_volume(c)
    }
    #[inline]
    fn partition_of(&mut self, c: ClusterId) -> PartitionId {
        PagedClustering::partition_of(self, c)
    }
}

impl<T: ClusterView + ?Sized> ClusterView for &mut T {
    #[inline]
    fn cluster_of(&mut self, v: VertexId) -> ClusterId {
        (**self).cluster_of(v)
    }
    #[inline]
    fn volume(&mut self, c: ClusterId) -> u64 {
        (**self).volume(c)
    }
    #[inline]
    fn partition_of(&mut self, c: ClusterId) -> PartitionId {
        (**self).partition_of(c)
    }
}

/// The phase-2 per-edge decision kernel, generic over the load tracker,
/// the replication state and the cluster-state storage so the serial
/// runner ([`TwoPhasePartitioner`], flat or paged), the chunk-parallel
/// runner ([`crate::parallel::ParallelRunner`], over a shared atomic
/// matrix) and the distributed worker (owned per-shard matrix) execute the
/// *same* decision path — a one-thread parallel run is bit-identical to a
/// serial run, and a paged run to an unpaged one, by construction, not by
/// testing alone.
pub(crate) struct EdgeAssigner<'a, L: LoadTracker, R: ReplicaSet, C: ClusterView = PlanView<'a>> {
    pub(crate) degrees: &'a DegreeTable,
    pub(crate) view: C,
    pub(crate) v2p: R,
    pub(crate) loads: L,
    pub(crate) hash_seed: u64,
    pub(crate) counters: AssignCounters,
}

impl<'a, L: LoadTracker, R: ReplicaSet> EdgeAssigner<'a, L, R> {
    pub(crate) fn new(
        degrees: &'a DegreeTable,
        clustering: &'a Clustering,
        placement: &'a ClusterPlacement,
        replicas: R,
        loads: L,
        hash_seed: u64,
    ) -> Self {
        EdgeAssigner::with_view(
            degrees,
            PlanView {
                clustering,
                placement,
            },
            replicas,
            loads,
            hash_seed,
        )
    }
}

impl<'a, L: LoadTracker, R: ReplicaSet, C: ClusterView> EdgeAssigner<'a, L, R, C> {
    pub(crate) fn with_view(
        degrees: &'a DegreeTable,
        view: C,
        replicas: R,
        loads: L,
        hash_seed: u64,
    ) -> Self {
        EdgeAssigner {
            degrees,
            view,
            v2p: replicas,
            loads,
            hash_seed,
            counters: AssignCounters::default(),
        }
    }

    /// Commit `edge` to `p`: update replication state, loads, and the sink.
    #[inline]
    fn commit(
        &mut self,
        edge: Edge,
        p: PartitionId,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<()> {
        self.v2p.insert(edge.src, p);
        self.v2p.insert(edge.dst, p);
        self.loads.add(p);
        sink.assign(edge, p)
    }

    /// The balance-cap fallback chain: degree-based hash of the higher-degree
    /// endpoint, then least-loaded as the last resort (paper §III-B step 3).
    #[inline]
    fn fallback_target(&mut self, edge: Edge) -> PartitionId {
        let (du, dv) = (self.degrees.degree(edge.src), self.degrees.degree(edge.dst));
        // Endpoint degrees are unpredictable; the index select compiles to a
        // conditional move instead of a branch.
        let hv = [edge.src, edge.dst][usize::from(du < dv)];
        let p = seeded_hash_to_partition(hv, self.hash_seed, self.loads.k());
        if !self.loads.is_full(p) {
            self.counters.fallback_hash += 1;
            p
        } else {
            self.counters.fallback_least_loaded += 1;
            self.loads.least_loaded()
        }
    }

    /// Whether `edge` satisfies the pre-partitioning condition: endpoints in
    /// the same cluster, or clusters mapped to the same partition.
    /// (`&mut self`: a paged view faults pages on reads.)
    #[inline]
    pub(crate) fn prepartition_target(&mut self, edge: Edge) -> Option<PartitionId> {
        let cu = self.view.cluster_of(edge.src);
        let cv = self.view.cluster_of(edge.dst);
        debug_assert_ne!(cu, NO_CLUSTER, "clustering must cover all stream vertices");
        debug_assert_ne!(cv, NO_CLUSTER, "clustering must cover all stream vertices");
        let pu = self.view.partition_of(cu);
        if cu == cv {
            return Some(pu);
        }
        let pv = self.view.partition_of(cv);
        (pu == pv).then_some(pu)
    }

    /// Phase 2 step 2 for one edge: assign it if it satisfies the
    /// pre-partitioning condition. Returns whether the edge was handled.
    #[inline]
    pub(crate) fn prepartition_edge(
        &mut self,
        edge: Edge,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<bool> {
        let Some(target) = self.prepartition_target(edge) else {
            return Ok(false);
        };
        let target = if self.loads.is_full(target) {
            self.counters.prepartition_overflow += 1;
            self.fallback_target(edge)
        } else {
            self.counters.prepartitioned += 1;
            target
        };
        self.commit(edge, target, sink)?;
        Ok(true)
    }

    /// Phase 2 step 3 for one edge that was *not* pre-partitioned: score the
    /// candidate partitions and commit the winner (with the fallback chain
    /// when candidates are full).
    pub(crate) fn assign_remaining(
        &mut self,
        edge: Edge,
        strategy: RemainingStrategy,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<()> {
        self.counters.remaining += 1;
        let cu = self.view.cluster_of(edge.src);
        let cv = self.view.cluster_of(edge.dst);
        let inputs = EdgeScoreInputs {
            u: edge.src,
            v: edge.dst,
            du: self.degrees.degree(edge.src) as u64,
            dv: self.degrees.degree(edge.dst) as u64,
            vol_cu: self.view.volume(cu),
            vol_cv: self.view.volume(cv),
            pu: self.view.partition_of(cu),
            pv: self.view.partition_of(cv),
        };
        let mut target = match strategy {
            RemainingStrategy::TwoChoice => {
                let best = two_choice_best(&inputs, &self.v2p);
                // If the best of the two candidates is full, try the
                // other before the generic fallback chain.
                if !self.loads.is_full(best) {
                    Some(best)
                } else {
                    let other = if best == inputs.pu {
                        inputs.pv
                    } else {
                        inputs.pu
                    };
                    (!self.loads.is_full(other)).then_some(other)
                }
            }
            RemainingStrategy::Hdrf(hdrf) => {
                // O(k): score every non-full partition.
                let (max_load, min_load) = (self.loads.max_load(), self.loads.min_load());
                let mut best: Option<(f64, PartitionId)> = None;
                for p in 0..self.loads.k() {
                    if self.loads.is_full(p) {
                        continue;
                    }
                    let s = hdrf_score(
                        edge.src,
                        edge.dst,
                        inputs.du,
                        inputs.dv,
                        p,
                        &self.v2p,
                        self.loads.load(p),
                        max_load,
                        min_load,
                        &hdrf,
                    );
                    if best.is_none_or(|(bs, _)| s > bs) {
                        best = Some((s, p));
                    }
                }
                best.map(|(_, p)| p)
            }
        };
        if target.is_none() {
            target = Some(self.fallback_target(edge));
        }
        let target = target.expect("fallback always yields a partition");
        // The fallback itself may hand back a full hash target; re-check.
        let target = if self.loads.is_full(target) {
            self.loads.least_loaded()
        } else {
            target
        };
        self.commit(edge, target, sink)
    }
}

impl Partitioner for TwoPhasePartitioner {
    fn name(&self) -> String {
        match self.config.strategy {
            RemainingStrategy::TwoChoice => "2PS-L".to_string(),
            RemainingStrategy::Hdrf(_) => "2PS-HDRF".to_string(),
        }
    }

    fn partition(
        &mut self,
        stream: &mut dyn EdgeStream,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<RunReport> {
        if let Some(paging) = self.paging.clone() {
            return self.partition_paged(&paging, stream, params, sink);
        }
        let mut report = RunReport::default();
        let info = discover_info(stream)?;
        if info.num_edges == 0 {
            return Ok(report);
        }

        // Phase 0: exact degrees (one streaming pass).
        let s0 = tps_obs::span("degree");
        let degrees = DegreeTable::compute(stream, info.num_vertices)?;
        report.phases.record("degree", s0.end());

        // Phase 1: streaming clustering (`passes` streaming passes).
        let s1 = tps_obs::span("clustering");
        let cap = VolumeCap::FractionOfTotal(self.config.volume_cap_factor / params.k as f64)
            .resolve(degrees.total_volume());
        let mut clustering = Clustering::empty(info.num_vertices);
        for _ in 0..self.config.clustering_passes {
            let pass = tps_obs::span("clustering.pass");
            clustering_pass(stream, &degrees, cap, &mut clustering)?;
            pass.end();
        }
        report.phases.record("clustering", s1.end());

        // Phase 2 step 1: map clusters to partitions (no streaming pass).
        let s2 = tps_obs::span("mapping");
        let placement = match self.config.mapping {
            MappingStrategy::SortedGraham => {
                ClusterPlacement::sorted_list_schedule(&clustering, params.k)
            }
            MappingStrategy::UnsortedFirstFit => {
                ClusterPlacement::unsorted_schedule(&clustering, params.k)
            }
        };
        report.phases.record("mapping", s2.end());

        let mut state = EdgeAssigner::new(
            &degrees,
            &clustering,
            &placement,
            ReplicationMatrix::new(info.num_vertices, params.k),
            PartitionLoads::new(params.k, info.num_edges, params.alpha),
            self.config.hash_seed,
        );

        // Phase 2 step 2: pre-partitioning pass.
        if self.config.prepartitioning {
            let s3 = tps_obs::span("prepartition");
            stream.reset()?;
            while let Some(edge) = stream.next_edge()? {
                state.prepartition_edge(edge, sink)?;
            }
            report.phases.record("prepartition", s3.end());
        }

        // Phase 2 step 3: score-and-assign the remaining edges.
        let s4 = tps_obs::span("partition");
        stream.reset()?;
        while let Some(edge) = stream.next_edge()? {
            if self.config.prepartitioning && state.prepartition_target(edge).is_some() {
                continue; // already assigned in the pre-partitioning pass
            }
            state.assign_remaining(edge, self.config.strategy, sink)?;
        }
        report.phases.record("partition", s4.end());

        report.count("prepartitioned", state.counters.prepartitioned);
        report.count(
            "prepartition_overflow",
            state.counters.prepartition_overflow,
        );
        report.count("remaining", state.counters.remaining);
        report.count("fallback_hash", state.counters.fallback_hash);
        report.count(
            "fallback_least_loaded",
            state.counters.fallback_least_loaded,
        );
        report.count("clusters", clustering.num_nonempty_clusters() as u64);
        report.count("cluster_volume_cap", cap);
        report.count("max_cluster_volume", clustering.max_volume());
        CLUSTERING_CLUSTERS.add(clustering.num_nonempty_clusters() as u64);
        CORE_ASSIGN_PREPARTITIONED.add(state.counters.prepartitioned);
        CORE_ASSIGN_REMAINING.add(state.counters.remaining);
        CORE_ASSIGN_FALLBACK
            .add(state.counters.fallback_hash + state.counters.fallback_least_loaded);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{QualitySink, VecSink};
    use tps_graph::datasets::Dataset;
    use tps_graph::gen::gnm;
    use tps_graph::stream::InMemoryGraph;

    fn run(
        graph: &InMemoryGraph,
        config: TwoPhaseConfig,
        k: u32,
    ) -> (tps_metrics::quality::PartitionMetrics, RunReport) {
        let mut p = TwoPhasePartitioner::new(config);
        let params = PartitionParams::new(k);
        let mut sink = QualitySink::new(graph.num_vertices(), k);
        let mut stream = graph.stream();
        let report = p.partition(&mut stream, &params, &mut sink).unwrap();
        (sink.finish(), report)
    }

    #[test]
    fn assigns_every_edge_exactly_once() {
        let g = Dataset::It.generate_scaled(0.02);
        let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
        let mut sink = VecSink::new();
        let mut stream = g.stream();
        p.partition(&mut stream, &PartitionParams::new(8), &mut sink)
            .unwrap();
        let assigned = sink.assignments();
        assert_eq!(assigned.len() as u64, g.num_edges());
        // Multiset equality with the input edge list.
        let mut input: Vec<_> = g.edges().to_vec();
        let mut got: Vec<_> = assigned.iter().map(|(e, _)| *e).collect();
        input.sort();
        got.sort();
        assert_eq!(input, got);
    }

    #[test]
    fn respects_hard_balance_cap() {
        for k in [2u32, 7, 32] {
            let g = Dataset::Ok.generate_scaled(0.02);
            let (m, _) = run(&g, TwoPhaseConfig::default(), k);
            let cap = PartitionLoads::new(k, g.num_edges(), 1.05).cap();
            assert!(
                m.max_load <= cap,
                "k={k}: max load {} exceeds cap {cap}",
                m.max_load
            );
            assert_eq!(m.num_edges, g.num_edges());
        }
    }

    #[test]
    fn prepartition_dominates_on_web_graphs() {
        let g = Dataset::Gsh.generate_scaled(0.02);
        let (_, report) = run(&g, TwoPhaseConfig::default(), 32);
        let pre = report.counter("prepartitioned");
        let rem = report.counter("remaining");
        assert!(
            pre > rem,
            "web graph should be mostly pre-partitioned: pre={pre} rem={rem}"
        );
    }

    #[test]
    fn beats_random_hashing_on_clustered_graph() {
        let g = Dataset::It.generate_scaled(0.05);
        let (m, _) = run(&g, TwoPhaseConfig::default(), 16);
        // Random edge placement would replicate nearly every vertex ~min(d,k)
        // times; on a strongly clustered graph 2PS-L must stay far below that.
        assert!(m.replication_factor < 3.5, "rf = {}", m.replication_factor);
    }

    #[test]
    fn hdrf_variant_not_worse_on_quality() {
        let g = Dataset::Ok.generate_scaled(0.03);
        let (l, _) = run(&g, TwoPhaseConfig::default(), 32);
        let (h, _) = run(&g, TwoPhaseConfig::hdrf_variant(), 32);
        // Paper Fig. 9: 2PS-HDRF improves RF by up to 50 %. Allow slack but
        // insist it is not significantly worse.
        assert!(
            h.replication_factor <= l.replication_factor * 1.10,
            "2PS-HDRF rf {} vs 2PS-L rf {}",
            h.replication_factor,
            l.replication_factor
        );
    }

    #[test]
    fn k_equals_one_puts_everything_in_partition_zero() {
        let g = gnm::generate(50, 200, 3);
        let (m, _) = run(&g, TwoPhaseConfig::default(), 1);
        assert_eq!(m.loads, vec![200]);
        assert!((m.replication_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = InMemoryGraph::from_edges(vec![]);
        let (m, report) = run(&g, TwoPhaseConfig::default(), 4);
        assert_eq!(m.num_edges, 0);
        assert_eq!(report.counter("prepartitioned"), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = Dataset::Uk.generate_scaled(0.01);
        let mut s1 = VecSink::new();
        let mut s2 = VecSink::new();
        let params = PartitionParams::new(16);
        TwoPhasePartitioner::new(TwoPhaseConfig::default())
            .partition(&mut g.stream(), &params, &mut s1)
            .unwrap();
        TwoPhasePartitioner::new(TwoPhaseConfig::default())
            .partition(&mut g.stream(), &params, &mut s2)
            .unwrap();
        assert_eq!(s1.assignments(), s2.assignments());
    }

    #[test]
    fn counters_cover_all_edges() {
        let g = Dataset::Fr.generate_scaled(0.01);
        let (_, report) = run(&g, TwoPhaseConfig::default(), 8);
        // Every edge is either pre-partitioned, bounced out of a full
        // pre-partition target, or handled by the scoring pass.
        assert_eq!(
            report.counter("prepartitioned")
                + report.counter("prepartition_overflow")
                + report.counter("remaining"),
            g.num_edges()
        );
    }

    #[test]
    fn disabled_prepartitioning_still_assigns_all() {
        let g = Dataset::It.generate_scaled(0.01);
        let cfg = TwoPhaseConfig {
            prepartitioning: false,
            ..Default::default()
        };
        let (m, report) = run(&g, cfg, 8);
        assert_eq!(m.num_edges, g.num_edges());
        assert_eq!(report.counter("prepartitioned"), 0);
    }

    #[test]
    fn phase_report_has_expected_phases() {
        let g = Dataset::Ok.generate_scaled(0.01);
        let (_, report) = run(&g, TwoPhaseConfig::default(), 4);
        let names: Vec<&str> = report
            .phases
            .phases()
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(
            names,
            vec![
                "degree",
                "clustering",
                "mapping",
                "prepartition",
                "partition"
            ]
        );
    }

    #[test]
    fn restreaming_runs_and_keeps_invariants() {
        let g = Dataset::It.generate_scaled(0.01);
        for passes in [1u32, 2, 4] {
            let (m, _) = run(&g, TwoPhaseConfig::with_passes(passes), 16);
            assert_eq!(m.num_edges, g.num_edges());
        }
    }

    #[test]
    fn unsorted_mapping_ablation_works() {
        let g = Dataset::It.generate_scaled(0.01);
        let cfg = TwoPhaseConfig {
            mapping: MappingStrategy::UnsortedFirstFit,
            ..Default::default()
        };
        let (m, _) = run(&g, cfg, 8);
        assert_eq!(m.num_edges, g.num_edges());
    }

    /// The tentpole invariant end-to-end: a paged run emits the exact same
    /// assignment sequence as the flat run at every budget, including the
    /// fully-external budget of zero. Exercises both scoring strategies and
    /// both mapping strategies so every phase-2 read path is covered.
    #[test]
    fn paged_run_bit_identical_to_unpaged_at_every_budget() {
        use tps_clustering::paged::MemPageStoreProvider;
        let g = gnm::generate(2_000, 10_000, 13);
        let params = PartitionParams::new(16);
        for config in [
            TwoPhaseConfig::with_passes(2),
            TwoPhaseConfig::hdrf_variant(),
            TwoPhaseConfig {
                mapping: MappingStrategy::UnsortedFirstFit,
                ..Default::default()
            },
        ] {
            let mut base = VecSink::new();
            let base_report = TwoPhasePartitioner::new(config)
                .partition(&mut g.stream(), &params, &mut base)
                .unwrap();
            for budget in [0u64, 8 << 10, 1 << 30] {
                let mut sink = VecSink::new();
                let paging = ClusterPaging {
                    budget_bytes: budget,
                    page_size: 1024,
                    provider: Arc::new(MemPageStoreProvider),
                };
                let report = TwoPhasePartitioner::new(config)
                    .with_cluster_paging(paging)
                    .partition(&mut g.stream(), &params, &mut sink)
                    .unwrap();
                assert_eq!(sink.assignments(), base.assignments(), "budget {budget}");
                for key in [
                    "prepartitioned",
                    "remaining",
                    "clusters",
                    "max_cluster_volume",
                ] {
                    assert_eq!(
                        report.counter(key),
                        base_report.counter(key),
                        "budget {budget}, counter {key}"
                    );
                }
                if budget == 0 {
                    assert!(
                        report.counter("paging_evictions") > 0,
                        "budget 0 must evict"
                    );
                }
            }
        }
    }

    #[test]
    fn handles_self_loops_and_parallel_edges() {
        let g = InMemoryGraph::from_edges(vec![
            tps_graph::types::Edge::new(0, 0),
            tps_graph::types::Edge::new(0, 1),
            tps_graph::types::Edge::new(0, 1),
            tps_graph::types::Edge::new(1, 2),
        ]);
        let (m, _) = run(&g, TwoPhaseConfig::default(), 2);
        assert_eq!(m.num_edges, 4);
    }
}
