//! Step 1 of phase 2: mapping clusters to partitions (paper §III-B).
//!
//! The paper models this as Makespan Scheduling on Identical Machines
//! (MSP-IM): partitions are machines, clusters are jobs, cluster volumes are
//! job run-times, and the goal is to minimise the cumulative volume of the
//! largest partition. MSP-IM is NP-hard; Graham's *sorted list scheduling*
//! (longest processing time first) is a 4/3-approximation: sort clusters by
//! decreasing volume, assign each to the currently least-loaded partition.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tps_clustering::model::Clustering;
use tps_graph::types::{ClusterId, PartitionId};

/// The cluster→partition map plus the per-partition volume sums.
#[derive(Clone, Debug)]
pub struct ClusterPlacement {
    /// Cluster id → partition id. Clusters with zero volume still get a
    /// (irrelevant but valid) partition.
    c2p: Vec<PartitionId>,
    /// Summed cluster volume per partition (`vol_p` in Algorithm 2).
    partition_volumes: Vec<u64>,
}

impl ClusterPlacement {
    /// Graham sorted-list scheduling of `clustering`'s clusters onto `k`
    /// partitions.
    pub fn sorted_list_schedule(clustering: &Clustering, k: u32) -> Self {
        assert!(k > 0, "k must be positive");
        let volumes = clustering.volumes();
        // Sort cluster ids by decreasing volume (stable on id for ties →
        // deterministic).
        let mut order: Vec<ClusterId> = (0..volumes.len() as u32).collect();
        order.sort_by_key(|&c| (Reverse(volumes[c as usize]), c));

        // Min-heap of (load, partition id): pop = least loaded, lowest id on
        // ties. `O(C log k)`.
        let mut heap: BinaryHeap<Reverse<(u64, PartitionId)>> =
            (0..k).map(|p| Reverse((0u64, p))).collect();
        let mut c2p = vec![0 as PartitionId; volumes.len()];
        let mut partition_volumes = vec![0u64; k as usize];
        for c in order {
            let Reverse((load, p)) = heap.pop().expect("heap holds k entries");
            c2p[c as usize] = p;
            let new_load = load + volumes[c as usize];
            partition_volumes[p as usize] = new_load;
            heap.push(Reverse((new_load, p)));
        }
        ClusterPlacement {
            c2p,
            partition_volumes,
        }
    }

    /// First-fit placement in cluster-id order (no sorting) — ablation
    /// baseline showing what Graham's sorting buys.
    pub fn unsorted_schedule(clustering: &Clustering, k: u32) -> Self {
        assert!(k > 0, "k must be positive");
        let volumes = clustering.volumes();
        let mut heap: BinaryHeap<Reverse<(u64, PartitionId)>> =
            (0..k).map(|p| Reverse((0u64, p))).collect();
        let mut c2p = vec![0 as PartitionId; volumes.len()];
        let mut partition_volumes = vec![0u64; k as usize];
        for c in 0..volumes.len() {
            let Reverse((load, p)) = heap.pop().expect("heap holds k entries");
            c2p[c] = p;
            let new_load = load + volumes[c];
            partition_volumes[p as usize] = new_load;
            heap.push(Reverse((new_load, p)));
        }
        ClusterPlacement {
            c2p,
            partition_volumes,
        }
    }

    /// Reconstruct a placement from a shipped cluster→partition map (the
    /// distributed runtime computes the placement once on the coordinator
    /// and broadcasts `c2p`; workers rebuild the volume sums from the merged
    /// clustering so makespan reporting stays exact).
    ///
    /// # Panics
    /// Panics if a partition id in `c2p` is `>= k` or `c2p` is shorter than
    /// the clustering's id space.
    pub fn from_c2p(c2p: Vec<PartitionId>, clustering: &Clustering, k: u32) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(
            c2p.len() >= clustering.num_cluster_ids() as usize,
            "c2p covers {} clusters, clustering has {}",
            c2p.len(),
            clustering.num_cluster_ids()
        );
        let mut partition_volumes = vec![0u64; k as usize];
        for (c, &p) in c2p.iter().enumerate() {
            assert!(p < k, "partition id {p} out of range (k = {k})");
            if let Some(&vol) = clustering.volumes().get(c) {
                partition_volumes[p as usize] += vol;
            }
        }
        ClusterPlacement {
            c2p,
            partition_volumes,
        }
    }

    /// Partition of cluster `c`.
    #[inline]
    pub fn partition_of(&self, c: ClusterId) -> PartitionId {
        self.c2p[c as usize]
    }

    /// The raw cluster→partition map (what the coordinator broadcasts).
    pub fn c2p(&self) -> &[PartitionId] {
        &self.c2p
    }

    /// Number of clusters this placement covers (clusters created after the
    /// placement — e.g. by incremental insertion — are not in it).
    #[inline]
    pub fn num_clusters(&self) -> u32 {
        self.c2p.len() as u32
    }

    /// Summed cluster volumes per partition.
    pub fn partition_volumes(&self) -> &[u64] {
        &self.partition_volumes
    }

    /// Makespan: the largest per-partition volume.
    pub fn makespan(&self) -> u64 {
        self.partition_volumes.iter().copied().max().unwrap_or(0)
    }
}

/// Schedule *live* (volume > 0) clusters onto `k` partitions without
/// materialising a full cluster→partition array — the out-of-core mapping
/// step, which writes each placement through `place` (into the paged `c2p`
/// array) as it is decided.
///
/// `live` must list the live clusters in ascending id order (the paged
/// volume scan's natural order); `sorted` selects Graham LPT
/// ([`ClusterPlacement::sorted_list_schedule`]) vs. first-fit id order
/// ([`ClusterPlacement::unsorted_schedule`]).
///
/// Bit-identity with the full-array schedulers: zero-volume clusters
/// cannot change any live cluster's placement. Under LPT they sort after
/// every live cluster, so by the time one is placed all live placements
/// are already fixed; under first-fit a zero-volume cluster pops the
/// least-loaded partition and pushes the same load back, leaving the
/// heap's (load, partition) multiset — the only state later pops observe —
/// unchanged. Since only live clusters are ever queried by phase 2 (a
/// stream vertex has degree ≥ 1, so its cluster has volume ≥ 1), skipping
/// the zero-volume ids is output-invariant.
pub fn schedule_live_clusters(
    live: &mut [(ClusterId, u64)],
    k: u32,
    sorted: bool,
    mut place: impl FnMut(ClusterId, PartitionId),
) {
    assert!(k > 0, "k must be positive");
    debug_assert!(live.windows(2).all(|w| w[0].0 < w[1].0), "ids must ascend");
    if sorted {
        live.sort_by_key(|&(c, vol)| (Reverse(vol), c));
    }
    let mut heap: BinaryHeap<Reverse<(u64, PartitionId)>> =
        (0..k).map(|p| Reverse((0u64, p))).collect();
    for &(c, vol) in live.iter() {
        let Reverse((load, p)) = heap.pop().expect("heap holds k entries");
        place(c, p);
        heap.push(Reverse((load + vol, p)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_clustering::model::Clustering;

    fn clustering_with_volumes(volumes: Vec<u64>) -> Clustering {
        // Build a v2c where vertex i belongs to cluster i (degrees unused here).
        let v2c: Vec<u32> = (0..volumes.len() as u32).collect();
        Clustering::from_parts(v2c, volumes)
    }

    #[test]
    fn graham_balances_classic_example() {
        // Volumes 7,6,5,4,3 on 2 machines: LPT gives {7,4,3}=14 vs {6,5}=11.
        let c = clustering_with_volumes(vec![7, 6, 5, 4, 3]);
        let p = ClusterPlacement::sorted_list_schedule(&c, 2);
        assert_eq!(p.makespan(), 14);
        let total: u64 = p.partition_volumes().iter().sum();
        assert_eq!(total, 25);
    }

    #[test]
    fn graham_beats_or_equals_unsorted() {
        let vols = vec![1, 1, 1, 1, 9, 8, 7, 2, 2, 3];
        let c = clustering_with_volumes(vols);
        let sorted = ClusterPlacement::sorted_list_schedule(&c, 3);
        let unsorted = ClusterPlacement::unsorted_schedule(&c, 3);
        assert!(sorted.makespan() <= unsorted.makespan());
    }

    #[test]
    fn within_four_thirds_of_lower_bound() {
        // LPT guarantee: makespan ≤ 4/3 · OPT; OPT ≥ max(total/k, max job).
        let vols: Vec<u64> = (1..=40).map(|i| (i * 13) % 23 + 1).collect();
        let total: u64 = vols.iter().sum();
        let max_job = *vols.iter().max().unwrap();
        for k in [2u32, 3, 5, 8] {
            let c = clustering_with_volumes(vols.clone());
            let p = ClusterPlacement::sorted_list_schedule(&c, k);
            let lower = (total as f64 / k as f64).max(max_job as f64);
            assert!(
                p.makespan() as f64 <= lower * 4.0 / 3.0 + 1.0,
                "k={k}: makespan {} vs bound {}",
                p.makespan(),
                lower * 4.0 / 3.0
            );
        }
    }

    #[test]
    fn single_partition_takes_everything() {
        let c = clustering_with_volumes(vec![3, 1, 4]);
        let p = ClusterPlacement::sorted_list_schedule(&c, 1);
        assert_eq!(p.makespan(), 8);
        for cl in 0..3u32 {
            assert_eq!(p.partition_of(cl), 0);
        }
    }

    #[test]
    fn more_partitions_than_clusters() {
        let c = clustering_with_volumes(vec![5, 2]);
        let p = ClusterPlacement::sorted_list_schedule(&c, 8);
        assert_eq!(p.makespan(), 5);
        assert_ne!(p.partition_of(0), p.partition_of(1));
    }

    #[test]
    fn deterministic() {
        let vols: Vec<u64> = (0..100).map(|i| (i * 7) % 31 + 1).collect();
        let c = clustering_with_volumes(vols);
        let a = ClusterPlacement::sorted_list_schedule(&c, 4);
        let b = ClusterPlacement::sorted_list_schedule(&c, 4);
        assert_eq!(a.c2p, b.c2p);
    }

    #[test]
    fn from_c2p_rebuilds_volumes() {
        let c = clustering_with_volumes(vec![5, 2, 7]);
        let original = ClusterPlacement::sorted_list_schedule(&c, 2);
        let rebuilt = ClusterPlacement::from_c2p(original.c2p().to_vec(), &c, 2);
        assert_eq!(rebuilt.c2p(), original.c2p());
        assert_eq!(rebuilt.partition_volumes(), original.partition_volumes());
        assert_eq!(rebuilt.makespan(), original.makespan());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_c2p_rejects_bad_partition() {
        let c = clustering_with_volumes(vec![1]);
        ClusterPlacement::from_c2p(vec![5], &c, 2);
    }

    #[test]
    fn empty_clustering() {
        let c = clustering_with_volumes(vec![]);
        let p = ClusterPlacement::sorted_list_schedule(&c, 4);
        assert_eq!(p.makespan(), 0);
    }

    #[test]
    fn live_schedule_matches_full_schedulers() {
        // Zero-volume holes, as multi-pass clustering leaves them behind.
        let vols: Vec<u64> = (0..200)
            .map(|i: u64| {
                if i.is_multiple_of(3) {
                    0
                } else {
                    (i * 17) % 41 + 1
                }
            })
            .collect();
        let c = clustering_with_volumes(vols.clone());
        for k in [2u32, 3, 7] {
            for sorted in [true, false] {
                let full = if sorted {
                    ClusterPlacement::sorted_list_schedule(&c, k)
                } else {
                    ClusterPlacement::unsorted_schedule(&c, k)
                };
                let mut live: Vec<(u32, u64)> = vols
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v > 0)
                    .map(|(i, &v)| (i as u32, v))
                    .collect();
                let mut placed = Vec::new();
                schedule_live_clusters(&mut live, k, sorted, |c, p| placed.push((c, p)));
                assert_eq!(placed.len(), vols.iter().filter(|&&v| v > 0).count());
                for (cl, p) in placed {
                    assert_eq!(p, full.partition_of(cl), "k={k} sorted={sorted} c={cl}");
                }
            }
        }
    }
}
