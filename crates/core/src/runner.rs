//! Run outcomes, plus the deprecated convenience shims that predate the
//! unified [`crate::job::JobSpec`] builder.
//!
//! Each run ends with a `tps_obs::drain_local()` barrier so span events
//! recorded on the harness thread are flushed before the caller snapshots
//! the trace.

use std::io;
use std::time::Duration;

use tps_graph::stream::EdgeStream;
use tps_metrics::quality::PartitionMetrics;

use crate::job::{JobSpec, ThreadMode};
use crate::partitioner::{PartitionParams, Partitioner, RunReport};
use crate::sink::AssignmentSink;

/// Everything one partitioning run produces.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Algorithm name.
    pub name: String,
    /// Ground-truth quality metrics (from the emitted assignments).
    pub metrics: PartitionMetrics,
    /// The partitioner's own phase/counter report.
    pub report: RunReport,
    /// End-to-end wall-clock time of the `partition` call.
    pub wall_time: Duration,
    /// Peak heap growth during the run in bytes (0 unless the counting
    /// allocator is installed — bench binaries install it).
    pub peak_heap_bytes: usize,
}

impl RunOutcome {
    /// Wall time in seconds.
    pub fn seconds(&self) -> f64 {
        self.wall_time.as_secs_f64()
    }
}

/// Run `partitioner` over `stream`, measuring quality, time and peak heap.
#[deprecated(note = "build the run through `tps_core::job::JobSpec` instead")]
pub fn run_partitioner<S: EdgeStream + ?Sized>(
    partitioner: &mut dyn Partitioner,
    stream: &mut S,
    num_vertices: u64,
    params: &PartitionParams,
) -> io::Result<RunOutcome> {
    // `&mut S` is itself an `EdgeStream` (blanket impl), giving a sized
    // handle castable to `&mut dyn EdgeStream` even for `S: ?Sized`.
    let mut stream = stream;
    JobSpec::stream(&mut stream)
        .partitioner(partitioner)
        .params(params)
        .num_vertices(num_vertices)
        .run()
}

/// Run with an additional sink receiving every assignment (e.g. a
/// [`crate::sink::VecSink`] feeding the processing simulator) while still
/// collecting ground-truth metrics.
#[deprecated(note = "use `tps_core::job::JobSpec` with `.extra_sink(..)` instead")]
pub fn run_partitioner_with_sink<S: EdgeStream + ?Sized>(
    partitioner: &mut dyn Partitioner,
    stream: &mut S,
    num_vertices: u64,
    params: &PartitionParams,
    extra: &mut dyn AssignmentSink,
) -> io::Result<RunOutcome> {
    let mut stream = stream;
    JobSpec::stream(&mut stream)
        .partitioner(partitioner)
        .params(params)
        .num_vertices(num_vertices)
        .extra_sink(extra)
        .run()
}

/// Run `partitioner` over `stream`, resolving the vertex count from the
/// stream's hints (or a discovery pass when a hint is missing).
#[deprecated(note = "build the run through `tps_core::job::JobSpec` instead")]
pub fn run_partitioner_auto(
    partitioner: &mut dyn Partitioner,
    stream: &mut dyn EdgeStream,
    params: &PartitionParams,
) -> io::Result<RunOutcome> {
    JobSpec::stream(stream)
        .partitioner(partitioner)
        .params(params)
        .run()
}

/// Run a [`crate::parallel::ParallelRunner`] over a ranged source, measuring
/// quality and time the same way the serial path does (benches compare the
/// two outcomes directly).
#[deprecated(note = "use `tps_core::job::JobSpec` with `.threads(..)` instead")]
pub fn run_parallel_partitioner(
    runner: &crate::parallel::ParallelRunner,
    source: &dyn tps_graph::ranged::RangedEdgeSource,
    params: &PartitionParams,
) -> io::Result<RunOutcome> {
    let mut spec = JobSpec::ranged(source)
        .two_phase(*runner.config())
        .params(params)
        .threads(ThreadMode::Count(runner.threads()));
    if let Some(factory) = runner.spool_factory_handle() {
        spec = spec.spool_factory(factory);
    }
    spec.run()
}

#[cfg(test)]
#[allow(deprecated)] // the shims stay covered until their last caller is gone
mod tests {
    use super::*;
    use crate::sink::VecSink;
    use crate::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
    use tps_graph::datasets::Dataset;

    #[test]
    fn run_partitioner_collects_metrics_and_report() {
        let g = Dataset::Ok.generate_scaled(0.01);
        let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
        let params = PartitionParams::new(4);
        let mut stream = g.stream();
        let out = run_partitioner(&mut p, &mut stream, g.num_vertices(), &params).unwrap();
        assert_eq!(out.name, "2PS-L");
        assert_eq!(out.metrics.num_edges, g.num_edges());
        assert!(out.wall_time > Duration::ZERO);
        assert!(!out.report.phases.phases().is_empty());
    }

    #[test]
    fn run_partitioner_auto_resolves_vertex_count() {
        let g = Dataset::Ok.generate_scaled(0.01);
        let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
        let mut stream: Box<dyn tps_graph::stream::EdgeStream> = Box::new(g.stream());
        let out = run_partitioner_auto(&mut p, &mut stream, &PartitionParams::new(4)).unwrap();
        assert_eq!(out.metrics.num_edges, g.num_edges());
    }

    #[test]
    fn extra_sink_sees_all_assignments() {
        let g = Dataset::Ok.generate_scaled(0.01);
        let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
        let params = PartitionParams::new(4);
        let mut extra = VecSink::new();
        let mut stream = g.stream();
        let out =
            run_partitioner_with_sink(&mut p, &mut stream, g.num_vertices(), &params, &mut extra)
                .unwrap();
        assert_eq!(extra.assignments().len() as u64, g.num_edges());
        assert_eq!(out.metrics.num_edges, g.num_edges());
    }
}
