//! Convenience harness for running a partitioner and collecting ground-truth
//! metrics — used by tests, examples and every bench binary.
//!
//! Each run ends with a `tps_obs::drain_local()` barrier so span events
//! recorded on the harness thread are flushed before the caller snapshots
//! the trace.

use std::io;
use std::time::{Duration, Instant};

use tps_graph::stream::EdgeStream;
use tps_metrics::quality::PartitionMetrics;

use crate::partitioner::{PartitionParams, Partitioner, RunReport};
use crate::sink::{AssignmentSink, QualitySink, TeeSink};

/// Everything one partitioning run produces.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Algorithm name.
    pub name: String,
    /// Ground-truth quality metrics (from the emitted assignments).
    pub metrics: PartitionMetrics,
    /// The partitioner's own phase/counter report.
    pub report: RunReport,
    /// End-to-end wall-clock time of the `partition` call.
    pub wall_time: Duration,
    /// Peak heap growth during the run in bytes (0 unless the counting
    /// allocator is installed — bench binaries install it).
    pub peak_heap_bytes: usize,
}

impl RunOutcome {
    /// Wall time in seconds.
    pub fn seconds(&self) -> f64 {
        self.wall_time.as_secs_f64()
    }
}

/// Run `partitioner` over `stream`, measuring quality, time and peak heap.
pub fn run_partitioner<S: EdgeStream + ?Sized>(
    partitioner: &mut dyn Partitioner,
    stream: &mut S,
    num_vertices: u64,
    params: &PartitionParams,
) -> io::Result<RunOutcome> {
    let mut sink = QualitySink::new(num_vertices, params.k);
    let start = Instant::now();
    let (result, peak) = tps_metrics::alloc::measure_peak(|| {
        partitioner.partition(&mut as_dyn(stream), params, &mut sink)
    });
    let report = result?;
    let wall_time = start.elapsed();
    tps_obs::drain_local();
    Ok(RunOutcome {
        name: partitioner.name(),
        metrics: sink.finish(),
        report,
        wall_time,
        peak_heap_bytes: peak,
    })
}

/// Run with an additional sink receiving every assignment (e.g. a
/// [`crate::sink::VecSink`] feeding the processing simulator) while still
/// collecting ground-truth metrics.
pub fn run_partitioner_with_sink<S: EdgeStream + ?Sized>(
    partitioner: &mut dyn Partitioner,
    stream: &mut S,
    num_vertices: u64,
    params: &PartitionParams,
    extra: &mut dyn AssignmentSink,
) -> io::Result<RunOutcome> {
    let mut quality = QualitySink::new(num_vertices, params.k);
    let start = Instant::now();
    let report = {
        let mut tee = TeeSink::new(&mut quality, extra);
        partitioner.partition(&mut as_dyn(stream), params, &mut tee)?
    };
    let wall_time = start.elapsed();
    tps_obs::drain_local();
    Ok(RunOutcome {
        name: partitioner.name(),
        metrics: quality.finish(),
        report,
        wall_time,
        peak_heap_bytes: 0,
    })
}

/// Run `partitioner` over `stream`, resolving the vertex count from the
/// stream's hints (or a discovery pass when a hint is missing).
///
/// This is the entry point for externally opened streams — `tps-io` reader
/// backends, boxed streams from the CLI — where the caller has a
/// `dyn EdgeStream` and no separate graph handle.
pub fn run_partitioner_auto(
    partitioner: &mut dyn Partitioner,
    stream: &mut dyn EdgeStream,
    params: &PartitionParams,
) -> io::Result<RunOutcome> {
    let info = tps_graph::stream::discover_info(stream)?;
    run_partitioner(partitioner, stream, info.num_vertices, params)
}

/// Run a [`crate::parallel::ParallelRunner`] over a ranged source, measuring
/// quality and time the same way [`run_partitioner`] does for serial
/// partitioners (benches compare the two outcomes directly).
pub fn run_parallel_partitioner(
    runner: &crate::parallel::ParallelRunner,
    source: &dyn tps_graph::ranged::RangedEdgeSource,
    params: &PartitionParams,
) -> io::Result<RunOutcome> {
    let info = source.info();
    let mut sink = QualitySink::new(info.num_vertices, params.k);
    let start = Instant::now();
    let (result, peak) =
        tps_metrics::alloc::measure_peak(|| runner.partition(source, params, &mut sink));
    let report = result?;
    let wall_time = start.elapsed();
    tps_obs::drain_local();
    Ok(RunOutcome {
        name: runner.name(),
        metrics: sink.finish(),
        report,
        wall_time,
        peak_heap_bytes: peak,
    })
}

/// View any sized stream as `&mut dyn EdgeStream` (helper for generic fns).
fn as_dyn<S: EdgeStream + ?Sized>(s: &mut S) -> &mut S {
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::VecSink;
    use crate::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
    use tps_graph::datasets::Dataset;

    #[test]
    fn run_partitioner_collects_metrics_and_report() {
        let g = Dataset::Ok.generate_scaled(0.01);
        let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
        let params = PartitionParams::new(4);
        let mut stream = g.stream();
        let out = run_partitioner(&mut p, &mut stream, g.num_vertices(), &params).unwrap();
        assert_eq!(out.name, "2PS-L");
        assert_eq!(out.metrics.num_edges, g.num_edges());
        assert!(out.wall_time > Duration::ZERO);
        assert!(!out.report.phases.phases().is_empty());
    }

    #[test]
    fn run_partitioner_auto_resolves_vertex_count() {
        let g = Dataset::Ok.generate_scaled(0.01);
        let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
        let mut stream: Box<dyn tps_graph::stream::EdgeStream> = Box::new(g.stream());
        let out = run_partitioner_auto(&mut p, &mut stream, &PartitionParams::new(4)).unwrap();
        assert_eq!(out.metrics.num_edges, g.num_edges());
    }

    #[test]
    fn extra_sink_sees_all_assignments() {
        let g = Dataset::Ok.generate_scaled(0.01);
        let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
        let params = PartitionParams::new(4);
        let mut extra = VecSink::new();
        let mut stream = g.stream();
        let out =
            run_partitioner_with_sink(&mut p, &mut stream, g.num_vertices(), &params, &mut extra)
                .unwrap();
        assert_eq!(extra.assignments().len() as u64, g.num_edges());
        assert_eq!(out.metrics.num_edges, g.num_edges());
    }
}
