//! Incremental (dynamic-graph) extension of 2PS-L.
//!
//! The paper points at Fan et al. (VLDB 2020): "2PS-L could be transformed
//! into an incremental algorithm to efficiently handle dynamic graphs with
//! edge insertions and deletions without recomputing the complete
//! partitioning from scratch" (§VI). This module implements that
//! transformation:
//!
//! * [`IncrementalTwoPhase::bootstrap`] runs ordinary 2PS-L over the initial
//!   stream and *retains* the phase state (degrees, clustering, cluster→
//!   partition placement, replication matrix, loads).
//! * [`IncrementalTwoPhase::insert`] assigns a new edge in `O(1)` using the
//!   same two-choice scoring against the retained state. New vertices are
//!   clustered on first contact exactly as the streaming clustering would
//!   (joining the heavier endpoint cluster under the volume cap).
//! * [`IncrementalTwoPhase::remove`] retracts an edge: loads shrink, and
//!   replica bits are dropped when the edge was the vertex's last edge on
//!   that partition (tracked with per-(vertex, partition) counts — the
//!   `O(|V|·k)` budget is preserved, with counts replacing bits).
//!
//! Quality degrades gracefully as the graph drifts from the clustering
//! snapshot; [`IncrementalTwoPhase::staleness`] exposes the drift so callers
//! can schedule a re-bootstrap (the usual deployment loop for incremental
//! partitioners).

use std::collections::HashMap;
use std::io;

use tps_clustering::model::{Clustering, NO_CLUSTER};
use tps_clustering::streaming::{clustering_pass, VolumeCap};
use tps_graph::degree::DegreeTable;
use tps_graph::hash::seeded_hash_to_partition;
use tps_graph::stream::{discover_info, EdgeStream};
use tps_graph::types::{Edge, PartitionId, VertexId};

use crate::two_phase::mapping::ClusterPlacement;
use crate::two_phase::scoring::{two_choice_best, EdgeScoreInputs};
use crate::two_phase::{MappingStrategy, RemainingStrategy, TwoPhaseConfig};

/// Replica reference counts per (vertex, partition): the incremental
/// replacement for the boolean `v2p` matrix, so deletions can retract
/// replicas exactly.
#[derive(Clone, Debug)]
struct ReplicaCounts {
    k: u32,
    counts: Vec<u32>,
}

impl ReplicaCounts {
    fn new(num_vertices: u64, k: u32) -> Self {
        ReplicaCounts {
            k,
            counts: vec![0; (num_vertices * k as u64) as usize],
        }
    }

    #[inline]
    fn idx(&self, v: VertexId, p: PartitionId) -> usize {
        v as usize * self.k as usize + p as usize
    }

    #[inline]
    fn get(&self, v: VertexId, p: PartitionId) -> bool {
        self.counts[self.idx(v, p)] > 0
    }

    #[inline]
    fn add(&mut self, v: VertexId, p: PartitionId) {
        let i = self.idx(v, p);
        self.counts[i] += 1;
    }

    /// Returns true if the last replica on `p` disappeared.
    #[inline]
    fn remove(&mut self, v: VertexId, p: PartitionId) -> bool {
        let i = self.idx(v, p);
        assert!(self.counts[i] > 0, "removing a replica that does not exist");
        self.counts[i] -= 1;
        self.counts[i] == 0
    }

    fn grow_vertices(&mut self, num_vertices: u64) {
        self.counts
            .resize((num_vertices * self.k as u64) as usize, 0);
    }

    fn total_replicas(&self) -> u64 {
        self.counts.iter().filter(|&&c| c > 0).count() as u64
    }

    fn covered(&self) -> u64 {
        self.counts
            .chunks(self.k as usize)
            .filter(|row| row.iter().any(|&c| c > 0))
            .count() as u64
    }
}

/// A live, incrementally maintained 2PS-L partitioning.
pub struct IncrementalTwoPhase {
    config: TwoPhaseConfig,
    k: u32,
    cap_per_partition: u64,
    volume_cap: u64,
    degrees: Vec<u32>,
    clustering: Clustering,
    placement: ClusterPlacement,
    /// Partitions of clusters created *after* bootstrap (indexed by
    /// `cluster_id − placement.num_clusters()`): each new cluster is pinned
    /// to the least-loaded partition at creation time.
    late_cluster_partitions: Vec<PartitionId>,
    replicas: ReplicaCounts,
    loads: Vec<u64>,
    /// Live assignment of each edge (canonicalised) — needed for deletions.
    /// `O(|E|)` and therefore *not* out-of-core; incremental maintenance of
    /// dynamic graphs inherently requires an edge→partition lookup (see Fan
    /// et al.), which deployments keep in the DB/storage layer.
    assignment: HashMap<Edge, PartitionId>,
    mutations_since_bootstrap: u64,
    bootstrap_edges: u64,
}

impl IncrementalTwoPhase {
    /// Run 2PS-L over `stream` and retain all state for incremental updates.
    ///
    /// `extra_capacity_factor ≥ 1` head-room multiplies the per-partition
    /// cap so future insertions do not immediately saturate partitions.
    pub fn bootstrap<S: EdgeStream + ?Sized>(
        stream: &mut S,
        k: u32,
        alpha: f64,
        extra_capacity_factor: f64,
        config: TwoPhaseConfig,
    ) -> io::Result<Self> {
        assert!(k > 0);
        assert!(extra_capacity_factor >= 1.0);
        let info = discover_info(stream)?;
        let degrees_table = DegreeTable::compute(stream, info.num_vertices)?;
        let volume_cap = VolumeCap::FractionOfTotal(config.volume_cap_factor / k as f64)
            .resolve(degrees_table.total_volume().max(1));
        let mut clustering = Clustering::empty(info.num_vertices);
        for _ in 0..config.clustering_passes {
            clustering_pass(stream, &degrees_table, volume_cap, &mut clustering)?;
        }
        let placement = ClusterPlacement::sorted_list_schedule(&clustering, k);

        let cap = ((alpha * info.num_edges as f64 / k as f64).floor() as u64)
            .max(info.num_edges.div_ceil(k as u64));
        let mut this = IncrementalTwoPhase {
            config,
            k,
            cap_per_partition: ((cap as f64) * extra_capacity_factor).ceil() as u64,
            volume_cap,
            degrees: degrees_table.as_slice().to_vec(),
            clustering,
            placement,
            late_cluster_partitions: Vec::new(),
            replicas: ReplicaCounts::new(info.num_vertices, k),
            loads: vec![0; k as usize],
            assignment: HashMap::with_capacity(info.num_edges as usize),
            mutations_since_bootstrap: 0,
            bootstrap_edges: info.num_edges,
        };
        // Assign the bootstrap edges with the standard two passes.
        stream.reset()?;
        while let Some(e) = stream.next_edge()? {
            if this.prepartition_target(e).is_some() {
                let p = this.choose_partition(e);
                this.commit(e, p);
            }
        }
        stream.reset()?;
        while let Some(e) = stream.next_edge()? {
            if this.prepartition_target(e).is_none() {
                let p = this.choose_partition(e);
                this.commit(e, p);
            }
        }
        Ok(this)
    }

    fn ensure_vertex(&mut self, v: VertexId) {
        if (v as usize) < self.degrees.len() {
            return;
        }
        let new_len = v as usize + 1;
        self.degrees.resize(new_len, 0);
        self.replicas.grow_vertices(new_len as u64);
        // Clustering needs room too; new vertices are unassigned for now.
        let mut v2c = vec![NO_CLUSTER; new_len];
        for (u, slot) in v2c
            .iter_mut()
            .take(self.clustering.num_vertices() as usize)
            .enumerate()
        {
            *slot = self.clustering.raw_cluster_of(u as u32);
        }
        self.clustering = Clustering::from_parts(v2c, self.clustering.volumes().to_vec());
    }

    /// Partition of a cluster, covering clusters created after bootstrap.
    #[inline]
    fn cluster_partition(&self, c: u32) -> PartitionId {
        if c < self.placement.num_clusters() {
            self.placement.partition_of(c)
        } else {
            self.late_cluster_partitions[(c - self.placement.num_clusters()) as usize]
        }
    }

    /// Cluster a vertex on first contact, mirroring the streaming rule: join
    /// the other endpoint's cluster if the cap allows, else start fresh
    /// (new clusters are pinned to the currently least-loaded partition).
    fn cluster_on_first_contact(&mut self, v: VertexId, other: VertexId) {
        if self.clustering.raw_cluster_of(v) != NO_CLUSTER {
            return;
        }
        let dv = self.degrees[v as usize].max(1) as u64;
        let co = self.clustering.raw_cluster_of(other);
        if co != NO_CLUSTER && self.clustering.volume(co) + dv <= self.volume_cap {
            self.clustering.create_cluster(v, dv);
            // Merge into the neighbour's cluster immediately.
            self.clustering.migrate(v, dv, co);
        } else {
            self.clustering.create_cluster(v, dv);
        }
        // Pin any clusters the placement has not seen.
        while self.placement.num_clusters() as usize + self.late_cluster_partitions.len()
            < self.clustering.num_cluster_ids() as usize
        {
            let p = self
                .loads
                .iter()
                .enumerate()
                .min_by_key(|&(i, &l)| (l, i))
                .map(|(i, _)| i as u32)
                .expect("k >= 1");
            self.late_cluster_partitions.push(p);
        }
    }

    #[inline]
    fn prepartition_target(&self, e: Edge) -> Option<PartitionId> {
        let cu = self.clustering.raw_cluster_of(e.src);
        let cv = self.clustering.raw_cluster_of(e.dst);
        if cu == NO_CLUSTER || cv == NO_CLUSTER {
            return None;
        }
        let pu = self.cluster_partition(cu);
        if cu == cv {
            return Some(pu);
        }
        (self.cluster_partition(cv) == pu).then_some(pu)
    }

    /// Two-choice scoring against the retained state (`O(1)` per edge).
    fn choose_partition(&self, e: Edge) -> PartitionId {
        let cu = self.clustering.raw_cluster_of(e.src);
        let cv = self.clustering.raw_cluster_of(e.dst);
        let candidate = if cu == NO_CLUSTER || cv == NO_CLUSTER {
            None
        } else {
            let inputs = EdgeScoreInputs {
                u: e.src,
                v: e.dst,
                du: self.degrees[e.src as usize].max(1) as u64,
                dv: self.degrees[e.dst as usize].max(1) as u64,
                vol_cu: self.clustering.volume(cu),
                vol_cv: self.clustering.volume(cv),
                pu: self.cluster_partition(cu),
                pv: self.cluster_partition(cv),
            };
            // Score against counts-backed replicas through a bit view.
            let best = self.two_choice_with_counts(&inputs);
            Some(best)
        };
        let mut p = candidate.unwrap_or_else(|| {
            let hv = if self.degrees[e.src as usize] >= self.degrees[e.dst as usize] {
                e.src
            } else {
                e.dst
            };
            seeded_hash_to_partition(hv, self.config.hash_seed, self.k)
        });
        if self.loads[p as usize] >= self.cap_per_partition {
            // Hash fallback, then least loaded.
            let hv = if self.degrees[e.src as usize] >= self.degrees[e.dst as usize] {
                e.src
            } else {
                e.dst
            };
            p = seeded_hash_to_partition(hv, self.config.hash_seed, self.k);
            if self.loads[p as usize] >= self.cap_per_partition {
                p = self
                    .loads
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &l)| (l, i))
                    .map(|(i, _)| i as u32)
                    .expect("k >= 1");
            }
        }
        p
    }

    fn two_choice_with_counts(&self, inputs: &EdgeScoreInputs) -> PartitionId {
        // Build a tiny 2-partition view over the counts (two_choice_best
        // needs a ReplicationMatrix; avoid constructing one by inlining the
        // score here for the counts backend).
        if inputs.pu == inputs.pv {
            return inputs.pu;
        }
        let score = |p: PartitionId| -> f64 {
            let d_sum = (inputs.du + inputs.dv) as f64;
            let vol_sum = (inputs.vol_cu + inputs.vol_cv) as f64;
            let mut s = 0.0;
            if self.replicas.get(inputs.u, p) {
                s += 1.0 + (1.0 - inputs.du as f64 / d_sum);
            }
            if self.replicas.get(inputs.v, p) {
                s += 1.0 + (1.0 - inputs.dv as f64 / d_sum);
            }
            if inputs.pu == p {
                s += inputs.vol_cu as f64 / vol_sum;
            }
            if inputs.pv == p {
                s += inputs.vol_cv as f64 / vol_sum;
            }
            s
        };
        if score(inputs.pv) > score(inputs.pu) {
            inputs.pv
        } else {
            inputs.pu
        }
    }

    fn commit(&mut self, e: Edge, p: PartitionId) {
        self.replicas.add(e.src, p);
        self.replicas.add(e.dst, p);
        self.loads[p as usize] += 1;
        self.assignment.insert(e.canonical(), p);
    }

    /// Insert a new edge; returns its partition. `O(1)`.
    ///
    /// # Panics
    /// Panics if the (canonicalised) edge is already present.
    pub fn insert(&mut self, e: Edge) -> PartitionId {
        assert!(
            !self.assignment.contains_key(&e.canonical()),
            "edge {e:?} already present"
        );
        self.ensure_vertex(e.src.max(e.dst));
        self.degrees[e.src as usize] += 1;
        self.degrees[e.dst as usize] += 1;
        self.cluster_on_first_contact(e.src, e.dst);
        self.cluster_on_first_contact(e.dst, e.src);
        let p = self.choose_partition(e);
        self.commit(e, p);
        self.mutations_since_bootstrap += 1;
        p
    }

    /// Remove an edge; returns the partition it lived on, or `None` if it
    /// was not present. `O(1)`.
    pub fn remove(&mut self, e: Edge) -> Option<PartitionId> {
        let p = self.assignment.remove(&e.canonical())?;
        self.loads[p as usize] -= 1;
        self.degrees[e.src as usize] -= 1;
        self.degrees[e.dst as usize] -= 1;
        self.replicas.remove(e.src, p);
        self.replicas.remove(e.dst, p);
        self.mutations_since_bootstrap += 1;
        Some(p)
    }

    /// Partition of a live edge.
    pub fn partition_of(&self, e: Edge) -> Option<PartitionId> {
        self.assignment.get(&e.canonical()).copied()
    }

    /// Live edge count.
    pub fn num_edges(&self) -> u64 {
        self.assignment.len() as u64
    }

    /// Per-partition edge counts.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Current replication factor over covered vertices.
    pub fn replication_factor(&self) -> f64 {
        let covered = self.replicas.covered();
        if covered == 0 {
            0.0
        } else {
            self.replicas.total_replicas() as f64 / covered as f64
        }
    }

    /// Mutations (insertions *and* deletions) since bootstrap relative to
    /// the bootstrap size — the drift signal for scheduling a re-bootstrap.
    pub fn staleness(&self) -> f64 {
        self.mutations_since_bootstrap as f64 / self.bootstrap_edges.max(1) as f64
    }

    /// Number of partitions.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Vertex-id space currently tracked (`max id + 1`).
    pub fn num_vertices(&self) -> u64 {
        self.degrees.len() as u64
    }

    /// Whether vertex `v` currently has a replica on partition `p`.
    pub fn has_replica(&self, v: VertexId, p: PartitionId) -> bool {
        (v as u64) < self.num_vertices() && self.replicas.get(v, p)
    }

    /// The partitions vertex `v` currently has replicas on, ascending.
    /// Exact under churn (counts-backed, unlike a sticky bit matrix).
    pub fn replicas_of(&self, v: VertexId) -> Vec<PartitionId> {
        if (v as u64) >= self.num_vertices() {
            return Vec::new();
        }
        (0..self.k).filter(|&p| self.replicas.get(v, p)).collect()
    }

    /// Every live `(edge, partition)` pair, canonicalised, in hash order.
    pub fn assignments(&self) -> impl Iterator<Item = (Edge, PartitionId)> + '_ {
        self.assignment.iter().map(|(&e, &p)| (e, p))
    }

    /// Adopt a finished partitioning as the bootstrap state: the retained
    /// phase state (degrees, clustering, placement) is re-derived from the
    /// edges exactly as [`IncrementalTwoPhase::bootstrap`] would, but every
    /// edge keeps the partition it was given — the live assignment equals
    /// `assignments` bit for bit. This is how the serving daemon promotes a
    /// partition loaded from disk to the incremental write path.
    pub fn adopt(
        assignments: &[(Edge, PartitionId)],
        num_vertices: u64,
        k: u32,
        alpha: f64,
        extra_capacity_factor: f64,
        config: TwoPhaseConfig,
    ) -> io::Result<Self> {
        assert!(k > 0);
        assert!(extra_capacity_factor >= 1.0);
        let edges: Vec<Edge> = assignments.iter().map(|&(e, _)| e).collect();
        let graph = tps_graph::stream::InMemoryGraph::with_num_vertices(edges, num_vertices);
        let mut stream = graph.stream();
        let num_edges = assignments.len() as u64;
        let degrees_table = DegreeTable::compute(&mut stream, num_vertices)?;
        let volume_cap = VolumeCap::FractionOfTotal(config.volume_cap_factor / k as f64)
            .resolve(degrees_table.total_volume().max(1));
        let mut clustering = Clustering::empty(num_vertices);
        for _ in 0..config.clustering_passes {
            clustering_pass(&mut stream, &degrees_table, volume_cap, &mut clustering)?;
        }
        let placement = ClusterPlacement::sorted_list_schedule(&clustering, k);
        let cap = ((alpha * num_edges as f64 / k as f64).floor() as u64)
            .max(num_edges.div_ceil(k as u64));
        let mut this = IncrementalTwoPhase {
            config,
            k,
            cap_per_partition: ((cap as f64) * extra_capacity_factor).ceil() as u64,
            volume_cap,
            degrees: degrees_table.as_slice().to_vec(),
            clustering,
            placement,
            late_cluster_partitions: Vec::new(),
            replicas: ReplicaCounts::new(num_vertices, k),
            loads: vec![0; k as usize],
            assignment: HashMap::with_capacity(assignments.len()),
            mutations_since_bootstrap: 0,
            bootstrap_edges: num_edges,
        };
        for &(e, p) in assignments {
            assert!(p < k, "partition id {p} out of range (k = {k})");
            assert!(
                !this.assignment.contains_key(&e.canonical()),
                "duplicate edge {e:?} in adopted assignment"
            );
            this.commit(e, p);
        }
        Ok(this)
    }
}

// ---------------------------------------------------------------------------
// Snapshot / restore of the retained phase state.
//
// A serving daemon re-bootstrapping on every restart would pay the full
// two-pass cost; the snapshot persists everything `insert`/`remove` touch so
// a restarted daemon resumes with *identical* future decisions. The format
// is a little-endian byte stream behind an 8-byte magic; clusterings reuse
// their wire codec.
// ---------------------------------------------------------------------------

/// Magic + version prefix of the snapshot format.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"TPSINCR1";

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian reader over the snapshot bytes.
struct SnapReader<'a> {
    bytes: &'a [u8],
}

impl<'a> SnapReader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.bytes.len() < n {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "snapshot truncated: need {n} bytes, have {}",
                    self.bytes.len()
                ),
            ));
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn len(&mut self, what: &str) -> io::Result<usize> {
        let n = self.u64()?;
        // A length can never exceed the remaining bytes (every element is
        // at least one byte) — reject early instead of allocating.
        if n > self.bytes.len() as u64 {
            return Err(bad_snapshot(format!("{what} length {n} exceeds input")));
        }
        Ok(n as usize)
    }
}

fn bad_snapshot(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl IncrementalTwoPhase {
    /// Serialise the full retained state (config, degrees, clustering,
    /// placement, replica counts are *re-derivable* — they are rebuilt from
    /// the assignment on read — loads, assignment, drift counters).
    ///
    /// The assignment is written sorted by `(src, dst)` so identical state
    /// produces identical bytes.
    pub fn write_snapshot<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        // Config.
        put_u32(&mut out, self.config.clustering_passes);
        put_f64(&mut out, self.config.volume_cap_factor);
        match self.config.strategy {
            RemainingStrategy::TwoChoice => out.push(0),
            RemainingStrategy::Hdrf(p) => {
                out.push(1);
                put_f64(&mut out, p.lambda);
                put_f64(&mut out, p.epsilon);
            }
        }
        out.push(match self.config.mapping {
            MappingStrategy::SortedGraham => 0,
            MappingStrategy::UnsortedFirstFit => 1,
        });
        out.push(self.config.prepartitioning as u8);
        put_u64(&mut out, self.config.hash_seed);
        // Scalars.
        put_u32(&mut out, self.k);
        put_u64(&mut out, self.cap_per_partition);
        put_u64(&mut out, self.volume_cap);
        // Degrees.
        put_u64(&mut out, self.degrees.len() as u64);
        for &d in &self.degrees {
            put_u32(&mut out, d);
        }
        // Clustering (wire codec).
        self.clustering.encode_into(&mut out);
        // Placement, with post-bootstrap cluster pins merged in: behaviour
        // is identical (`cluster_partition` resolves the same partition for
        // every cluster id) and the merged form round-trips bit-stably.
        put_u64(
            &mut out,
            (self.placement.num_clusters() as usize + self.late_cluster_partitions.len()) as u64,
        );
        for &p in self.placement.c2p() {
            put_u32(&mut out, p);
        }
        for &p in &self.late_cluster_partitions {
            put_u32(&mut out, p);
        }
        // Loads.
        for &l in &self.loads {
            put_u64(&mut out, l);
        }
        // Assignment, sorted for deterministic bytes.
        let mut pairs: Vec<(Edge, PartitionId)> =
            self.assignment.iter().map(|(&e, &p)| (e, p)).collect();
        pairs.sort_unstable_by_key(|&(e, _)| (e.src, e.dst));
        put_u64(&mut out, pairs.len() as u64);
        for (e, p) in pairs {
            put_u32(&mut out, e.src);
            put_u32(&mut out, e.dst);
            put_u32(&mut out, p);
        }
        // Drift counters.
        put_u64(&mut out, self.mutations_since_bootstrap);
        put_u64(&mut out, self.bootstrap_edges);
        w.write_all(&out)
    }

    /// Restore a partitioning from [`IncrementalTwoPhase::write_snapshot`]
    /// bytes. Future `insert`/`remove` decisions are identical to the
    /// snapshotted instance's.
    pub fn read_snapshot<R: io::Read>(r: &mut R) -> io::Result<Self> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        let mut rd = SnapReader { bytes: &bytes };
        if rd.take(8)? != SNAPSHOT_MAGIC {
            return Err(bad_snapshot("not an incremental-state snapshot"));
        }
        let clustering_passes = rd.u32()?;
        let volume_cap_factor = rd.f64()?;
        let strategy = match rd.u8()? {
            0 => RemainingStrategy::TwoChoice,
            1 => {
                let lambda = rd.f64()?;
                let epsilon = rd.f64()?;
                RemainingStrategy::Hdrf(crate::two_phase::scoring::HdrfParams { lambda, epsilon })
            }
            t => return Err(bad_snapshot(format!("unknown strategy tag {t}"))),
        };
        let mapping = match rd.u8()? {
            0 => MappingStrategy::SortedGraham,
            1 => MappingStrategy::UnsortedFirstFit,
            t => return Err(bad_snapshot(format!("unknown mapping tag {t}"))),
        };
        let prepartitioning = rd.u8()? != 0;
        let hash_seed = rd.u64()?;
        let config = TwoPhaseConfig {
            clustering_passes,
            volume_cap_factor,
            strategy,
            mapping,
            prepartitioning,
            hash_seed,
        };
        let k = rd.u32()?;
        if k == 0 {
            return Err(bad_snapshot("snapshot has k = 0"));
        }
        let cap_per_partition = rd.u64()?;
        let volume_cap = rd.u64()?;
        let n_deg = rd.len("degrees")?;
        let mut degrees = Vec::with_capacity(n_deg);
        for _ in 0..n_deg {
            degrees.push(rd.u32()?);
        }
        let (clustering, rest) = Clustering::decode_from(rd.bytes).map_err(bad_snapshot)?;
        rd.bytes = rest;
        let n_c2p = rd.len("placement")?;
        let mut c2p = Vec::with_capacity(n_c2p);
        for _ in 0..n_c2p {
            let p = rd.u32()?;
            if p >= k {
                return Err(bad_snapshot(format!("placement partition {p} >= k {k}")));
            }
            c2p.push(p);
        }
        if c2p.len() < clustering.num_cluster_ids() as usize {
            return Err(bad_snapshot(
                "placement covers fewer clusters than clustering",
            ));
        }
        let placement = ClusterPlacement::from_c2p(c2p, &clustering, k);
        let mut loads = Vec::with_capacity(k as usize);
        for _ in 0..k {
            loads.push(rd.u64()?);
        }
        let n_edges = rd.len("assignment")?;
        let mut this = IncrementalTwoPhase {
            config,
            k,
            cap_per_partition,
            volume_cap,
            degrees,
            clustering,
            placement,
            late_cluster_partitions: Vec::new(),
            replicas: ReplicaCounts::new(0, k),
            loads,
            assignment: HashMap::with_capacity(n_edges),
            mutations_since_bootstrap: 0,
            bootstrap_edges: 0,
        };
        this.replicas.grow_vertices(this.degrees.len() as u64);
        for _ in 0..n_edges {
            let src = rd.u32()?;
            let dst = rd.u32()?;
            let p = rd.u32()?;
            if p >= k {
                return Err(bad_snapshot(format!("assignment partition {p} >= k {k}")));
            }
            let e = Edge { src, dst };
            if (e.src.max(e.dst) as usize) >= this.degrees.len() {
                return Err(bad_snapshot(format!("edge {e:?} outside the vertex space")));
            }
            // Rebuild replica counts from the assignment (they are fully
            // determined by it); keep the loads as written and cross-check.
            this.replicas.add(e.src, p);
            this.replicas.add(e.dst, p);
            if this.assignment.insert(e.canonical(), p).is_some() {
                return Err(bad_snapshot(format!("duplicate edge {e:?} in snapshot")));
            }
        }
        let mut counted = vec![0u64; k as usize];
        for &p in this.assignment.values() {
            counted[p as usize] += 1;
        }
        if counted != this.loads {
            return Err(bad_snapshot("snapshot loads disagree with its assignment"));
        }
        this.mutations_since_bootstrap = rd.u64()?;
        this.bootstrap_edges = rd.u64()?;
        Ok(this)
    }
}

// `two_choice_best` is used by the streaming path; referenced here so the
// incremental module stays in sync with any scoring change (compile error on
// signature drift).
#[allow(dead_code)]
fn _assert_scoring_signature(i: &EdgeScoreInputs, m: &tps_metrics::bitmatrix::ReplicationMatrix) {
    let _ = two_choice_best(i, m);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_graph::datasets::Dataset;
    use tps_graph::gen::gnm;

    fn bootstrap(scale: f64, k: u32) -> (IncrementalTwoPhase, tps_graph::InMemoryGraph) {
        let g = Dataset::It.generate_scaled(scale);
        let mut stream = g.stream();
        let inc =
            IncrementalTwoPhase::bootstrap(&mut stream, k, 1.05, 1.5, TwoPhaseConfig::default())
                .unwrap();
        (inc, g)
    }

    #[test]
    fn bootstrap_assigns_everything() {
        let (inc, g) = bootstrap(0.01, 8);
        assert_eq!(inc.num_edges(), g.num_edges());
        assert_eq!(inc.loads().iter().sum::<u64>(), g.num_edges());
        assert!(inc.replication_factor() >= 1.0);
    }

    #[test]
    fn insert_then_remove_restores_state() {
        let (mut inc, _) = bootstrap(0.01, 8);
        let rf_before = inc.replication_factor();
        let edges_before = inc.num_edges();
        let e = Edge::new(1_000_000, 1_000_001); // brand-new vertices
        let p = inc.insert(e);
        assert_eq!(inc.partition_of(e), Some(p));
        assert_eq!(inc.num_edges(), edges_before + 1);
        assert_eq!(inc.remove(e), Some(p));
        assert_eq!(inc.num_edges(), edges_before);
        assert!((inc.replication_factor() - rf_before).abs() < 1e-12);
        assert_eq!(inc.remove(e), None, "double remove");
    }

    #[test]
    fn inserted_edges_respect_headroom_cap() {
        let (mut inc, g) = bootstrap(0.01, 4);
        let cap = ((1.05 * g.num_edges() as f64 / 4.0) * 1.5).ceil() as u64;
        // Insert a burst of new edges between existing vertices.
        for i in 0..2000u32 {
            let e = Edge::new(i % 97, 97 + (i * 7) % 101);
            if inc.partition_of(e).is_none() {
                inc.insert(e);
            }
        }
        assert!(
            inc.loads().iter().all(|&l| l <= cap),
            "{:?} cap {cap}",
            inc.loads()
        );
    }

    #[test]
    fn incremental_quality_tracks_full_recompute() {
        // Bootstrap on 80 % of the edges, insert the remaining 20 %
        // incrementally; the resulting RF should stay close to a full 2PS-L
        // run over everything.
        let g = Dataset::It.generate_scaled(0.02);
        let all = g.edges();
        let cut = all.len() * 8 / 10;
        let first = tps_graph::stream::InMemoryGraph::with_num_vertices(
            all[..cut].to_vec(),
            g.num_vertices(),
        );
        let k = 8;
        let mut stream = first.stream();
        let mut inc =
            IncrementalTwoPhase::bootstrap(&mut stream, k, 1.05, 1.3, TwoPhaseConfig::default())
                .unwrap();
        for &e in &all[cut..] {
            inc.insert(e);
        }
        assert_eq!(inc.num_edges(), g.num_edges());

        let mut p = crate::two_phase::TwoPhasePartitioner::new(TwoPhaseConfig::default());
        let mut sink = crate::sink::QualitySink::new(g.num_vertices(), k);
        crate::partitioner::Partitioner::partition(
            &mut p,
            &mut g.stream(),
            &crate::partitioner::PartitionParams::new(k),
            &mut sink,
        )
        .unwrap();
        let full = sink.finish().replication_factor;
        let incr = inc.replication_factor();
        assert!(
            incr <= full * 1.30,
            "incremental rf {incr} drifted too far from full recompute {full}"
        );
        assert!((inc.staleness() - 0.25).abs() < 0.01); // 20 %/80 %
    }

    #[test]
    fn adopt_preserves_every_assignment() {
        let (inc, g) = bootstrap(0.01, 8);
        let pairs: Vec<(Edge, tps_graph::types::PartitionId)> = inc.assignments().collect();
        let adopted = IncrementalTwoPhase::adopt(
            &pairs,
            g.num_vertices(),
            8,
            1.05,
            1.5,
            TwoPhaseConfig::default(),
        )
        .unwrap();
        assert_eq!(adopted.num_edges(), inc.num_edges());
        for &(e, p) in &pairs {
            assert_eq!(adopted.partition_of(e), Some(p));
        }
        assert_eq!(adopted.loads(), inc.loads());
        assert!((adopted.replication_factor() - inc.replication_factor()).abs() < 1e-12);
    }

    #[test]
    fn snapshot_roundtrip_preserves_future_decisions() {
        let (mut inc, _) = bootstrap(0.01, 8);
        // Drift a little so late clusters and counters are exercised.
        for i in 0..50u32 {
            inc.insert(Edge::new(2_000_000 + i, 2_000_001 + i));
        }
        inc.remove(Edge::new(2_000_000, 2_000_001)).unwrap();
        let mut bytes = Vec::new();
        inc.write_snapshot(&mut bytes).unwrap();
        let mut restored = IncrementalTwoPhase::read_snapshot(&mut &bytes[..]).unwrap();
        assert_eq!(restored.num_edges(), inc.num_edges());
        assert_eq!(restored.loads(), inc.loads());
        assert!((restored.staleness() - inc.staleness()).abs() < 1e-12);
        // Same future decisions on both instances.
        for i in 0..200u32 {
            let e = Edge::new(3 * i + 1, 7 * i + 2);
            match (inc.partition_of(e), restored.partition_of(e)) {
                (None, None) => assert_eq!(inc.insert(e), restored.insert(e), "edge {e:?}"),
                (a, b) => assert_eq!(a, b),
            }
        }
        // And a re-snapshot of the restored instance is byte-identical to a
        // re-snapshot of the original.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        inc.write_snapshot(&mut a).unwrap();
        restored.write_snapshot(&mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn staleness_counts_removals() {
        let (mut inc, g) = bootstrap(0.01, 8);
        let before = inc.staleness();
        let e = g.edges()[0];
        inc.remove(e).unwrap();
        assert!(inc.staleness() > before);
    }

    #[test]
    fn churn_keeps_accounting_exact() {
        let g = gnm::generate(200, 1000, 3);
        let mut stream = g.stream();
        let mut inc =
            IncrementalTwoPhase::bootstrap(&mut stream, 4, 1.05, 2.0, TwoPhaseConfig::default())
                .unwrap();
        // Remove every third edge, re-insert half of those.
        let edges: Vec<Edge> = g.edges().to_vec();
        let mut removed = Vec::new();
        for (i, &e) in edges.iter().enumerate() {
            if i % 3 == 0 {
                inc.remove(e).expect("edge was present");
                removed.push(e);
            }
        }
        for (i, &e) in removed.iter().enumerate() {
            if i % 2 == 0 {
                inc.insert(e);
            }
        }
        let expected = edges.len() - removed.len() + removed.len().div_ceil(2);
        assert_eq!(inc.num_edges() as usize, expected);
        assert_eq!(inc.loads().iter().sum::<u64>() as usize, expected);
    }
}
