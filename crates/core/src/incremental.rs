//! Incremental (dynamic-graph) extension of 2PS-L.
//!
//! The paper points at Fan et al. (VLDB 2020): "2PS-L could be transformed
//! into an incremental algorithm to efficiently handle dynamic graphs with
//! edge insertions and deletions without recomputing the complete
//! partitioning from scratch" (§VI). This module implements that
//! transformation:
//!
//! * [`IncrementalTwoPhase::bootstrap`] runs ordinary 2PS-L over the initial
//!   stream and *retains* the phase state (degrees, clustering, cluster→
//!   partition placement, replication matrix, loads).
//! * [`IncrementalTwoPhase::insert`] assigns a new edge in `O(1)` using the
//!   same two-choice scoring against the retained state. New vertices are
//!   clustered on first contact exactly as the streaming clustering would
//!   (joining the heavier endpoint cluster under the volume cap).
//! * [`IncrementalTwoPhase::remove`] retracts an edge: loads shrink, and
//!   replica bits are dropped when the edge was the vertex's last edge on
//!   that partition (tracked with per-(vertex, partition) counts — the
//!   `O(|V|·k)` budget is preserved, with counts replacing bits).
//!
//! Quality degrades gracefully as the graph drifts from the clustering
//! snapshot; [`IncrementalTwoPhase::staleness`] exposes the drift so callers
//! can schedule a re-bootstrap (the usual deployment loop for incremental
//! partitioners).

use std::collections::HashMap;
use std::io;

use tps_clustering::model::{Clustering, NO_CLUSTER};
use tps_clustering::streaming::{clustering_pass, VolumeCap};
use tps_graph::degree::DegreeTable;
use tps_graph::hash::seeded_hash_to_partition;
use tps_graph::stream::{discover_info, EdgeStream};
use tps_graph::types::{Edge, PartitionId, VertexId};

use crate::two_phase::mapping::ClusterPlacement;
use crate::two_phase::scoring::{two_choice_best, EdgeScoreInputs};
use crate::two_phase::TwoPhaseConfig;

/// Replica reference counts per (vertex, partition): the incremental
/// replacement for the boolean `v2p` matrix, so deletions can retract
/// replicas exactly.
#[derive(Clone, Debug)]
struct ReplicaCounts {
    k: u32,
    counts: Vec<u32>,
}

impl ReplicaCounts {
    fn new(num_vertices: u64, k: u32) -> Self {
        ReplicaCounts {
            k,
            counts: vec![0; (num_vertices * k as u64) as usize],
        }
    }

    #[inline]
    fn idx(&self, v: VertexId, p: PartitionId) -> usize {
        v as usize * self.k as usize + p as usize
    }

    #[inline]
    fn get(&self, v: VertexId, p: PartitionId) -> bool {
        self.counts[self.idx(v, p)] > 0
    }

    #[inline]
    fn add(&mut self, v: VertexId, p: PartitionId) {
        let i = self.idx(v, p);
        self.counts[i] += 1;
    }

    /// Returns true if the last replica on `p` disappeared.
    #[inline]
    fn remove(&mut self, v: VertexId, p: PartitionId) -> bool {
        let i = self.idx(v, p);
        assert!(self.counts[i] > 0, "removing a replica that does not exist");
        self.counts[i] -= 1;
        self.counts[i] == 0
    }

    fn grow_vertices(&mut self, num_vertices: u64) {
        self.counts
            .resize((num_vertices * self.k as u64) as usize, 0);
    }

    fn total_replicas(&self) -> u64 {
        self.counts.iter().filter(|&&c| c > 0).count() as u64
    }

    fn covered(&self) -> u64 {
        self.counts
            .chunks(self.k as usize)
            .filter(|row| row.iter().any(|&c| c > 0))
            .count() as u64
    }
}

/// A live, incrementally maintained 2PS-L partitioning.
pub struct IncrementalTwoPhase {
    config: TwoPhaseConfig,
    k: u32,
    cap_per_partition: u64,
    volume_cap: u64,
    degrees: Vec<u32>,
    clustering: Clustering,
    placement: ClusterPlacement,
    /// Partitions of clusters created *after* bootstrap (indexed by
    /// `cluster_id − placement.num_clusters()`): each new cluster is pinned
    /// to the least-loaded partition at creation time.
    late_cluster_partitions: Vec<PartitionId>,
    replicas: ReplicaCounts,
    loads: Vec<u64>,
    /// Live assignment of each edge (canonicalised) — needed for deletions.
    /// `O(|E|)` and therefore *not* out-of-core; incremental maintenance of
    /// dynamic graphs inherently requires an edge→partition lookup (see Fan
    /// et al.), which deployments keep in the DB/storage layer.
    assignment: HashMap<Edge, PartitionId>,
    inserted_since_bootstrap: u64,
    bootstrap_edges: u64,
}

impl IncrementalTwoPhase {
    /// Run 2PS-L over `stream` and retain all state for incremental updates.
    ///
    /// `extra_capacity_factor ≥ 1` head-room multiplies the per-partition
    /// cap so future insertions do not immediately saturate partitions.
    pub fn bootstrap<S: EdgeStream + ?Sized>(
        stream: &mut S,
        k: u32,
        alpha: f64,
        extra_capacity_factor: f64,
        config: TwoPhaseConfig,
    ) -> io::Result<Self> {
        assert!(k > 0);
        assert!(extra_capacity_factor >= 1.0);
        let info = discover_info(stream)?;
        let degrees_table = DegreeTable::compute(stream, info.num_vertices)?;
        let volume_cap = VolumeCap::FractionOfTotal(config.volume_cap_factor / k as f64)
            .resolve(degrees_table.total_volume().max(1));
        let mut clustering = Clustering::empty(info.num_vertices);
        for _ in 0..config.clustering_passes {
            clustering_pass(stream, &degrees_table, volume_cap, &mut clustering)?;
        }
        let placement = ClusterPlacement::sorted_list_schedule(&clustering, k);

        let cap = ((alpha * info.num_edges as f64 / k as f64).floor() as u64)
            .max(info.num_edges.div_ceil(k as u64));
        let mut this = IncrementalTwoPhase {
            config,
            k,
            cap_per_partition: ((cap as f64) * extra_capacity_factor).ceil() as u64,
            volume_cap,
            degrees: degrees_table.as_slice().to_vec(),
            clustering,
            placement,
            late_cluster_partitions: Vec::new(),
            replicas: ReplicaCounts::new(info.num_vertices, k),
            loads: vec![0; k as usize],
            assignment: HashMap::with_capacity(info.num_edges as usize),
            inserted_since_bootstrap: 0,
            bootstrap_edges: info.num_edges,
        };
        // Assign the bootstrap edges with the standard two passes.
        stream.reset()?;
        while let Some(e) = stream.next_edge()? {
            if this.prepartition_target(e).is_some() {
                let p = this.choose_partition(e);
                this.commit(e, p);
            }
        }
        stream.reset()?;
        while let Some(e) = stream.next_edge()? {
            if this.prepartition_target(e).is_none() {
                let p = this.choose_partition(e);
                this.commit(e, p);
            }
        }
        Ok(this)
    }

    fn ensure_vertex(&mut self, v: VertexId) {
        if (v as usize) < self.degrees.len() {
            return;
        }
        let new_len = v as usize + 1;
        self.degrees.resize(new_len, 0);
        self.replicas.grow_vertices(new_len as u64);
        // Clustering needs room too; new vertices are unassigned for now.
        let mut v2c = vec![NO_CLUSTER; new_len];
        for (u, slot) in v2c
            .iter_mut()
            .take(self.clustering.num_vertices() as usize)
            .enumerate()
        {
            *slot = self.clustering.raw_cluster_of(u as u32);
        }
        self.clustering = Clustering::from_parts(v2c, self.clustering.volumes().to_vec());
    }

    /// Partition of a cluster, covering clusters created after bootstrap.
    #[inline]
    fn cluster_partition(&self, c: u32) -> PartitionId {
        if c < self.placement.num_clusters() {
            self.placement.partition_of(c)
        } else {
            self.late_cluster_partitions[(c - self.placement.num_clusters()) as usize]
        }
    }

    /// Cluster a vertex on first contact, mirroring the streaming rule: join
    /// the other endpoint's cluster if the cap allows, else start fresh
    /// (new clusters are pinned to the currently least-loaded partition).
    fn cluster_on_first_contact(&mut self, v: VertexId, other: VertexId) {
        if self.clustering.raw_cluster_of(v) != NO_CLUSTER {
            return;
        }
        let dv = self.degrees[v as usize].max(1) as u64;
        let co = self.clustering.raw_cluster_of(other);
        if co != NO_CLUSTER && self.clustering.volume(co) + dv <= self.volume_cap {
            self.clustering.create_cluster(v, dv);
            // Merge into the neighbour's cluster immediately.
            self.clustering.migrate(v, dv, co);
        } else {
            self.clustering.create_cluster(v, dv);
        }
        // Pin any clusters the placement has not seen.
        while self.placement.num_clusters() as usize + self.late_cluster_partitions.len()
            < self.clustering.num_cluster_ids() as usize
        {
            let p = self
                .loads
                .iter()
                .enumerate()
                .min_by_key(|&(i, &l)| (l, i))
                .map(|(i, _)| i as u32)
                .expect("k >= 1");
            self.late_cluster_partitions.push(p);
        }
    }

    #[inline]
    fn prepartition_target(&self, e: Edge) -> Option<PartitionId> {
        let cu = self.clustering.raw_cluster_of(e.src);
        let cv = self.clustering.raw_cluster_of(e.dst);
        if cu == NO_CLUSTER || cv == NO_CLUSTER {
            return None;
        }
        let pu = self.cluster_partition(cu);
        if cu == cv {
            return Some(pu);
        }
        (self.cluster_partition(cv) == pu).then_some(pu)
    }

    /// Two-choice scoring against the retained state (`O(1)` per edge).
    fn choose_partition(&self, e: Edge) -> PartitionId {
        let cu = self.clustering.raw_cluster_of(e.src);
        let cv = self.clustering.raw_cluster_of(e.dst);
        let candidate = if cu == NO_CLUSTER || cv == NO_CLUSTER {
            None
        } else {
            let inputs = EdgeScoreInputs {
                u: e.src,
                v: e.dst,
                du: self.degrees[e.src as usize].max(1) as u64,
                dv: self.degrees[e.dst as usize].max(1) as u64,
                vol_cu: self.clustering.volume(cu),
                vol_cv: self.clustering.volume(cv),
                pu: self.cluster_partition(cu),
                pv: self.cluster_partition(cv),
            };
            // Score against counts-backed replicas through a bit view.
            let best = self.two_choice_with_counts(&inputs);
            Some(best)
        };
        let mut p = candidate.unwrap_or_else(|| {
            let hv = if self.degrees[e.src as usize] >= self.degrees[e.dst as usize] {
                e.src
            } else {
                e.dst
            };
            seeded_hash_to_partition(hv, self.config.hash_seed, self.k)
        });
        if self.loads[p as usize] >= self.cap_per_partition {
            // Hash fallback, then least loaded.
            let hv = if self.degrees[e.src as usize] >= self.degrees[e.dst as usize] {
                e.src
            } else {
                e.dst
            };
            p = seeded_hash_to_partition(hv, self.config.hash_seed, self.k);
            if self.loads[p as usize] >= self.cap_per_partition {
                p = self
                    .loads
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &l)| (l, i))
                    .map(|(i, _)| i as u32)
                    .expect("k >= 1");
            }
        }
        p
    }

    fn two_choice_with_counts(&self, inputs: &EdgeScoreInputs) -> PartitionId {
        // Build a tiny 2-partition view over the counts (two_choice_best
        // needs a ReplicationMatrix; avoid constructing one by inlining the
        // score here for the counts backend).
        if inputs.pu == inputs.pv {
            return inputs.pu;
        }
        let score = |p: PartitionId| -> f64 {
            let d_sum = (inputs.du + inputs.dv) as f64;
            let vol_sum = (inputs.vol_cu + inputs.vol_cv) as f64;
            let mut s = 0.0;
            if self.replicas.get(inputs.u, p) {
                s += 1.0 + (1.0 - inputs.du as f64 / d_sum);
            }
            if self.replicas.get(inputs.v, p) {
                s += 1.0 + (1.0 - inputs.dv as f64 / d_sum);
            }
            if inputs.pu == p {
                s += inputs.vol_cu as f64 / vol_sum;
            }
            if inputs.pv == p {
                s += inputs.vol_cv as f64 / vol_sum;
            }
            s
        };
        if score(inputs.pv) > score(inputs.pu) {
            inputs.pv
        } else {
            inputs.pu
        }
    }

    fn commit(&mut self, e: Edge, p: PartitionId) {
        self.replicas.add(e.src, p);
        self.replicas.add(e.dst, p);
        self.loads[p as usize] += 1;
        self.assignment.insert(e.canonical(), p);
    }

    /// Insert a new edge; returns its partition. `O(1)`.
    ///
    /// # Panics
    /// Panics if the (canonicalised) edge is already present.
    pub fn insert(&mut self, e: Edge) -> PartitionId {
        assert!(
            !self.assignment.contains_key(&e.canonical()),
            "edge {e:?} already present"
        );
        self.ensure_vertex(e.src.max(e.dst));
        self.degrees[e.src as usize] += 1;
        self.degrees[e.dst as usize] += 1;
        self.cluster_on_first_contact(e.src, e.dst);
        self.cluster_on_first_contact(e.dst, e.src);
        let p = self.choose_partition(e);
        self.commit(e, p);
        self.inserted_since_bootstrap += 1;
        p
    }

    /// Remove an edge; returns the partition it lived on, or `None` if it
    /// was not present. `O(1)`.
    pub fn remove(&mut self, e: Edge) -> Option<PartitionId> {
        let p = self.assignment.remove(&e.canonical())?;
        self.loads[p as usize] -= 1;
        self.degrees[e.src as usize] -= 1;
        self.degrees[e.dst as usize] -= 1;
        self.replicas.remove(e.src, p);
        self.replicas.remove(e.dst, p);
        Some(p)
    }

    /// Partition of a live edge.
    pub fn partition_of(&self, e: Edge) -> Option<PartitionId> {
        self.assignment.get(&e.canonical()).copied()
    }

    /// Live edge count.
    pub fn num_edges(&self) -> u64 {
        self.assignment.len() as u64
    }

    /// Per-partition edge counts.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Current replication factor over covered vertices.
    pub fn replication_factor(&self) -> f64 {
        let covered = self.replicas.covered();
        if covered == 0 {
            0.0
        } else {
            self.replicas.total_replicas() as f64 / covered as f64
        }
    }

    /// Mutations since bootstrap relative to the bootstrap size — the drift
    /// signal for scheduling a re-bootstrap.
    pub fn staleness(&self) -> f64 {
        self.inserted_since_bootstrap as f64 / self.bootstrap_edges.max(1) as f64
    }
}

// `two_choice_best` is used by the streaming path; referenced here so the
// incremental module stays in sync with any scoring change (compile error on
// signature drift).
#[allow(dead_code)]
fn _assert_scoring_signature(i: &EdgeScoreInputs, m: &tps_metrics::bitmatrix::ReplicationMatrix) {
    let _ = two_choice_best(i, m);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_graph::datasets::Dataset;
    use tps_graph::gen::gnm;

    fn bootstrap(scale: f64, k: u32) -> (IncrementalTwoPhase, tps_graph::InMemoryGraph) {
        let g = Dataset::It.generate_scaled(scale);
        let mut stream = g.stream();
        let inc =
            IncrementalTwoPhase::bootstrap(&mut stream, k, 1.05, 1.5, TwoPhaseConfig::default())
                .unwrap();
        (inc, g)
    }

    #[test]
    fn bootstrap_assigns_everything() {
        let (inc, g) = bootstrap(0.01, 8);
        assert_eq!(inc.num_edges(), g.num_edges());
        assert_eq!(inc.loads().iter().sum::<u64>(), g.num_edges());
        assert!(inc.replication_factor() >= 1.0);
    }

    #[test]
    fn insert_then_remove_restores_state() {
        let (mut inc, _) = bootstrap(0.01, 8);
        let rf_before = inc.replication_factor();
        let edges_before = inc.num_edges();
        let e = Edge::new(1_000_000, 1_000_001); // brand-new vertices
        let p = inc.insert(e);
        assert_eq!(inc.partition_of(e), Some(p));
        assert_eq!(inc.num_edges(), edges_before + 1);
        assert_eq!(inc.remove(e), Some(p));
        assert_eq!(inc.num_edges(), edges_before);
        assert!((inc.replication_factor() - rf_before).abs() < 1e-12);
        assert_eq!(inc.remove(e), None, "double remove");
    }

    #[test]
    fn inserted_edges_respect_headroom_cap() {
        let (mut inc, g) = bootstrap(0.01, 4);
        let cap = ((1.05 * g.num_edges() as f64 / 4.0) * 1.5).ceil() as u64;
        // Insert a burst of new edges between existing vertices.
        for i in 0..2000u32 {
            let e = Edge::new(i % 97, 97 + (i * 7) % 101);
            if inc.partition_of(e).is_none() {
                inc.insert(e);
            }
        }
        assert!(
            inc.loads().iter().all(|&l| l <= cap),
            "{:?} cap {cap}",
            inc.loads()
        );
    }

    #[test]
    fn incremental_quality_tracks_full_recompute() {
        // Bootstrap on 80 % of the edges, insert the remaining 20 %
        // incrementally; the resulting RF should stay close to a full 2PS-L
        // run over everything.
        let g = Dataset::It.generate_scaled(0.02);
        let all = g.edges();
        let cut = all.len() * 8 / 10;
        let first = tps_graph::stream::InMemoryGraph::with_num_vertices(
            all[..cut].to_vec(),
            g.num_vertices(),
        );
        let k = 8;
        let mut stream = first.stream();
        let mut inc =
            IncrementalTwoPhase::bootstrap(&mut stream, k, 1.05, 1.3, TwoPhaseConfig::default())
                .unwrap();
        for &e in &all[cut..] {
            inc.insert(e);
        }
        assert_eq!(inc.num_edges(), g.num_edges());

        let mut p = crate::two_phase::TwoPhasePartitioner::new(TwoPhaseConfig::default());
        let mut sink = crate::sink::QualitySink::new(g.num_vertices(), k);
        crate::partitioner::Partitioner::partition(
            &mut p,
            &mut g.stream(),
            &crate::partitioner::PartitionParams::new(k),
            &mut sink,
        )
        .unwrap();
        let full = sink.finish().replication_factor;
        let incr = inc.replication_factor();
        assert!(
            incr <= full * 1.30,
            "incremental rf {incr} drifted too far from full recompute {full}"
        );
        assert!((inc.staleness() - 0.25).abs() < 0.01); // 20 %/80 %
    }

    #[test]
    fn churn_keeps_accounting_exact() {
        let g = gnm::generate(200, 1000, 3);
        let mut stream = g.stream();
        let mut inc =
            IncrementalTwoPhase::bootstrap(&mut stream, 4, 1.05, 2.0, TwoPhaseConfig::default())
                .unwrap();
        // Remove every third edge, re-insert half of those.
        let edges: Vec<Edge> = g.edges().to_vec();
        let mut removed = Vec::new();
        for (i, &e) in edges.iter().enumerate() {
            if i % 3 == 0 {
                inc.remove(e).expect("edge was present");
                removed.push(e);
            }
        }
        for (i, &e) in removed.iter().enumerate() {
            if i % 2 == 0 {
                inc.insert(e);
            }
        }
        let expected = edges.len() - removed.len() + removed.len().div_ceil(2);
        assert_eq!(inc.num_edges() as usize, expected);
        assert_eq!(inc.loads().iter().sum::<u64>() as usize, expected);
    }
}
