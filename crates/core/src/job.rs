//! The unified job API: one builder — [`JobSpec`] — that every execution
//! mode (serial, chunk-parallel, distributed coordinator front-ends, the
//! serving daemon) uses to describe a partitioning run.
//!
//! Historically the workspace grew four ad-hoc entry points
//! (`run_partitioner`, `run_partitioner_with_sink`, `run_partitioner_auto`,
//! `run_parallel_partitioner`) plus per-subcommand flag plumbing in the CLI.
//! `JobSpec` replaces them: callers state *what* to run (input, algorithm,
//! `k`/`α`) and *how* (threads, reader backend, spill budget, trace) and the
//! spec resolves the execution plan itself.
//!
//! ```
//! use tps_core::job::JobSpec;
//! use tps_graph::datasets::Dataset;
//!
//! let g = Dataset::Ok.generate_scaled(0.01);
//! let mut stream = g.stream();
//! let outcome = JobSpec::stream(&mut stream)
//!     .k(8)
//!     .num_vertices(g.num_vertices())
//!     .run()
//!     .unwrap();
//! assert_eq!(outcome.metrics.num_edges, g.num_edges());
//! ```
//!
//! File-path inputs need an [`InputProvider`] that knows how to open edge
//! files; `tps-core` cannot depend on `tps-io` (the dependency points the
//! other way), so `tps_io::run_job` / `tps_io::FileInput` supply the
//! standard provider and `JobSpec::run` handles the in-memory cases.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use tps_clustering::paged::PageStoreProvider;
use tps_graph::ranged::RangedEdgeSource;
use tps_graph::stream::{discover_info, EdgeStream};

use crate::parallel::ParallelRunner;
use crate::partitioner::{PartitionParams, Partitioner, RunReport};
use crate::runner::RunOutcome;
use crate::sink::{AssignmentSink, QualitySink, SpoolFactory, TeeSink};
use crate::two_phase::{ClusterPaging, TwoPhaseConfig, TwoPhasePartitioner};

/// Reader backend for file inputs, named in core so specs can be built
/// without a `tps-io` dependency (the provider maps it onto its own
/// backend enum).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReaderKind {
    /// Plain buffered sequential reads (the default).
    #[default]
    Buffered,
    /// Memory-mapped input.
    Mmap,
    /// Background prefetch thread ahead of the consumer.
    Prefetch,
}

impl ReaderKind {
    /// Stable lower-case name (CLI flag value / JSON field).
    pub fn name(self) -> &'static str {
        match self {
            ReaderKind::Buffered => "buffered",
            ReaderKind::Mmap => "mmap",
            ReaderKind::Prefetch => "prefetch",
        }
    }
}

impl std::str::FromStr for ReaderKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "buffered" => Ok(ReaderKind::Buffered),
            "mmap" => Ok(ReaderKind::Mmap),
            "prefetch" => Ok(ReaderKind::Prefetch),
            other => Err(format!(
                "unknown reader {other:?} (buffered | mmap | prefetch)"
            )),
        }
    }
}

/// How many workers a job runs with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ThreadMode {
    /// Force the single-cursor serial runner (paper-exact execution).
    Serial,
    /// One worker per available core (the default).
    #[default]
    Auto,
    /// An explicit chunk-parallel worker count (deterministic per count).
    Count(usize),
}

impl std::str::FromStr for ThreadMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(ThreadMode::Auto),
            "serial" => Ok(ThreadMode::Serial),
            n => match n.parse::<usize>() {
                Ok(t) if t >= 1 => Ok(ThreadMode::Count(t)),
                _ => Err(format!("expected auto|serial|N>=1, got {n:?}")),
            },
        }
    }
}

/// Where the edges come from.
pub enum JobInput<'a> {
    /// Any edge stream (serial execution only).
    Stream(&'a mut dyn EdgeStream),
    /// A ranged source (eligible for chunk-parallel execution).
    Ranged(&'a dyn RangedEdgeSource),
    /// A file path, opened through the [`InputProvider`].
    Path(PathBuf),
}

/// Which algorithm runs.
pub enum JobEngine<'a> {
    /// 2PS-L / 2PS-HDRF — the only family with a chunk-parallel runner.
    TwoPhase(TwoPhaseConfig),
    /// Any other [`Partitioner`] (always serial).
    Custom(&'a mut dyn Partitioner),
}

/// How a unified memory budget ([`JobSpec::mem_budget_mb`]) is split
/// across the three budget-aware subsystems. The split is a fixed,
/// deterministic policy — the same budget always produces the same
/// shares, so runs are reproducible from the flag alone:
///
/// * **½ cluster pages** — the paged cluster table (serial engine; the
///   dominant `O(|V|)` term the budget exists to bound);
/// * **¼ decode cache** — the v2 reader's block decode cache
///   (all-or-nothing per file; a share too small for the file simply
///   disables the cache);
/// * **¼ spill** — the parallel runner's replay spools (an explicit
///   [`JobSpec::spill_budget_mb`] overrides this share).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemBudgetSplit {
    /// Bytes for resident cluster-table pages.
    pub cluster_pages: u64,
    /// Bytes for the v2 decode cache.
    pub decode_cache: u64,
    /// Bytes for spill-backed replay spools.
    pub spill: u64,
}

impl MemBudgetSplit {
    /// Split `total_bytes` by the ½ / ¼ / ¼ policy.
    pub fn of(total_bytes: u64) -> Self {
        let cluster_pages = total_bytes / 2;
        let decode_cache = total_bytes / 4;
        MemBudgetSplit {
            cluster_pages,
            decode_cache,
            spill: total_bytes - cluster_pages - decode_cache,
        }
    }
}

/// Opens path inputs and spill spools on behalf of a [`JobSpec`] — the
/// seam that lets `tps-core` describe file jobs without depending on
/// `tps-io` (which implements the standard provider as `FileInput`).
pub trait InputProvider {
    /// Open `path` as a plain edge stream with the given reader backend.
    fn open_stream(&self, path: &Path, reader: ReaderKind) -> io::Result<Box<dyn EdgeStream>>;
    /// Open `path` as a ranged source for chunk-parallel execution.
    fn open_ranged(&self, path: &Path, reader: ReaderKind)
        -> io::Result<Box<dyn RangedEdgeSource>>;
    /// A spool factory bounding parallel replay memory to `budget_bytes`.
    fn spool_factory(
        &self,
        budget_bytes: u64,
        threads: usize,
    ) -> io::Result<Arc<dyn SpoolFactory + Send + Sync>>;
    /// A page-store provider backing out-of-core cluster paging
    /// ([`JobSpec::mem_budget_mb`]). Default: not available.
    fn page_store_provider(&self) -> io::Result<Arc<dyn PageStoreProvider>> {
        Err(io::Error::other(
            "cluster paging needs an I/O provider (use tps_io::run_job)",
        ))
    }
    /// Bound the provider's input decode caches to `bytes` (the v2
    /// reader's block cache). Providers without such a cache ignore this.
    fn set_decode_cache_budget(&self, _bytes: u64) {}
}

/// The provider used by [`JobSpec::run`]: rejects path inputs and spill
/// budgets, which need a real I/O layer (`tps_io::run_job`).
pub struct NoFiles;

impl InputProvider for NoFiles {
    fn open_stream(&self, path: &Path, _reader: ReaderKind) -> io::Result<Box<dyn EdgeStream>> {
        Err(unsupported(path))
    }
    fn open_ranged(
        &self,
        path: &Path,
        _reader: ReaderKind,
    ) -> io::Result<Box<dyn RangedEdgeSource>> {
        Err(unsupported(path))
    }
    fn spool_factory(
        &self,
        _budget_bytes: u64,
        _threads: usize,
    ) -> io::Result<Arc<dyn SpoolFactory + Send + Sync>> {
        Err(io::Error::other(
            "spill budgets need an I/O provider (use tps_io::run_job)",
        ))
    }
}

fn unsupported(path: &Path) -> io::Error {
    io::Error::other(format!(
        "path input {} needs an I/O provider (use tps_io::run_job)",
        path.display()
    ))
}

/// The execution plan a spec resolves to (exposed so front-ends can tell
/// the user what will happen before running).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecPlan {
    /// Single-cursor serial execution, with the reason when parallelism was
    /// requested but is not applicable.
    Serial { reason: Option<&'static str> },
    /// Chunk-parallel execution over this many workers.
    Parallel { threads: usize },
}

/// A declarative partitioning job: input + engine + parameters + execution
/// knobs, resolved and run by [`JobSpec::run`] / [`JobSpec::run_with`].
pub struct JobSpec<'a> {
    input: JobInput<'a>,
    engine: JobEngine<'a>,
    params: PartitionParams,
    num_vertices: Option<u64>,
    threads: ThreadMode,
    reader: ReaderKind,
    spill_budget_bytes: u64,
    mem_budget_bytes: u64,
    spool_factory: Option<Arc<dyn SpoolFactory + Send + Sync>>,
    trace: Option<PathBuf>,
    trace_cmd: String,
    extra_sink: Option<&'a mut dyn AssignmentSink>,
}

impl<'a> JobSpec<'a> {
    /// A job over an arbitrary input.
    pub fn new(input: JobInput<'a>) -> Self {
        JobSpec {
            input,
            engine: JobEngine::TwoPhase(TwoPhaseConfig::default()),
            params: PartitionParams::new(2),
            num_vertices: None,
            threads: ThreadMode::default(),
            reader: ReaderKind::default(),
            spill_budget_bytes: 0,
            mem_budget_bytes: 0,
            spool_factory: None,
            trace: None,
            trace_cmd: "job".to_string(),
            extra_sink: None,
        }
    }

    /// A job over a plain edge stream (serial execution).
    pub fn stream(stream: &'a mut dyn EdgeStream) -> Self {
        JobSpec::new(JobInput::Stream(stream))
    }

    /// A job over a ranged source (chunk-parallel eligible).
    pub fn ranged(source: &'a dyn RangedEdgeSource) -> Self {
        JobSpec::new(JobInput::Ranged(source))
    }

    /// A job over an edge file (resolved by the [`InputProvider`]).
    pub fn path(path: impl Into<PathBuf>) -> Self {
        JobSpec::new(JobInput::Path(path.into()))
    }

    /// Number of partitions (default 2).
    pub fn k(mut self, k: u32) -> Self {
        self.params.k = k;
        self
    }

    /// Balance factor α (default 1.05).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.params.alpha = alpha;
        self
    }

    /// Replace both `k` and `α` at once.
    pub fn params(mut self, params: &PartitionParams) -> Self {
        self.params = *params;
        self
    }

    /// Pin the vertex count (skips the discovery pass for plain streams).
    pub fn num_vertices(mut self, n: u64) -> Self {
        self.num_vertices = Some(n);
        self
    }

    /// Worker-thread policy (default [`ThreadMode::Auto`]).
    pub fn threads(mut self, mode: ThreadMode) -> Self {
        self.threads = mode;
        self
    }

    /// Reader backend for path inputs (default [`ReaderKind::Buffered`]).
    pub fn reader(mut self, reader: ReaderKind) -> Self {
        self.reader = reader;
        self
    }

    /// Bound parallel replay memory to `mb` MiB via spill-backed spools
    /// (0 = unbounded in-memory spools).
    pub fn spill_budget_mb(mut self, mb: u64) -> Self {
        self.spill_budget_bytes = mb << 20;
        self
    }

    /// Bound the job's budget-aware memory consumers to `mb` MiB total,
    /// split deterministically by [`MemBudgetSplit`]: paged cluster table
    /// (serial engine), v2 decode cache, and spill spools (parallel
    /// engine). 0 = unbounded (the default). The serial two-phase engine
    /// then pages cluster state to disk, so peak RSS stays bounded by the
    /// budget plus fixed per-run overhead even when the graph is many
    /// times larger.
    pub fn mem_budget_mb(mut self, mb: u64) -> Self {
        self.mem_budget_bytes = mb << 20;
        self
    }

    /// Use a specific spool factory (overrides `spill_budget_mb`).
    pub fn spool_factory(mut self, factory: Arc<dyn SpoolFactory + Send + Sync>) -> Self {
        self.spool_factory = Some(factory);
        self
    }

    /// Record a structured trace (phase spans + counters) to `path`.
    /// Tracing never changes partitioning output.
    pub fn trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace = Some(path.into());
        self
    }

    /// The `cmd` tag written into the trace metadata (default `"job"`).
    pub fn trace_cmd(mut self, cmd: impl Into<String>) -> Self {
        self.trace_cmd = cmd.into();
        self
    }

    /// An additional sink receiving every `(edge, partition)` assignment
    /// (per-partition files, in-memory collection, …) while ground-truth
    /// quality metrics are still collected.
    pub fn extra_sink(mut self, sink: &'a mut dyn AssignmentSink) -> Self {
        self.extra_sink = Some(sink);
        self
    }

    /// Run 2PS-L / 2PS-HDRF with this config (the default engine).
    pub fn two_phase(mut self, config: TwoPhaseConfig) -> Self {
        self.engine = JobEngine::TwoPhase(config);
        self
    }

    /// Run an arbitrary partitioner (always serial).
    pub fn partitioner(mut self, p: &'a mut dyn Partitioner) -> Self {
        self.engine = JobEngine::Custom(p);
        self
    }

    /// Resolve the execution plan without running: chunk-parallel for
    /// two-phase engines on ranged/path inputs (unless `threads = Serial`),
    /// serial otherwise.
    pub fn plan(&self) -> ExecPlan {
        let reason = match (&self.engine, &self.input) {
            (JobEngine::Custom(_), _) => Some("custom partitioners run serial"),
            (JobEngine::TwoPhase(_), JobInput::Stream(_)) => {
                Some("plain streams run serial (ranged or path input required)")
            }
            (JobEngine::TwoPhase(_), _) => None,
        };
        match (reason, self.threads) {
            (None, ThreadMode::Serial) => ExecPlan::Serial { reason: None },
            (None, mode) => {
                let requested = match mode {
                    ThreadMode::Count(n) => n,
                    _ => 0, // 0 = auto inside ParallelRunner
                };
                let cfg = match &self.engine {
                    JobEngine::TwoPhase(cfg) => *cfg,
                    JobEngine::Custom(_) => unreachable!("reason is None only for TwoPhase"),
                };
                ExecPlan::Parallel {
                    threads: ParallelRunner::new(cfg, requested).threads(),
                }
            }
            (Some(reason), _) => ExecPlan::Serial {
                reason: Some(reason),
            },
        }
    }

    /// Run the job with the in-memory provider ([`NoFiles`]) — path inputs
    /// and spill budgets need [`JobSpec::run_with`] and a real provider
    /// (`tps_io::run_job`).
    pub fn run(self) -> io::Result<RunOutcome> {
        self.run_with(&NoFiles)
    }

    /// Run the job, opening path inputs through `provider`.
    pub fn run_with(self, provider: &dyn InputProvider) -> io::Result<RunOutcome> {
        let plan = self.plan();
        let JobSpec {
            input,
            engine,
            params,
            num_vertices,
            reader,
            mut spill_budget_bytes,
            mem_budget_bytes,
            spool_factory,
            trace,
            trace_cmd,
            mut extra_sink,
            ..
        } = self;

        // A unified memory budget splits deterministically across the
        // budget-aware subsystems; an explicit spill budget wins over its
        // share. Applied before any input is opened — the v2 decode cache
        // sizes itself at open time.
        let mem_split = (mem_budget_bytes > 0).then(|| MemBudgetSplit::of(mem_budget_bytes));
        if let Some(split) = mem_split {
            provider.set_decode_cache_budget(split.decode_cache);
            if spill_budget_bytes == 0 {
                spill_budget_bytes = split.spill;
            }
        }

        if trace.is_some() {
            // Start from a clean slate so the file describes this run only.
            // Counters are always on; events need the switch.
            tps_obs::reset_events();
            tps_obs::reset_counters();
            tps_obs::set_enabled(true);
        }

        let run = |quality: &mut QualitySink,
                   extra: &mut Option<&'a mut dyn AssignmentSink>,
                   run_into: &mut dyn FnMut(&mut dyn AssignmentSink) -> io::Result<RunReport>|
         -> io::Result<RunReport> {
            match extra {
                Some(extra) => {
                    let mut tee = TeeSink::new(quality, &mut **extra);
                    run_into(&mut tee)
                }
                None => run_into(quality),
            }
        };

        let start = Instant::now();
        let (name, info_v, info_e, result) = match plan {
            ExecPlan::Parallel { .. } => {
                let cfg = match engine {
                    JobEngine::TwoPhase(cfg) => cfg,
                    JobEngine::Custom(_) => unreachable!("plan() keeps custom engines serial"),
                };
                let mut runner = ParallelRunner::new(cfg, self_threads(&plan));
                let factory = match (spool_factory, spill_budget_bytes) {
                    (Some(f), _) => Some(f),
                    (None, 0) => None,
                    (None, budget) => Some(provider.spool_factory(budget, runner.threads())?),
                };
                if let Some(f) = factory {
                    runner = runner.with_spool_factory(f);
                }
                let owned;
                let source: &dyn RangedEdgeSource = match input {
                    JobInput::Ranged(s) => s,
                    JobInput::Path(p) => {
                        owned = provider.open_ranged(&p, reader)?;
                        &*owned
                    }
                    JobInput::Stream(_) => unreachable!("plan() keeps streams serial"),
                };
                let info = source.info();
                let nv = num_vertices.unwrap_or(info.num_vertices);
                let mut quality = QualitySink::new(nv, params.k);
                let (result, peak) = tps_metrics::alloc::measure_peak(|| {
                    run(&mut quality, &mut extra_sink, &mut |sink| {
                        runner.partition(source, &params, sink)
                    })
                });
                (
                    runner.name(),
                    nv,
                    info.num_edges,
                    result.map(|report| (report, quality.finish(), peak)),
                )
            }
            ExecPlan::Serial { .. } => {
                let mut owned_partitioner;
                let partitioner: &mut dyn Partitioner = match engine {
                    JobEngine::Custom(p) => p,
                    JobEngine::TwoPhase(cfg) => {
                        let mut p = TwoPhasePartitioner::new(cfg);
                        if let Some(split) = mem_split {
                            // The serial engine is the one that pages its
                            // cluster state; parallel/dist workers honour
                            // the decode-cache and spill shares only (see
                            // README "Memory model").
                            p = p.with_cluster_paging(ClusterPaging::new(
                                split.cluster_pages,
                                provider.page_store_provider()?,
                            ));
                        }
                        owned_partitioner = p;
                        &mut owned_partitioner
                    }
                };
                // Resolve the stream (and a vertex count for the sink).
                let mut owned_stream;
                let mut ranged_stream;
                let (stream, known): (&mut dyn EdgeStream, Option<(u64, u64)>) = match input {
                    JobInput::Stream(s) => (s, None),
                    JobInput::Ranged(src) => {
                        let info = src.info();
                        ranged_stream = src.open_range(0, info.num_edges)?;
                        (
                            &mut *ranged_stream,
                            Some((info.num_vertices, info.num_edges)),
                        )
                    }
                    JobInput::Path(p) => {
                        owned_stream = provider.open_stream(&p, reader)?;
                        (&mut *owned_stream, None)
                    }
                };
                let (nv, ne) = match (num_vertices, known) {
                    (Some(nv), Some((_, ne))) => (nv, ne),
                    (Some(nv), None) => (nv, 0),
                    (None, Some((nv, ne))) => (nv, ne),
                    (None, None) => {
                        let info = discover_info(stream)?;
                        (info.num_vertices, info.num_edges)
                    }
                };
                let mut quality = QualitySink::new(nv, params.k);
                let (result, peak) = tps_metrics::alloc::measure_peak(|| {
                    run(&mut quality, &mut extra_sink, &mut |sink| {
                        partitioner.partition(&mut *stream, &params, sink)
                    })
                });
                (
                    partitioner.name(),
                    nv,
                    ne,
                    result.map(|report| (report, quality.finish(), peak)),
                )
            }
        };
        let (report, metrics, peak) = result?;
        let wall_time = start.elapsed();
        tps_obs::drain_local();

        if let Some(path) = trace {
            tps_obs::set_enabled(false);
            let events = tps_obs::take_events();
            // Local counters are worker 0; dist shard snapshots keep the
            // worker id the coordinator tagged them with.
            let mut counters: Vec<(u32, String, u64)> = tps_obs::counters_snapshot()
                .into_iter()
                .map(|(n, v)| (0, n, v))
                .collect();
            counters.extend(tps_obs::take_remote_counters());
            let meta = tps_obs::TraceMeta {
                cmd: trace_cmd,
                algo: name.clone(),
                k: params.k,
                alpha: params.alpha,
                vertices: info_v,
                edges: if info_e > 0 {
                    info_e
                } else {
                    metrics.num_edges
                },
            };
            tps_obs::write_trace(&path, &meta, &events, &counters)?;
        }

        Ok(RunOutcome {
            name,
            metrics,
            report,
            wall_time,
            peak_heap_bytes: peak,
        })
    }
}

/// The worker count a resolved parallel plan requested (helper so the match
/// above stays readable).
fn self_threads(plan: &ExecPlan) -> usize {
    match plan {
        ExecPlan::Parallel { threads } => *threads,
        ExecPlan::Serial { .. } => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::VecSink;
    use tps_graph::datasets::Dataset;

    #[test]
    fn stream_job_matches_serial_runner() {
        let g = Dataset::Ok.generate_scaled(0.01);
        let mut stream = g.stream();
        let out = JobSpec::stream(&mut stream)
            .k(4)
            .num_vertices(g.num_vertices())
            .run()
            .unwrap();
        assert_eq!(out.name, "2PS-L");
        assert_eq!(out.metrics.num_edges, g.num_edges());
    }

    #[test]
    fn ranged_job_runs_parallel_and_serial_identically() {
        let g = Dataset::Ok.generate_scaled(0.02);
        let par = JobSpec::ranged(&g)
            .k(8)
            .threads(ThreadMode::Count(2))
            .run()
            .unwrap();
        let mut par2_sink = VecSink::new();
        let par2 = JobSpec::ranged(&g)
            .k(8)
            .threads(ThreadMode::Count(2))
            .extra_sink(&mut par2_sink)
            .run()
            .unwrap();
        assert_eq!(par.name, "2PS-L×2");
        // Deterministic per thread count, with or without an extra sink.
        assert_eq!(
            par.metrics.replication_factor,
            par2.metrics.replication_factor
        );
        assert_eq!(par2_sink.assignments().len() as u64, g.num_edges());

        let serial = JobSpec::ranged(&g)
            .k(8)
            .threads(ThreadMode::Serial)
            .run()
            .unwrap();
        assert_eq!(serial.name, "2PS-L");
        assert_eq!(serial.metrics.num_edges, par.metrics.num_edges);
    }

    #[test]
    fn plan_reports_serial_reasons() {
        let g = Dataset::Ok.generate_scaled(0.01);
        let mut stream = g.stream();
        let spec = JobSpec::stream(&mut stream).threads(ThreadMode::Count(4));
        assert!(matches!(spec.plan(), ExecPlan::Serial { reason: Some(_) }));
        let spec = JobSpec::ranged(&g).threads(ThreadMode::Count(4));
        assert_eq!(spec.plan(), ExecPlan::Parallel { threads: 4 });
        let spec = JobSpec::ranged(&g).threads(ThreadMode::Serial);
        assert_eq!(spec.plan(), ExecPlan::Serial { reason: None });
    }

    #[test]
    fn path_input_without_provider_errors() {
        let err = JobSpec::path("/no/such/file.bel")
            .threads(ThreadMode::Serial)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("I/O provider"));
    }

    #[test]
    fn mem_budget_split_is_deterministic_and_lossless() {
        let s = MemBudgetSplit::of(100 << 20);
        assert_eq!(s.cluster_pages, 50 << 20);
        assert_eq!(s.decode_cache, 25 << 20);
        assert_eq!(s.spill, 25 << 20);
        // Odd totals: every byte lands in exactly one share.
        let s = MemBudgetSplit::of(7);
        assert_eq!(s.cluster_pages + s.decode_cache + s.spill, 7);
    }

    /// An in-memory provider with a page store — what a mem-budgeted serial
    /// job needs beyond [`NoFiles`].
    struct MemPages;
    impl InputProvider for MemPages {
        fn open_stream(&self, path: &Path, _reader: ReaderKind) -> io::Result<Box<dyn EdgeStream>> {
            Err(unsupported(path))
        }
        fn open_ranged(
            &self,
            path: &Path,
            _reader: ReaderKind,
        ) -> io::Result<Box<dyn RangedEdgeSource>> {
            Err(unsupported(path))
        }
        fn spool_factory(
            &self,
            _budget_bytes: u64,
            _threads: usize,
        ) -> io::Result<Arc<dyn SpoolFactory + Send + Sync>> {
            Err(io::Error::other("no spools here"))
        }
        fn page_store_provider(&self) -> io::Result<Arc<dyn PageStoreProvider>> {
            Ok(Arc::new(tps_clustering::paged::MemPageStoreProvider))
        }
    }

    #[test]
    fn serial_mem_budget_matches_unbounded_output() {
        let g = Dataset::Ok.generate_scaled(0.01);
        let mut base_sink = VecSink::new();
        let base = JobSpec::ranged(&g)
            .k(8)
            .threads(ThreadMode::Serial)
            .extra_sink(&mut base_sink)
            .run()
            .unwrap();
        let mut paged_sink = VecSink::new();
        let paged = JobSpec::ranged(&g)
            .k(8)
            .threads(ThreadMode::Serial)
            .mem_budget_mb(1)
            .extra_sink(&mut paged_sink)
            .run_with(&MemPages)
            .unwrap();
        assert_eq!(paged_sink.assignments(), base_sink.assignments());
        assert_eq!(
            paged.metrics.replication_factor,
            base.metrics.replication_factor
        );
        assert!(paged.report.counter("paging_budget_bytes") > 0);
    }

    #[test]
    fn serial_mem_budget_without_page_store_errors() {
        let g = Dataset::Ok.generate_scaled(0.01);
        let err = JobSpec::ranged(&g)
            .k(4)
            .threads(ThreadMode::Serial)
            .mem_budget_mb(64)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("I/O provider"), "{err}");
    }
}
