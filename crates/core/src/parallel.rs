//! Chunk-parallel two-phase partitioning — the [`ParallelRunner`].
//!
//! Both phases of 2PS-L are embarrassingly parallel over contiguous edge
//! ranges: phase 1's streaming clustering commutes up to a state merge, and
//! phase 2 scores each edge against per-vertex state that can be sharded per
//! worker. The runner splits the canonical edge order into `T` near-equal
//! ranges (see [`tps_graph::ranged::split_even`]) and runs each phase with
//! one worker per range over its own [`EdgeStream`], opened through a
//! [`RangedEdgeSource`] — in-memory graphs, v1 `.bel` files and chunked v2
//! files (via `tps-io`) all implement it, and because ranges are expressed
//! in *edge indices* the result is identical for every storage backend.
//!
//! # Execution model
//!
//! 1. **degree** — each worker computes a [`DegreeTable`] over its range;
//!    tables are summed. Exact — identical to the serial pass.
//! 2. **clustering** — each worker runs `clustering_passes` local streaming
//!    clustering passes over its range; the per-thread cluster maps are
//!    combined with [`tps_clustering::merge_clusterings`] (union-by-volume,
//!    in worker order — deterministic).
//! 3. **mapping** — Graham scheduling of the merged clusters, serial (it is
//!    `O(C log C)` on cluster counts, not edge counts).
//! 4. **partition** — each worker runs the shared phase-2 edge kernel
//!    ([`two_phase`]'s `EdgeAssigner`) over its range with a *sharded*
//!    replication matrix (each worker tracks the replicas its own
//!    assignments create) and quota-sliced load tracking (below). The
//!    pre-partitioning and scoring subpasses are preserved per worker.
//! 5. **emit** — per-worker assignment buffers are replayed into the caller's
//!    [`AssignmentSink`] in worker order, so downstream files and metrics
//!    are reproducible.
//!
//! # The load reservation scheme
//!
//! The hard balance cap `α·|E|/k` is enforced without locks and without
//! cross-thread timing dependences: each worker `t` owns the deterministic
//! quota slice `⌊(t+1)·cap/T⌋ − ⌊t·cap/T⌋` of every partition's capacity
//! (slices sum to the cap exactly), treats a partition as *full* when its
//! own slice is exhausted, and records every commit in a shared
//! [`AtomicLoads`] ledger with one relaxed `fetch_add`. Within-quota commits
//! can never push the ledger past the cap; the ledger verifies this at run
//! time and yields the merged per-partition loads for the report.
//!
//! # Determinism and quality bounds
//!
//! * For a **fixed thread count** the run is fully deterministic: ranges,
//!   merges and replay order depend only on the input. Two runs with the
//!   same `--threads` produce identical assignments.
//! * With **one thread** the runner is bit-for-bit identical to the serial
//!   [`TwoPhasePartitioner`]: the ranges degenerate to the full stream, the
//!   merge is the identity, the quota slice is the full cap, and phase 2
//!   runs the same kernel code.
//! * **Across thread counts** assignments differ (workers don't see each
//!   other's clustering migrations or scoring-time replicas), but the
//!   balance cap holds identically, and the replication factor degrades
//!   only through range-straddling state — measured on the R-MAT `OK`
//!   stand-in (400k edges, k = 32): ≈5 % at 2 threads, ≈25 % at 4 and
//!   ≈40 % at 8, shrinking as the graph grows relative to the thread count
//!   (the `parallel_scaling` bench reports `rf_vs_serial`; the `parallel`
//!   integration tests pin per-thread-count epsilons).
//! * **Degenerate tiny inputs**: when `|E|` is not much larger than
//!   `k × T`, a worker's quota slices can all round to zero and it must
//!   overshoot to place its edges. The overshoot is bounded by `k + 1`
//!   edges per worker, never occurs when `⌊cap/T⌋·k ≥ ⌈|E|/T⌉`, and is
//!   surfaced as the `cap_overshoot` counter in the [`RunReport`].
//!
//! # Memory
//!
//! Parallelism trades the paper's Table II bound for speed: per-worker
//! degree tables and clustering maps during their phases, one replication
//! matrix shard per worker in phase 2 (`O(T·|V|·k)` bits total vs the
//! serial `O(|V|·k)`), and per-worker assignment buffers until the emit
//! barrier (`O(|E|)` total). The ROADMAP tracks streaming emit and shard
//! collapsing; until then, memory-bounded runs should use the serial
//! [`TwoPhasePartitioner`] (the CLI keeps `--spill-budget-mb` serial by
//! default for exactly this reason).

use std::io;
use std::time::Instant;

use tps_clustering::merge::merge_clusterings;
use tps_clustering::model::Clustering;
use tps_clustering::streaming::{clustering_pass, VolumeCap};
use tps_graph::degree::DegreeTable;
use tps_graph::ranged::{split_even, RangedEdgeSource};
use tps_graph::types::{Edge, PartitionId};

use crate::balance::{AtomicLoads, LoadTracker};
use crate::partitioner::{PartitionParams, RunReport};
use crate::sink::AssignmentSink;
use crate::two_phase::mapping::ClusterPlacement;
use crate::two_phase::{AssignCounters, EdgeAssigner, MappingStrategy, TwoPhaseConfig};

/// A worker's view of the shared loads: deterministic quota slice locally,
/// atomic commit ledger globally (see module docs).
struct QuotaLoads<'a> {
    local: Vec<u64>,
    quota: u64,
    shared: &'a AtomicLoads,
    overshoot: u64,
}

impl<'a> QuotaLoads<'a> {
    fn new(shared: &'a AtomicLoads, thread: usize, threads: usize) -> Self {
        QuotaLoads {
            local: vec![0; shared.k() as usize],
            quota: AtomicLoads::quota_slice(shared.cap(), thread, threads),
            shared,
            overshoot: 0,
        }
    }
}

impl LoadTracker for QuotaLoads<'_> {
    fn k(&self) -> u32 {
        self.local.len() as u32
    }
    fn load(&self, p: PartitionId) -> u64 {
        self.local[p as usize]
    }
    fn is_full(&self, p: PartitionId) -> bool {
        self.local[p as usize] >= self.quota
    }
    fn add(&mut self, p: PartitionId) {
        self.local[p as usize] += 1;
        if !self.shared.reserve(p) {
            // Only reachable through the degenerate all-quotas-exhausted
            // fallback; counted and reported, never silent.
            self.overshoot += 1;
        }
    }
    fn least_loaded(&self) -> PartitionId {
        let mut best = 0u32;
        let mut best_load = self.local[0];
        for (i, &l) in self.local.iter().enumerate().skip(1) {
            if l < best_load {
                best = i as u32;
                best_load = l;
            }
        }
        best
    }
    fn max_load(&self) -> u64 {
        self.local.iter().copied().max().unwrap_or(0)
    }
    fn min_load(&self) -> u64 {
        self.local.iter().copied().min().unwrap_or(0)
    }
}

/// The chunk-parallel two-phase partitioner.
///
/// Unlike [`crate::partitioner::Partitioner`] implementations it consumes a
/// [`RangedEdgeSource`] rather than a single stream cursor — parallelism
/// needs independent range streams, which a `&mut dyn EdgeStream` cannot
/// provide.
#[derive(Clone, Debug)]
pub struct ParallelRunner {
    config: TwoPhaseConfig,
    threads: usize,
}

impl ParallelRunner {
    /// A runner executing `config` on `threads` worker threads.
    /// `threads = 0` selects [`std::thread::available_parallelism`].
    pub fn new(config: TwoPhaseConfig, threads: usize) -> Self {
        assert!(
            config.clustering_passes >= 1,
            "need at least one clustering pass"
        );
        assert!(
            config.volume_cap_factor > 0.0,
            "volume cap factor must be positive"
        );
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        ParallelRunner { config, threads }
    }

    /// The worker thread count in use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The two-phase configuration in use.
    pub fn config(&self) -> &TwoPhaseConfig {
        &self.config
    }

    /// Algorithm name, matching the serial partitioner's with a thread tag.
    pub fn name(&self) -> String {
        let base = match self.config.strategy {
            crate::two_phase::RemainingStrategy::TwoChoice => "2PS-L",
            crate::two_phase::RemainingStrategy::Hdrf(_) => "2PS-HDRF",
        };
        format!("{base}×{}", self.threads)
    }

    /// Partition `source` into `params.k` parts, emitting every assignment
    /// into `sink` (in deterministic worker order) and returning the merged
    /// report.
    pub fn partition(
        &self,
        source: &dyn RangedEdgeSource,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<RunReport> {
        let mut report = RunReport::default();
        let info = source.info();
        if info.num_edges == 0 {
            return Ok(report);
        }
        let threads = self.threads.max(1);
        let ranges = split_even(info.num_edges, threads);

        // Phase 0: degrees, one worker per range, summed.
        let t0 = Instant::now();
        let tables = run_workers(&ranges, |_, (a, b)| {
            let mut s = source.open_range(a, b)?;
            DegreeTable::compute(&mut s, info.num_vertices)
        })?;
        let degrees = merge_degree_tables(tables);
        report.phases.record("degree", t0.elapsed());

        // Phase 1: local streaming clustering per range, merged by volume.
        let t1 = Instant::now();
        let cap = VolumeCap::FractionOfTotal(self.config.volume_cap_factor / params.k as f64)
            .resolve(degrees.total_volume());
        let locals = run_workers(&ranges, |_, (a, b)| {
            let mut s = source.open_range(a, b)?;
            let mut c = Clustering::empty(info.num_vertices);
            for _ in 0..self.config.clustering_passes {
                clustering_pass(&mut s, &degrees, cap, &mut c)?;
            }
            Ok(c)
        })?;
        let clustering = merge_clusterings(&locals, &degrees);
        drop(locals);
        report.phases.record("clustering", t1.elapsed());

        // Phase 2 step 1: cluster→partition mapping (serial, edge-free).
        let t2 = Instant::now();
        let placement = match self.config.mapping {
            MappingStrategy::SortedGraham => {
                ClusterPlacement::sorted_list_schedule(&clustering, params.k)
            }
            MappingStrategy::UnsortedFirstFit => {
                ClusterPlacement::unsorted_schedule(&clustering, params.k)
            }
        };
        report.phases.record("mapping", t2.elapsed());

        // Phase 2 step 2: the pre-partitioning subpass per range. Targets
        // depend only on the (merged) clustering, placement and load quotas
        // — not on replica state — so running it first and merging the
        // per-worker replication shards afterwards is deterministic.
        let t3 = Instant::now();
        let shared = AtomicLoads::new(params.k, info.num_edges, params.alpha);
        let mut states = run_workers(&ranges, |t, (a, b)| {
            let mut assigner = EdgeAssigner::new(
                &degrees,
                &clustering,
                &placement,
                info.num_vertices,
                QuotaLoads::new(&shared, t, threads),
                self.config.hash_seed,
            );
            let mut out = BufferSink::default();
            if self.config.prepartitioning {
                let mut s = source.open_range(a, b)?;
                s.reset()?;
                while let Some(edge) = s.next_edge()? {
                    assigner.prepartition_edge(edge, &mut out)?;
                }
            }
            Ok((assigner, out))
        })?;
        report.phases.record("prepartition", t3.elapsed());

        // Barrier: union the sharded replication matrices so every worker
        // scores the remaining edges with global visibility of the replicas
        // the pre-partitioning subpass created (OR is order-independent).
        if threads > 1 && self.config.prepartitioning {
            let (first, rest) = states.split_at_mut(1);
            let merged = &mut first[0].0.v2p;
            for (a, _) in rest.iter() {
                merged.merge_from(&a.v2p);
            }
            let merged = merged.clone();
            for (a, _) in &mut states[1..] {
                a.v2p = merged.clone();
            }
        }

        // Phase 2 step 3: score-and-assign the remaining edges per range.
        let t4 = Instant::now();
        let worker_out = run_workers_with(&ranges, states, |_, (a, b), state| {
            let (mut assigner, mut out) = state;
            let mut s = source.open_range(a, b)?;
            s.reset()?;
            while let Some(edge) = s.next_edge()? {
                if self.config.prepartitioning && assigner.prepartition_target(edge).is_some() {
                    continue; // handled by the pre-partitioning subpass
                }
                assigner.assign_remaining(edge, self.config.strategy, &mut out)?;
            }
            Ok((out.0, assigner.counters, assigner.loads.overshoot))
        })?;
        report.phases.record("partition", t4.elapsed());

        // Emit: replay per-worker buffers in deterministic worker order.
        let t5 = Instant::now();
        let mut counters = AssignCounters::default();
        let mut overshoot = 0u64;
        for (buf, c, o) in worker_out {
            counters.merge(&c);
            overshoot += o;
            for (edge, p) in buf {
                sink.assign(edge, p)?;
            }
        }
        report.phases.record("emit", t5.elapsed());

        debug_assert_eq!(shared.total(), info.num_edges);
        report.count("threads", threads as u64);
        report.count("prepartitioned", counters.prepartitioned);
        report.count("prepartition_overflow", counters.prepartition_overflow);
        report.count("remaining", counters.remaining);
        report.count("fallback_hash", counters.fallback_hash);
        report.count("fallback_least_loaded", counters.fallback_least_loaded);
        report.count("cap_overshoot", overshoot);
        report.count("clusters", clustering.num_nonempty_clusters() as u64);
        report.count("cluster_volume_cap", cap);
        report.count("max_cluster_volume", clustering.max_volume());
        Ok(report)
    }
}

/// An in-memory [`AssignmentSink`] for worker-local buffering (replayed into
/// the real sink after the barrier).
#[derive(Default)]
struct BufferSink(Vec<(Edge, PartitionId)>);

impl AssignmentSink for BufferSink {
    #[inline]
    fn assign(&mut self, edge: Edge, p: PartitionId) -> io::Result<()> {
        self.0.push((edge, p));
        Ok(())
    }
}

/// Run `work(t, range)` on one scoped thread per range, collecting results
/// in range order and propagating the first error.
fn run_workers<T, F>(ranges: &[(u64, u64)], work: F) -> io::Result<Vec<T>>
where
    T: Send,
    F: Fn(usize, (u64, u64)) -> io::Result<T> + Sync,
{
    run_workers_with(ranges, vec![(); ranges.len()], |t, range, ()| {
        work(t, range)
    })
}

/// Like [`run_workers`], additionally moving one element of `state` into
/// each worker (resuming per-worker state across a barrier).
fn run_workers_with<W, T, F>(ranges: &[(u64, u64)], state: Vec<W>, work: F) -> io::Result<Vec<T>>
where
    W: Send,
    T: Send,
    F: Fn(usize, (u64, u64), W) -> io::Result<T> + Sync,
{
    debug_assert_eq!(ranges.len(), state.len());
    if ranges.len() == 1 {
        // Skip thread spawn/join overhead on the single-worker path (also
        // keeps one-thread runs trivially free of scheduler effects).
        let w = state.into_iter().next().expect("one state per range");
        return Ok(vec![work(0, ranges[0], w)?]);
    }
    let work = &work;
    let results: Vec<io::Result<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .zip(state)
            .enumerate()
            .map(|(t, (&range, w))| scope.spawn(move || work(t, range, w)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    results.into_iter().collect()
}

/// Sum per-worker degree tables (saturating, matching the serial pass).
fn merge_degree_tables(tables: Vec<DegreeTable>) -> DegreeTable {
    let mut it = tables.into_iter();
    let first = it.next().expect("at least one worker");
    let mut sum: Vec<u32> = first.as_slice().to_vec();
    for t in it {
        for (acc, &d) in sum.iter_mut().zip(t.as_slice()) {
            *acc = acc.saturating_add(d);
        }
    }
    DegreeTable::from_vec(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::Partitioner;
    use crate::sink::{QualitySink, VecSink};
    use crate::two_phase::TwoPhasePartitioner;
    use tps_graph::datasets::Dataset;
    use tps_graph::stream::InMemoryGraph;

    fn serial_assignments(g: &InMemoryGraph, k: u32) -> Vec<(Edge, PartitionId)> {
        let mut sink = VecSink::new();
        TwoPhasePartitioner::new(TwoPhaseConfig::default())
            .partition(&mut g.stream(), &PartitionParams::new(k), &mut sink)
            .unwrap();
        sink.into_assignments()
    }

    fn parallel_assignments(
        g: &InMemoryGraph,
        k: u32,
        threads: usize,
    ) -> (Vec<(Edge, PartitionId)>, RunReport) {
        let mut sink = VecSink::new();
        let runner = ParallelRunner::new(TwoPhaseConfig::default(), threads);
        let report = runner
            .partition(g, &PartitionParams::new(k), &mut sink)
            .unwrap();
        (sink.into_assignments(), report)
    }

    #[test]
    fn one_thread_is_bit_identical_to_serial() {
        let g = Dataset::It.generate_scaled(0.02);
        let serial = serial_assignments(&g, 8);
        let (parallel, report) = parallel_assignments(&g, 8, 1);
        assert_eq!(serial, parallel);
        assert_eq!(report.counter("cap_overshoot"), 0);
    }

    #[test]
    fn every_edge_assigned_exactly_once_at_any_thread_count() {
        let g = Dataset::Ok.generate_scaled(0.02);
        let mut want: Vec<Edge> = g.edges().to_vec();
        want.sort();
        for threads in [1usize, 2, 3, 4, 8] {
            let (assignments, _) = parallel_assignments(&g, 16, threads);
            let mut got: Vec<Edge> = assignments.iter().map(|&(e, _)| e).collect();
            got.sort();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn deterministic_for_fixed_thread_count() {
        let g = Dataset::Uk.generate_scaled(0.01);
        for threads in [2usize, 4] {
            let (a, _) = parallel_assignments(&g, 16, threads);
            let (b, _) = parallel_assignments(&g, 16, threads);
            assert_eq!(a, b, "threads = {threads}");
        }
    }

    #[test]
    fn balance_cap_holds_on_real_graphs() {
        let g = Dataset::Ok.generate_scaled(0.02);
        for threads in [2usize, 4, 8] {
            let mut sink = QualitySink::new(g.num_vertices(), 16);
            let runner = ParallelRunner::new(TwoPhaseConfig::default(), threads);
            let report = runner
                .partition(&g, &PartitionParams::new(16), &mut sink)
                .unwrap();
            let cap = crate::balance::PartitionLoads::new(16, g.num_edges(), 1.05).cap();
            let m = sink.finish();
            assert_eq!(report.counter("cap_overshoot"), 0);
            assert!(
                m.max_load <= cap,
                "threads {threads}: max load {} > cap {cap}",
                m.max_load
            );
            assert_eq!(m.num_edges, g.num_edges());
        }
    }

    #[test]
    fn empty_source_is_a_noop() {
        let g = InMemoryGraph::from_edges(vec![]);
        let (assignments, report) = parallel_assignments(&g, 4, 4);
        assert!(assignments.is_empty());
        assert_eq!(report.counter("threads"), 0);
    }

    #[test]
    fn more_threads_than_edges_still_assigns_all() {
        let g = InMemoryGraph::from_edges(vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)]);
        let (assignments, _) = parallel_assignments(&g, 2, 8);
        assert_eq!(assignments.len(), 3);
    }

    #[test]
    fn zero_threads_selects_available_parallelism() {
        let r = ParallelRunner::new(TwoPhaseConfig::default(), 0);
        assert!(r.threads() >= 1);
        assert!(r.name().starts_with("2PS-L×"));
    }

    #[test]
    fn hdrf_variant_runs_parallel() {
        let g = Dataset::Ok.generate_scaled(0.01);
        let mut sink = VecSink::new();
        let runner = ParallelRunner::new(TwoPhaseConfig::hdrf_variant(), 4);
        runner
            .partition(&g, &PartitionParams::new(8), &mut sink)
            .unwrap();
        assert_eq!(sink.assignments().len() as u64, g.num_edges());
    }

    #[test]
    fn replication_factor_stays_close_to_serial() {
        let g = Dataset::It.generate_scaled(0.05);
        let k = 16;
        let mut serial_sink = QualitySink::new(g.num_vertices(), k);
        TwoPhasePartitioner::new(TwoPhaseConfig::default())
            .partition(&mut g.stream(), &PartitionParams::new(k), &mut serial_sink)
            .unwrap();
        let serial_rf = serial_sink.finish().replication_factor;
        for threads in [2usize, 4, 8] {
            let mut sink = QualitySink::new(g.num_vertices(), k);
            ParallelRunner::new(TwoPhaseConfig::default(), threads)
                .partition(&g, &PartitionParams::new(k), &mut sink)
                .unwrap();
            let rf = sink.finish().replication_factor;
            assert!(
                rf <= serial_rf * 1.35 + 0.05,
                "threads {threads}: rf {rf} vs serial {serial_rf}"
            );
        }
    }
}
