//! Chunk-parallel two-phase partitioning — the [`ParallelRunner`] — and the
//! per-shard phase kernels it is built from.
//!
//! Both phases of 2PS-L are embarrassingly parallel over contiguous edge
//! ranges: phase 1's streaming clustering commutes up to a state merge, and
//! phase 2 scores each edge against per-vertex state that can be sharded per
//! worker. The runner splits the canonical edge order into `T` near-equal
//! ranges (see [`tps_graph::ranged::split_even`]) and runs each phase with
//! one worker per range over its own [`EdgeStream`], opened through a
//! [`RangedEdgeSource`] — in-memory graphs, v1 `.bel` files and chunked v2
//! files (via `tps-io`) all implement it, and because ranges are expressed
//! in *edge indices* the result is identical for every storage backend.
//!
//! # Per-shard kernels
//!
//! The phase logic is deliberately **not** owned by the thread pool: the
//! free functions [`shard_degrees`] and [`shard_clustering`] plus the
//! [`ShardAssigner`] state machine run one shard of one phase each, and the
//! runner merely schedules them onto scoped threads ([`run_workers`]) and
//! merges between barriers. `tps-dist` schedules the *same* kernels onto
//! worker processes connected over a socket, which is how a distributed run
//! can be bit-identical to `--threads N` — both execute this module's code
//! per shard; only the barrier transport differs.
//!
//! The kernels are **restartable**: they keep no state outside their own
//! instances (no globals, no cross-call caches), so re-running a kernel
//! from the source with the same merged inputs reproduces its output bit
//! for bit. `tps-dist`'s fault tolerance leans on this — when a worker
//! dies mid-shard, the coordinator re-issues the shard and the replacement
//! recomputes an identical contribution (pinned by
//! `shard_kernels_are_restartable_mid_job` below).
//!
//! # Execution model
//!
//! 1. **degree** — each worker computes a [`DegreeTable`] over its range;
//!    tables are summed. Exact — identical to the serial pass.
//! 2. **clustering** — each worker runs `clustering_passes` local streaming
//!    clustering passes over its range; the per-thread cluster maps are
//!    combined with [`tps_clustering::merge_clusterings`] (union-by-volume,
//!    in worker order — deterministic).
//! 3. **mapping** — Graham scheduling of the merged clusters, serial (it is
//!    `O(C log C)` on cluster counts, not edge counts).
//! 4. **partition** — each worker runs the shared phase-2 edge kernel
//!    ([`crate::two_phase`]'s `EdgeAssigner`) over its range against **one
//!    shared** [`AtomicReplicationMatrix`] (word-level relaxed `fetch_or`)
//!    and quota-sliced load tracking (below). The pre-partitioning subpass
//!    writes replication state but never reads it (targets depend only on
//!    the merged clustering, placement and quotas), so all workers writing
//!    the same words is race-free by construction; at the barrier the
//!    shared matrix *is* the OR-merge of the old per-worker shards — OR is
//!    commutative, associative and idempotent — with no merge pass and no
//!    copies. Each worker's view is then **frozen**: scoring-subpass
//!    writes land in a private sparse overlay, so every worker scores
//!    against "merged state ∪ its own scoring replicas" — exactly the
//!    sharded semantics, bit for bit, at `O(|V|·k)` total instead of
//!    `O(T·|V|·k)`.
//! 5. **emit** — per-worker assignment spools are replayed into the caller's
//!    [`AssignmentSink`] in worker order, so downstream files and metrics
//!    are reproducible. Spools default to in-memory buffers; a
//!    [`SpoolFactory`] can bound them (`tps-io`'s spill-backed spools keep
//!    parallel runs within `--spill-budget-mb`).
//!
//! # The load reservation scheme
//!
//! The hard balance cap `α·|E|/k` is enforced without locks and without
//! cross-thread timing dependences: each worker `t` owns the deterministic
//! quota slice `⌊(t+1)·cap/T⌋ − ⌊t·cap/T⌋` of every partition's capacity
//! (slices sum to the cap exactly), treats a partition as *full* when its
//! own slice is exhausted, and records every commit in a shared
//! [`AtomicLoads`] ledger with one relaxed `fetch_add`. Within-quota commits
//! can never push the ledger past the cap; the ledger verifies this at run
//! time and yields the merged per-partition loads for the report. Because
//! every *decision* reads only the worker-local slice ([`ShardLoads`]), the
//! ledger is optional: a distributed worker runs the identical decision path
//! with [`ShardLoads::standalone`] and the coordinator recomputes the
//! overshoot from the merged loads (`Σ_p max(0, load_p − cap)` — exactly
//! what the in-process ledger counts, independent of interleaving).
//!
//! # Determinism and quality bounds
//!
//! * For a **fixed thread count** the run is fully deterministic: ranges,
//!   merges and replay order depend only on the input. Two runs with the
//!   same `--threads` produce identical assignments.
//! * With **one thread** the runner is bit-for-bit identical to the serial
//!   [`TwoPhasePartitioner`](crate::two_phase::TwoPhasePartitioner): the ranges degenerate to the full stream, the
//!   merge is the identity, the quota slice is the full cap, and phase 2
//!   runs the same kernel code.
//! * **Across thread counts** assignments differ (workers don't see each
//!   other's clustering migrations or scoring-time replicas), but the
//!   balance cap holds identically, and the replication factor degrades
//!   only through range-straddling state — measured on the R-MAT `OK`
//!   stand-in (400k edges, k = 32): ≈5 % at 2 threads, ≈25 % at 4 and
//!   ≈40 % at 8, shrinking as the graph grows relative to the thread count
//!   (the `parallel_scaling` bench reports `rf_vs_serial`; the `parallel`
//!   integration tests pin per-thread-count epsilons).
//! * **Degenerate tiny inputs**: when `|E|` is not much larger than
//!   `k × T`, a worker's quota slices can all round to zero and it must
//!   overshoot to place its edges. The overshoot is bounded by `k + 1`
//!   edges per worker, never occurs when `⌊cap/T⌋·k ≥ ⌈|E|/T⌉`, and is
//!   surfaced as the `cap_overshoot` counter in the [`RunReport`].
//!
//! # Memory
//!
//! Phase 2 keeps the paper's Table II replication bound at any thread
//! count: **one** shared `O(|V|·k)`-bit [`AtomicReplicationMatrix`] plus a
//! per-worker sparse overlay proportional to the worker's own
//! scoring-time replicas (measured by the `mem_peak` bench and gated in
//! CI). The remaining per-worker state is transient — degree tables and
//! clustering maps during their phases — plus the assignment spools until
//! the emit barrier (`O(|E|)` with the default in-memory spools;
//! **bounded** when a spill-backed [`SpoolFactory`] is installed — the CLI
//! wires `--spill-budget-mb` to `tps-io`'s spill spools for exactly this
//! reason).

use std::io;
use std::sync::Arc;

use tps_clustering::merge::merge_clusterings;
use tps_clustering::model::Clustering;
use tps_clustering::streaming::{clustering_pass, VolumeCap};
use tps_graph::degree::DegreeTable;
use tps_graph::ranged::{split_even, RangedEdgeSource};
use tps_graph::stream::EdgeStream;
use tps_graph::types::PartitionId;
use tps_metrics::atomic::{AtomicReplicationMatrix, SharedReplicaView};
use tps_metrics::bitmatrix::{ReplicaSet, ReplicationMatrix};

use crate::balance::{AtomicLoads, LoadTracker, PartitionLoads};
use crate::partitioner::{PartitionParams, RunReport};
use crate::sink::{AssignmentSink, MemorySpoolFactory, SpoolFactory};
use crate::two_phase::mapping::ClusterPlacement;
use crate::two_phase::{AssignCounters, EdgeAssigner, MappingStrategy, TwoPhaseConfig};

/// A shard's view of the per-partition loads: deterministic quota slice
/// locally, optional atomic commit ledger globally (see module docs).
///
/// Decisions (`is_full`, `least_loaded`, scoring reads) depend **only** on
/// the local slice, so a tracker with and without the ledger takes identical
/// decisions — the ledger adds run-time cap verification and overshoot
/// counting for in-process runs.
pub struct ShardLoads<'a> {
    local: Vec<u64>,
    quota: u64,
    ledger: Option<&'a AtomicLoads>,
    overshoot: u64,
}

impl<'a> ShardLoads<'a> {
    /// Loads for shard `shard` of `shards`, committing into `ledger`.
    pub fn with_ledger(ledger: &'a AtomicLoads, shard: usize, shards: usize) -> ShardLoads<'a> {
        ShardLoads {
            local: vec![0; ledger.k() as usize],
            quota: AtomicLoads::quota_slice(ledger.cap(), shard, shards),
            ledger: Some(ledger),
            overshoot: 0,
        }
    }

    /// Loads for shard `shard` of `shards` with no shared ledger — the
    /// distributed worker's tracker (`cap` is the full `α·|E|/k` cap; the
    /// quota slice is derived exactly as in [`ShardLoads::with_ledger`]).
    pub fn standalone(k: u32, cap: u64, shard: usize, shards: usize) -> ShardLoads<'static> {
        ShardLoads {
            local: vec![0; k as usize],
            quota: AtomicLoads::quota_slice(cap, shard, shards),
            ledger: None,
            overshoot: 0,
        }
    }

    /// This shard's quota slice of the cap.
    pub fn quota(&self) -> u64 {
        self.quota
    }

    /// Edges this shard committed per partition.
    pub fn local_loads(&self) -> &[u64] {
        &self.local
    }

    /// Ledger-witnessed cap overshoots (always 0 without a ledger; the
    /// coordinator of a ledger-free run recomputes the total from the merged
    /// loads instead).
    pub fn overshoot(&self) -> u64 {
        self.overshoot
    }
}

impl LoadTracker for ShardLoads<'_> {
    fn k(&self) -> u32 {
        self.local.len() as u32
    }
    fn load(&self, p: PartitionId) -> u64 {
        self.local[p as usize]
    }
    fn is_full(&self, p: PartitionId) -> bool {
        self.local[p as usize] >= self.quota
    }
    fn add(&mut self, p: PartitionId) {
        self.local[p as usize] += 1;
        if let Some(ledger) = self.ledger {
            if !ledger.reserve(p) {
                // Only reachable through the degenerate all-quotas-exhausted
                // fallback; counted and reported, never silent.
                self.overshoot += 1;
            }
        }
    }
    fn least_loaded(&self) -> PartitionId {
        let mut best = 0u32;
        let mut best_load = self.local[0];
        for (i, &l) in self.local.iter().enumerate().skip(1) {
            if l < best_load {
                best = i as u32;
                best_load = l;
            }
        }
        best
    }
    fn max_load(&self) -> u64 {
        self.local.iter().copied().max().unwrap_or(0)
    }
    fn min_load(&self) -> u64 {
        self.local.iter().copied().min().unwrap_or(0)
    }
}

/// Phase 0 for one shard: exact degrees over edge range `range`.
pub fn shard_degrees(
    source: &dyn RangedEdgeSource,
    range: (u64, u64),
    num_vertices: u64,
) -> io::Result<DegreeTable> {
    let mut s = source.open_range(range.0, range.1)?;
    DegreeTable::compute(&mut s, num_vertices)
}

/// Sum per-worker degree tables (saturating, matching the serial pass).
pub fn merge_degree_tables(tables: Vec<DegreeTable>) -> DegreeTable {
    let mut it = tables.into_iter();
    let first = it.next().expect("at least one worker");
    let mut sum: Vec<u32> = first.as_slice().to_vec();
    for t in it {
        for (acc, &d) in sum.iter_mut().zip(t.as_slice()) {
            *acc = acc.saturating_add(d);
        }
    }
    DegreeTable::from_vec(sum)
}

/// The resolved cluster volume cap for this configuration (identical on
/// every shard runner given the merged degrees).
pub fn resolve_volume_cap(config: &TwoPhaseConfig, k: u32, degrees: &DegreeTable) -> u64 {
    VolumeCap::FractionOfTotal(config.volume_cap_factor / k as f64).resolve(degrees.total_volume())
}

/// Phase 1 for one shard: `config.clustering_passes` local streaming
/// clustering passes over edge range `range`, against the **merged** exact
/// degrees.
///
/// `compact_ids` drops since-emptied cluster ids from the local result
/// (multi-pass clustering abandons ids as vertices migrate) — pass `true`
/// whenever more than one shard will be merged: it shrinks the local
/// state, the distributed `LocalClustering` frame, and the merge's
/// concatenated id space, and the merged (and re-compacted) clustering is
/// bit-identical either way because local compaction preserves the
/// relative order of surviving ids. Single-shard runs must pass `false` so
/// the ids match the serial runner's exactly.
pub fn shard_clustering(
    source: &dyn RangedEdgeSource,
    range: (u64, u64),
    config: &TwoPhaseConfig,
    degrees: &DegreeTable,
    volume_cap: u64,
    num_vertices: u64,
    compact_ids: bool,
) -> io::Result<Clustering> {
    let mut s = source.open_range(range.0, range.1)?;
    let mut c = Clustering::empty(num_vertices);
    for _ in 0..config.clustering_passes {
        clustering_pass(&mut s, degrees, volume_cap, &mut c)?;
    }
    if compact_ids {
        c.compact_ids();
    }
    Ok(c)
}

/// Phase 2 step 1: the cluster→partition placement for `config` (serial,
/// edge-free — runs once, on whichever node holds the merged clustering).
pub fn cluster_placement(
    config: &TwoPhaseConfig,
    clustering: &Clustering,
    k: u32,
) -> ClusterPlacement {
    match config.mapping {
        MappingStrategy::SortedGraham => ClusterPlacement::sorted_list_schedule(clustering, k),
        MappingStrategy::UnsortedFirstFit => ClusterPlacement::unsorted_schedule(clustering, k),
    }
}

/// Phase 2 for one shard: the pre-partitioning and scoring subpasses with
/// quota-sliced loads, generic over the replication state.
///
/// The assigner survives the replication barrier between the two subpasses.
/// With an owned [`ReplicationMatrix`] (the default — `tps-dist`'s
/// workers): run [`prepartition_pass`](ShardAssigner::prepartition_pass),
/// exchange [`replication_shard`](ShardAssigner::replication_shard) /
/// [`install_replication`](ShardAssigner::install_replication) (or the
/// chunked [`install_replication_range`](ShardAssigner::install_replication_range)),
/// then run [`remaining_pass`](ShardAssigner::remaining_pass). With a
/// [`SharedReplicaView`] (the in-process runner): the barrier is just
/// [`freeze_replication`](ShardAssigner::freeze_replication) — the shared
/// matrix already holds the union of every worker's pre-partition writes.
pub struct ShardAssigner<'a, R: ReplicaSet = ReplicationMatrix> {
    config: TwoPhaseConfig,
    inner: EdgeAssigner<'a, ShardLoads<'a>, R>,
}

impl<'a, R: ReplicaSet> ShardAssigner<'a, R> {
    /// An assigner over the merged phase-1 state for one shard.
    pub fn new(
        config: TwoPhaseConfig,
        degrees: &'a DegreeTable,
        clustering: &'a Clustering,
        placement: &'a ClusterPlacement,
        replicas: R,
        loads: ShardLoads<'a>,
    ) -> Self {
        let inner = EdgeAssigner::new(
            degrees,
            clustering,
            placement,
            replicas,
            loads,
            config.hash_seed,
        );
        ShardAssigner { config, inner }
    }

    /// The pre-partitioning subpass over this shard's edges.
    pub fn prepartition_pass(
        &mut self,
        stream: &mut dyn EdgeStream,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<()> {
        stream.reset()?;
        while let Some(edge) = stream.next_edge()? {
            self.inner.prepartition_edge(edge, sink)?;
        }
        Ok(())
    }

    /// The scoring subpass over this shard's edges (skipping edges the
    /// pre-partitioning subpass already handled).
    pub fn remaining_pass(
        &mut self,
        stream: &mut dyn EdgeStream,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<()> {
        stream.reset()?;
        while let Some(edge) = stream.next_edge()? {
            if self.config.prepartitioning && self.inner.prepartition_target(edge).is_some() {
                continue; // handled by the pre-partitioning subpass
            }
            self.inner
                .assign_remaining(edge, self.config.strategy, sink)?;
        }
        Ok(())
    }

    /// This shard's phase-2 counters.
    pub fn counters(&self) -> AssignCounters {
        self.inner.counters
    }

    /// Edges this shard committed per partition.
    pub fn local_loads(&self) -> &[u64] {
        self.inner.loads.local_loads()
    }

    /// Ledger-witnessed cap overshoots (see [`ShardLoads::overshoot`]).
    pub fn overshoot(&self) -> u64 {
        self.inner.loads.overshoot()
    }
}

impl<'a> ShardAssigner<'a, ReplicationMatrix> {
    /// The replicas this shard's assignments created so far (what crosses
    /// the prepartition/scoring barrier in a distributed run).
    pub fn replication_shard(&self) -> &ReplicationMatrix {
        &self.inner.v2p
    }

    /// Replace this shard's replica view with the OR-merged global matrix.
    pub fn install_replication(&mut self, merged: ReplicationMatrix) {
        self.inner.v2p = merged;
    }

    /// Replace the packed words of the vertex range starting at `v0` with
    /// the merged words of one replication chunk (`tps-dist` protocol v3:
    /// the barrier arrives as bounded vertex-range frames rather than one
    /// whole-matrix message).
    pub fn install_replication_range(&mut self, v0: u64, words: &[u64]) -> Result<(), String> {
        self.inner.v2p.install_range_words(v0, words)
    }
}

impl<'a> ShardAssigner<'a, SharedReplicaView<'a>> {
    /// The in-process replication barrier: stop writing through to the
    /// shared matrix (it now holds the union of every worker's
    /// pre-partition replicas) and keep scoring-subpass writes in this
    /// worker's private overlay. Must be called after *all* workers'
    /// pre-partition passes have joined.
    pub fn freeze_replication(&mut self) {
        self.inner.v2p.freeze();
    }

    /// Words held privately by this worker's post-freeze overlay (memory
    /// accounting: the worker's own scoring-time replicas).
    pub fn overlay_words(&self) -> usize {
        self.inner.v2p.overlay_words()
    }
}

/// The chunk-parallel two-phase partitioner.
///
/// Unlike [`crate::partitioner::Partitioner`] implementations it consumes a
/// [`RangedEdgeSource`] rather than a single stream cursor — parallelism
/// needs independent range streams, which a `&mut dyn EdgeStream` cannot
/// provide.
#[derive(Clone)]
pub struct ParallelRunner {
    config: TwoPhaseConfig,
    threads: usize,
    spool_factory: Option<Arc<dyn SpoolFactory + Send + Sync>>,
}

impl std::fmt::Debug for ParallelRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelRunner")
            .field("config", &self.config)
            .field("threads", &self.threads)
            .field("spool_factory", &self.spool_factory.is_some())
            .finish()
    }
}

impl ParallelRunner {
    /// A runner executing `config` on `threads` worker threads.
    /// `threads = 0` selects [`std::thread::available_parallelism`].
    pub fn new(config: TwoPhaseConfig, threads: usize) -> Self {
        assert!(
            config.clustering_passes >= 1,
            "need at least one clustering pass"
        );
        assert!(
            config.volume_cap_factor > 0.0,
            "volume cap factor must be positive"
        );
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        ParallelRunner {
            config,
            threads,
            spool_factory: None,
        }
    }

    /// Replace the default in-memory assignment spools with `factory`'s
    /// (e.g. `tps-io`'s spill-backed spools for memory-bounded runs).
    /// Replay order and contents are unaffected — only where the bytes wait.
    pub fn with_spool_factory(mut self, factory: Arc<dyn SpoolFactory + Send + Sync>) -> Self {
        self.spool_factory = Some(factory);
        self
    }

    /// The worker thread count in use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured spool factory, if one replaced the in-memory default
    /// (lets `JobSpec` shims rebuild an equivalent run).
    pub fn spool_factory_handle(&self) -> Option<Arc<dyn SpoolFactory + Send + Sync>> {
        self.spool_factory.clone()
    }

    /// The two-phase configuration in use.
    pub fn config(&self) -> &TwoPhaseConfig {
        &self.config
    }

    /// Algorithm name, matching the serial partitioner's with a thread tag.
    pub fn name(&self) -> String {
        let base = match self.config.strategy {
            crate::two_phase::RemainingStrategy::TwoChoice => "2PS-L",
            crate::two_phase::RemainingStrategy::Hdrf(_) => "2PS-HDRF",
        };
        format!("{base}×{}", self.threads)
    }

    /// Partition `source` into `params.k` parts, emitting every assignment
    /// into `sink` (in deterministic worker order) and returning the merged
    /// report.
    pub fn partition(
        &self,
        source: &dyn RangedEdgeSource,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<RunReport> {
        let mut report = RunReport::default();
        let info = source.info();
        if info.num_edges == 0 {
            return Ok(report);
        }
        let threads = self.threads.max(1);
        let ranges = split_even(info.num_edges, threads);
        let factory: &dyn SpoolFactory = match &self.spool_factory {
            Some(f) => &**f,
            None => &MemorySpoolFactory,
        };

        // Phase 0: degrees, one worker per range, summed.
        let s0 = tps_obs::span("degree");
        let tables = run_workers(&ranges, |_, range| {
            shard_degrees(source, range, info.num_vertices)
        })?;
        let degrees = merge_degree_tables(tables);
        report.phases.record("degree", s0.end());

        // Phase 1: local streaming clustering per range, merged by volume.
        let s1 = tps_obs::span("clustering");
        let cap = resolve_volume_cap(&self.config, params.k, &degrees);
        let locals = run_workers(&ranges, |_, range| {
            shard_clustering(
                source,
                range,
                &self.config,
                &degrees,
                cap,
                info.num_vertices,
                threads > 1,
            )
        })?;
        let clustering = merge_clusterings(&locals, &degrees);
        drop(locals);
        report.phases.record("clustering", s1.end());

        // Phase 2 step 1: cluster→partition mapping (serial, edge-free).
        let s2 = tps_obs::span("mapping");
        let placement = cluster_placement(&self.config, &clustering, params.k);
        report.phases.record("mapping", s2.end());

        // Phase 2 step 2: the pre-partitioning subpass per range. Targets
        // depend only on the (merged) clustering, placement and load quotas
        // — not on replica state — so every worker writing its replicas
        // into the one shared atomic matrix (relaxed fetch_or, no reads)
        // is deterministic, and the matrix at the barrier equals the
        // OR-merge of the old per-worker shards for any interleaving.
        let s3 = tps_obs::span("prepartition");
        let shared = AtomicLoads::new(params.k, info.num_edges, params.alpha);
        let replicas = AtomicReplicationMatrix::new(info.num_vertices, params.k);
        let mut states = run_workers(&ranges, |t, (a, b)| {
            let mut assigner = ShardAssigner::new(
                self.config,
                &degrees,
                &clustering,
                &placement,
                SharedReplicaView::new(&replicas),
                ShardLoads::with_ledger(&shared, t, threads),
            );
            let mut spool = factory.create_spool(t)?;
            if self.config.prepartitioning {
                let mut s = source.open_range(a, b)?;
                assigner.prepartition_pass(&mut s, &mut *spool)?;
            }
            Ok((assigner, spool))
        })?;
        report.phases.record("prepartition", s3.end());

        // Barrier: freeze every worker's view. No merge and no copies —
        // the shared matrix already holds the union; scoring-subpass
        // writes go to per-worker sparse overlays so each worker sees
        // exactly "merged ∪ its own scoring replicas" (the sharded-path
        // semantics, at the serial memory bound).
        for (assigner, _) in &mut states {
            assigner.freeze_replication();
        }

        // Phase 2 step 3: score-and-assign the remaining edges per range.
        let s4 = tps_obs::span("partition");
        let worker_out = run_workers_with(&ranges, states, |_, (a, b), state| {
            let (mut assigner, mut spool) = state;
            let mut s = source.open_range(a, b)?;
            assigner.remaining_pass(&mut s, &mut *spool)?;
            Ok((spool, assigner.counters(), assigner.overshoot()))
        })?;
        report.phases.record("partition", s4.end());

        // Emit: replay per-worker spools in deterministic worker order.
        let s5 = tps_obs::span("emit");
        let mut counters = AssignCounters::default();
        let mut overshoot = 0u64;
        for (mut spool, c, o) in worker_out {
            counters.merge(&c);
            overshoot += o;
            spool.replay(sink)?;
        }
        report.phases.record("emit", s5.end());

        debug_assert_eq!(shared.total(), info.num_edges);
        report.count("threads", threads as u64);
        record_phase2_counters(&mut report, &counters, overshoot);
        record_clustering_counters(&mut report, &clustering, cap);
        Ok(report)
    }
}

/// Append the shared phase-2 counter block to `report` (one spelling for
/// the parallel and distributed runners).
pub fn record_phase2_counters(report: &mut RunReport, counters: &AssignCounters, overshoot: u64) {
    report.count("prepartitioned", counters.prepartitioned);
    report.count("prepartition_overflow", counters.prepartition_overflow);
    report.count("remaining", counters.remaining);
    report.count("fallback_hash", counters.fallback_hash);
    report.count("fallback_least_loaded", counters.fallback_least_loaded);
    report.count("cap_overshoot", overshoot);
    CORE_CAP_OVERSHOOT.add(overshoot);
}

static CORE_CAP_OVERSHOOT: tps_obs::Counter = tps_obs::Counter::new("core.cap.overshoot");

/// Append the shared clustering counter block to `report`.
pub fn record_clustering_counters(report: &mut RunReport, clustering: &Clustering, cap: u64) {
    report.count("clusters", clustering.num_nonempty_clusters() as u64);
    report.count("cluster_volume_cap", cap);
    report.count("max_cluster_volume", clustering.max_volume());
}

/// The cap-overshoot total a ledger-free (distributed) run reconstructs
/// from the merged per-partition loads: `Σ_p max(0, load_p − cap)`. For any
/// interleaving this equals the sum of the in-process ledger's per-worker
/// overshoot counts, because each reservation increments exactly one
/// counter once.
pub fn overshoot_from_loads(loads: &[u64], k: u32, num_edges: u64, alpha: f64) -> u64 {
    let cap = PartitionLoads::new(k, num_edges, alpha).cap();
    loads.iter().map(|&l| l.saturating_sub(cap)).sum()
}

/// Run `work(t, range)` on one scoped thread per range, collecting results
/// in range order and propagating the first error. Public so other shard
/// schedulers (parallel stateless baselines, the loopback distributed
/// runner) reuse the same deterministic fan-out.
pub fn run_workers<T, F>(ranges: &[(u64, u64)], work: F) -> io::Result<Vec<T>>
where
    T: Send,
    F: Fn(usize, (u64, u64)) -> io::Result<T> + Sync,
{
    run_workers_with(ranges, vec![(); ranges.len()], |t, range, ()| {
        work(t, range)
    })
}

/// Like [`run_workers`], additionally moving one element of `state` into
/// each worker (resuming per-worker state across a barrier).
pub fn run_workers_with<W, T, F>(
    ranges: &[(u64, u64)],
    state: Vec<W>,
    work: F,
) -> io::Result<Vec<T>>
where
    W: Send,
    T: Send,
    F: Fn(usize, (u64, u64), W) -> io::Result<T> + Sync,
{
    debug_assert_eq!(ranges.len(), state.len());
    if ranges.len() == 1 {
        // Skip thread spawn/join overhead on the single-worker path (also
        // keeps one-thread runs trivially free of scheduler effects).
        let w = state.into_iter().next().expect("one state per range");
        return Ok(vec![work(0, ranges[0], w)?]);
    }
    let work = &work;
    let results: Vec<io::Result<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .zip(state)
            .enumerate()
            .map(|(t, (&range, w))| {
                scope.spawn(move || {
                    let out = work(t, range, w);
                    // Barrier drain: events a kernel recorded on this
                    // thread must survive the thread's exit.
                    tps_obs::drain_local();
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::Partitioner;
    use crate::sink::{QualitySink, VecSink};
    use crate::two_phase::TwoPhasePartitioner;
    use tps_graph::datasets::Dataset;
    use tps_graph::stream::InMemoryGraph;
    use tps_graph::types::Edge;

    fn serial_assignments(g: &InMemoryGraph, k: u32) -> Vec<(Edge, PartitionId)> {
        let mut sink = VecSink::new();
        TwoPhasePartitioner::new(TwoPhaseConfig::default())
            .partition(&mut g.stream(), &PartitionParams::new(k), &mut sink)
            .unwrap();
        sink.into_assignments()
    }

    fn parallel_assignments(
        g: &InMemoryGraph,
        k: u32,
        threads: usize,
    ) -> (Vec<(Edge, PartitionId)>, RunReport) {
        let mut sink = VecSink::new();
        let runner = ParallelRunner::new(TwoPhaseConfig::default(), threads);
        let report = runner
            .partition(g, &PartitionParams::new(k), &mut sink)
            .unwrap();
        (sink.into_assignments(), report)
    }

    #[test]
    fn one_thread_is_bit_identical_to_serial() {
        let g = Dataset::It.generate_scaled(0.02);
        let serial = serial_assignments(&g, 8);
        let (parallel, report) = parallel_assignments(&g, 8, 1);
        assert_eq!(serial, parallel);
        assert_eq!(report.counter("cap_overshoot"), 0);
    }

    #[test]
    fn every_edge_assigned_exactly_once_at_any_thread_count() {
        let g = Dataset::Ok.generate_scaled(0.02);
        let mut want: Vec<Edge> = g.edges().to_vec();
        want.sort();
        for threads in [1usize, 2, 3, 4, 8] {
            let (assignments, _) = parallel_assignments(&g, 16, threads);
            let mut got: Vec<Edge> = assignments.iter().map(|&(e, _)| e).collect();
            got.sort();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn deterministic_for_fixed_thread_count() {
        let g = Dataset::Uk.generate_scaled(0.01);
        for threads in [2usize, 4] {
            let (a, _) = parallel_assignments(&g, 16, threads);
            let (b, _) = parallel_assignments(&g, 16, threads);
            assert_eq!(a, b, "threads = {threads}");
        }
    }

    #[test]
    fn balance_cap_holds_on_real_graphs() {
        let g = Dataset::Ok.generate_scaled(0.02);
        for threads in [2usize, 4, 8] {
            let mut sink = QualitySink::new(g.num_vertices(), 16);
            let runner = ParallelRunner::new(TwoPhaseConfig::default(), threads);
            let report = runner
                .partition(&g, &PartitionParams::new(16), &mut sink)
                .unwrap();
            let cap = crate::balance::PartitionLoads::new(16, g.num_edges(), 1.05).cap();
            let m = sink.finish();
            assert_eq!(report.counter("cap_overshoot"), 0);
            assert!(
                m.max_load <= cap,
                "threads {threads}: max load {} > cap {cap}",
                m.max_load
            );
            assert_eq!(m.num_edges, g.num_edges());
        }
    }

    #[test]
    fn empty_source_is_a_noop() {
        let g = InMemoryGraph::from_edges(vec![]);
        let (assignments, report) = parallel_assignments(&g, 4, 4);
        assert!(assignments.is_empty());
        assert_eq!(report.counter("threads"), 0);
    }

    #[test]
    fn more_threads_than_edges_still_assigns_all() {
        let g = InMemoryGraph::from_edges(vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)]);
        let (assignments, _) = parallel_assignments(&g, 2, 8);
        assert_eq!(assignments.len(), 3);
    }

    #[test]
    fn zero_threads_selects_available_parallelism() {
        let r = ParallelRunner::new(TwoPhaseConfig::default(), 0);
        assert!(r.threads() >= 1);
        assert!(r.name().starts_with("2PS-L×"));
    }

    #[test]
    fn hdrf_variant_runs_parallel() {
        let g = Dataset::Ok.generate_scaled(0.01);
        let mut sink = VecSink::new();
        let runner = ParallelRunner::new(TwoPhaseConfig::hdrf_variant(), 4);
        runner
            .partition(&g, &PartitionParams::new(8), &mut sink)
            .unwrap();
        assert_eq!(sink.assignments().len() as u64, g.num_edges());
    }

    #[test]
    fn replication_factor_stays_close_to_serial() {
        let g = Dataset::It.generate_scaled(0.05);
        let k = 16;
        let mut serial_sink = QualitySink::new(g.num_vertices(), k);
        TwoPhasePartitioner::new(TwoPhaseConfig::default())
            .partition(&mut g.stream(), &PartitionParams::new(k), &mut serial_sink)
            .unwrap();
        let serial_rf = serial_sink.finish().replication_factor;
        for threads in [2usize, 4, 8] {
            let mut sink = QualitySink::new(g.num_vertices(), k);
            ParallelRunner::new(TwoPhaseConfig::default(), threads)
                .partition(&g, &PartitionParams::new(k), &mut sink)
                .unwrap();
            let rf = sink.finish().replication_factor;
            assert!(
                rf <= serial_rf * 1.35 + 0.05,
                "threads {threads}: rf {rf} vs serial {serial_rf}"
            );
        }
    }

    #[test]
    fn standalone_loads_decide_like_ledgered_loads() {
        // The distributed worker's tracker must take identical decisions.
        let shared = AtomicLoads::new(4, 1000, 1.05);
        let mut a = ShardLoads::with_ledger(&shared, 1, 3);
        let mut b = ShardLoads::standalone(4, shared.cap(), 1, 3);
        assert_eq!(a.quota(), b.quota());
        for i in 0..50u32 {
            let p = i % 4;
            assert_eq!(a.is_full(p), b.is_full(p), "step {i}");
            assert_eq!(a.least_loaded(), b.least_loaded());
            a.add(p);
            b.add(p);
        }
        assert_eq!(a.local_loads(), b.local_loads());
        assert_eq!(b.overshoot(), 0);
    }

    #[test]
    fn overshoot_reconstruction_matches_ledger_semantics() {
        // 10 edges, k = 2, α = 1.0 → cap 5. Loads 7 + 3 → overshoot 2.
        assert_eq!(overshoot_from_loads(&[7, 3], 2, 10, 1.0), 2);
        assert_eq!(overshoot_from_loads(&[5, 5], 2, 10, 1.0), 0);
    }

    #[test]
    fn shard_kernels_are_restartable_mid_job() {
        // The distributed coordinator recovers a dead worker by re-running
        // its shard from the source against the same merged state. That is
        // only sound if the kernels keep no hidden cross-call state: a
        // second run — including one abandoned partway — must reproduce
        // the first bit for bit.
        let g = Dataset::Ok.generate_scaled(0.01);
        let k = 8;
        let threads = 3;
        let shard = 1usize;
        let ranges = split_even(g.num_edges(), threads);
        let config = TwoPhaseConfig::default();

        // Degrees and clustering: pure functions of (source, range, inputs).
        let d1 = shard_degrees(&g, ranges[shard], g.num_vertices()).unwrap();
        let d2 = shard_degrees(&g, ranges[shard], g.num_vertices()).unwrap();
        assert_eq!(d1.as_slice(), d2.as_slice());
        let merged = merge_degree_tables(vec![
            shard_degrees(&g, ranges[0], g.num_vertices()).unwrap(),
            d1,
            shard_degrees(&g, ranges[2], g.num_vertices()).unwrap(),
        ]);
        let cap = resolve_volume_cap(&config, k, &merged);
        let c1 = shard_clustering(
            &g,
            ranges[shard],
            &config,
            &merged,
            cap,
            g.num_vertices(),
            true,
        )
        .unwrap();
        let c2 = shard_clustering(
            &g,
            ranges[shard],
            &config,
            &merged,
            cap,
            g.num_vertices(),
            true,
        )
        .unwrap();
        let mut e1 = Vec::new();
        c1.encode_into(&mut e1);
        let mut e2 = Vec::new();
        c2.encode_into(&mut e2);
        assert_eq!(e1, e2, "restarted clustering diverged");

        // Phase 2: a fresh assigner re-driven from the source reproduces an
        // abandoned assigner's decisions (merged plan held fixed).
        let clustering = merge_clusterings(&[c1.clone(), c1.clone(), c2], &merged);
        let placement = cluster_placement(&config, &clustering, k);
        let cap2 = crate::balance::PartitionLoads::new(k, g.num_edges(), 1.05).cap();
        let run = |abandon_first: bool| {
            if abandon_first {
                // A first attempt that dies after the prepartition pass —
                // its partial state must not leak anywhere.
                let mut doomed = ShardAssigner::new(
                    config,
                    &merged,
                    &clustering,
                    &placement,
                    ReplicationMatrix::new(g.num_vertices(), k),
                    ShardLoads::standalone(k, cap2, shard, threads),
                );
                let mut sink = VecSink::new();
                let mut s = g.open_range(ranges[shard].0, ranges[shard].1).unwrap();
                doomed.prepartition_pass(&mut s, &mut sink).unwrap();
            }
            let mut assigner = ShardAssigner::new(
                config,
                &merged,
                &clustering,
                &placement,
                ReplicationMatrix::new(g.num_vertices(), k),
                ShardLoads::standalone(k, cap2, shard, threads),
            );
            let mut sink = VecSink::new();
            let mut s = g.open_range(ranges[shard].0, ranges[shard].1).unwrap();
            assigner.prepartition_pass(&mut s, &mut sink).unwrap();
            let mut s = g.open_range(ranges[shard].0, ranges[shard].1).unwrap();
            assigner.remaining_pass(&mut s, &mut sink).unwrap();
            (
                sink.into_assignments(),
                assigner.counters(),
                assigner.local_loads().to_vec(),
            )
        };
        let (a1, counters1, loads1) = run(false);
        let (a2, counters2, loads2) = run(true);
        assert_eq!(a1, a2, "restarted shard diverged");
        assert_eq!(counters1, counters2);
        assert_eq!(loads1, loads2);
    }

    #[test]
    fn custom_spool_factory_sees_every_assignment() {
        // A factory that counts spools proves the runner routes all output
        // through it (the spill-backed factory in tps-io relies on this).
        use std::sync::atomic::{AtomicUsize, Ordering};
        #[derive(Default)]
        struct CountingFactory(AtomicUsize);
        impl SpoolFactory for CountingFactory {
            fn create_spool(
                &self,
                _worker: usize,
            ) -> io::Result<Box<dyn crate::sink::AssignmentSpool>> {
                self.0.fetch_add(1, Ordering::Relaxed);
                Ok(Box::new(crate::sink::VecSpool::new()))
            }
        }
        let g = Dataset::Ok.generate_scaled(0.01);
        let factory = Arc::new(CountingFactory::default());
        let runner =
            ParallelRunner::new(TwoPhaseConfig::default(), 3).with_spool_factory(factory.clone());
        let mut sink = VecSink::new();
        runner
            .partition(&g, &PartitionParams::new(8), &mut sink)
            .unwrap();
        assert_eq!(sink.assignments().len() as u64, g.num_edges());
        assert_eq!(factory.0.load(Ordering::Relaxed), 3);
    }
}
