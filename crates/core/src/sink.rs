//! Assignment sinks: consumers of `(edge, partition)` decisions.
//!
//! A streaming partitioner must not buffer its output — each decision is
//! handed to a sink immediately ("each edge ... is immediately assigned to a
//! partition", paper §II-B). Sinks provided here:
//!
//! * [`NullSink`] — discard (pure timing runs).
//! * [`CountingSink`] — per-partition edge counts only.
//! * [`QualitySink`] — ground-truth quality metrics via
//!   [`tps_metrics::QualityTracker`].
//! * [`VecSink`] — collect pairs in memory (tests, the processing simulator).
//! * [`FileSink`] — write per-partition binary edge lists (the materialised
//!   out-of-core output, what the paper's tool writes back to storage).
//! * [`TeeSink`] — duplicate into two sinks.

use std::io;

use tps_graph::formats::binary::PartitionFileWriter;
use tps_graph::types::{Edge, PartitionId};
use tps_metrics::quality::{PartitionMetrics, QualityTracker};

/// Receives each edge assignment exactly once, in the order decided.
pub trait AssignmentSink {
    /// Record that `edge` belongs to partition `p`.
    fn assign(&mut self, edge: Edge, p: PartitionId) -> io::Result<()>;
}

/// Discards assignments.
#[derive(Default, Clone, Copy, Debug)]
pub struct NullSink;

impl AssignmentSink for NullSink {
    #[inline]
    fn assign(&mut self, _edge: Edge, _p: PartitionId) -> io::Result<()> {
        Ok(())
    }
}

/// Counts edges per partition.
#[derive(Clone, Debug)]
pub struct CountingSink {
    counts: Vec<u64>,
}

impl CountingSink {
    /// A counting sink for `k` partitions.
    pub fn new(k: u32) -> Self {
        CountingSink {
            counts: vec![0; k as usize],
        }
    }

    /// Per-partition edge counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total edges recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl AssignmentSink for CountingSink {
    #[inline]
    fn assign(&mut self, _edge: Edge, p: PartitionId) -> io::Result<()> {
        self.counts[p as usize] += 1;
        Ok(())
    }
}

/// Tracks ground-truth partition quality (replication factor, balance).
#[derive(Clone, Debug)]
pub struct QualitySink {
    tracker: QualityTracker,
}

impl QualitySink {
    /// A quality sink for a graph with `num_vertices` vertices and `k`
    /// partitions.
    pub fn new(num_vertices: u64, k: u32) -> Self {
        QualitySink {
            tracker: QualityTracker::new(num_vertices, k),
        }
    }

    /// Finalise the metrics.
    pub fn finish(&self) -> PartitionMetrics {
        self.tracker.finish()
    }

    /// Borrow the underlying tracker.
    pub fn tracker(&self) -> &QualityTracker {
        &self.tracker
    }
}

impl AssignmentSink for QualitySink {
    #[inline]
    fn assign(&mut self, edge: Edge, p: PartitionId) -> io::Result<()> {
        self.tracker.record(edge, p);
        Ok(())
    }
}

/// Collects `(edge, partition)` pairs in memory.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    assignments: Vec<(Edge, PartitionId)>,
}

impl VecSink {
    /// Empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The recorded assignments in decision order.
    pub fn assignments(&self) -> &[(Edge, PartitionId)] {
        &self.assignments
    }

    /// Consume into the assignment vector.
    pub fn into_assignments(self) -> Vec<(Edge, PartitionId)> {
        self.assignments
    }
}

impl AssignmentSink for VecSink {
    #[inline]
    fn assign(&mut self, edge: Edge, p: PartitionId) -> io::Result<()> {
        self.assignments.push((edge, p));
        Ok(())
    }
}

/// Writes per-partition binary edge-list files.
pub struct FileSink {
    writer: Option<PartitionFileWriter>,
}

impl FileSink {
    /// Create `k` partition files named `<stem>.part<i>.bel` in `dir`.
    pub fn create(
        dir: &std::path::Path,
        stem: &str,
        k: u32,
        num_vertices: u64,
    ) -> io::Result<Self> {
        Ok(FileSink {
            writer: Some(PartitionFileWriter::create(dir, stem, k, num_vertices)?),
        })
    }

    /// Flush headers and return `(path, edge_count)` per partition.
    pub fn finish(mut self) -> io::Result<Vec<(std::path::PathBuf, u64)>> {
        self.writer.take().expect("finish called twice").finish()
    }
}

impl AssignmentSink for FileSink {
    #[inline]
    fn assign(&mut self, edge: Edge, p: PartitionId) -> io::Result<()> {
        self.writer
            .as_mut()
            .expect("sink already finished")
            .write(edge, p)
    }
}

/// A replayable per-worker assignment buffer ("run").
///
/// Parallel and distributed runners buffer each worker's decisions until the
/// emit barrier, then replay them in worker order so the output stream is
/// deterministic. A spool is that buffer: an [`AssignmentSink`] whose
/// contents can be drained back out in insertion order exactly once.
/// Implementations may hold everything in memory ([`VecSpool`]) or spill to
/// disk under a byte budget (`tps-io`'s `SpillSpool`).
pub trait AssignmentSpool: AssignmentSink + Send {
    /// Drain every buffered assignment into `sink` in insertion order,
    /// consuming the spool's contents.
    fn replay(&mut self, sink: &mut dyn AssignmentSink) -> io::Result<()>;
}

/// Creates one spool per worker (`tps-core`'s parallel runner and
/// `tps-dist`'s workers are both parameterised over this).
pub trait SpoolFactory: Sync {
    /// A fresh, empty spool for worker `worker`.
    fn create_spool(&self, worker: usize) -> io::Result<Box<dyn AssignmentSpool>>;
}

/// The default spool: an unbounded in-memory buffer.
#[derive(Clone, Debug, Default)]
pub struct VecSpool {
    buf: Vec<(Edge, PartitionId)>,
}

impl VecSpool {
    /// Empty spool.
    pub fn new() -> Self {
        VecSpool::default()
    }

    /// Buffered assignments (not yet replayed).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl AssignmentSink for VecSpool {
    #[inline]
    fn assign(&mut self, edge: Edge, p: PartitionId) -> io::Result<()> {
        self.buf.push((edge, p));
        Ok(())
    }
}

impl AssignmentSpool for VecSpool {
    fn replay(&mut self, sink: &mut dyn AssignmentSink) -> io::Result<()> {
        for (edge, p) in self.buf.drain(..) {
            sink.assign(edge, p)?;
        }
        Ok(())
    }
}

/// A [`SpoolFactory`] handing out [`VecSpool`]s (the unbounded default).
#[derive(Clone, Copy, Debug, Default)]
pub struct MemorySpoolFactory;

impl SpoolFactory for MemorySpoolFactory {
    fn create_spool(&self, _worker: usize) -> io::Result<Box<dyn AssignmentSpool>> {
        Ok(Box::new(VecSpool::new()))
    }
}

/// Duplicates assignments into two sinks (e.g. quality + files).
pub struct TeeSink<'a> {
    first: &'a mut dyn AssignmentSink,
    second: &'a mut dyn AssignmentSink,
}

impl<'a> TeeSink<'a> {
    /// Tee into `first` then `second`.
    pub fn new(first: &'a mut dyn AssignmentSink, second: &'a mut dyn AssignmentSink) -> Self {
        TeeSink { first, second }
    }
}

impl AssignmentSink for TeeSink<'_> {
    #[inline]
    fn assign(&mut self, edge: Edge, p: PartitionId) -> io::Result<()> {
        self.first.assign(edge, p)?;
        self.second.assign(edge, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::new(3);
        s.assign(Edge::new(0, 1), 2).unwrap();
        s.assign(Edge::new(1, 2), 2).unwrap();
        s.assign(Edge::new(2, 3), 0).unwrap();
        assert_eq!(s.counts(), &[1, 0, 2]);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn vec_sink_preserves_order() {
        let mut s = VecSink::new();
        s.assign(Edge::new(0, 1), 1).unwrap();
        s.assign(Edge::new(1, 2), 0).unwrap();
        assert_eq!(
            s.into_assignments(),
            vec![(Edge::new(0, 1), 1), (Edge::new(1, 2), 0)]
        );
    }

    #[test]
    fn quality_sink_produces_metrics() {
        let mut s = QualitySink::new(3, 2);
        s.assign(Edge::new(0, 1), 0).unwrap();
        s.assign(Edge::new(1, 2), 1).unwrap();
        let m = s.finish();
        assert_eq!(m.num_edges, 2);
        assert!((m.replication_factor - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tee_sink_duplicates() {
        let mut a = CountingSink::new(2);
        let mut b = VecSink::new();
        {
            let mut tee = TeeSink::new(&mut a, &mut b);
            tee.assign(Edge::new(0, 1), 1).unwrap();
        }
        assert_eq!(a.total(), 1);
        assert_eq!(b.assignments().len(), 1);
    }

    #[test]
    fn file_sink_round_trip() {
        let dir = std::env::temp_dir().join(format!("tps-filesink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut s = FileSink::create(&dir, "t", 2, 4).unwrap();
        s.assign(Edge::new(0, 1), 0).unwrap();
        s.assign(Edge::new(2, 3), 1).unwrap();
        let parts = s.finish().unwrap();
        assert_eq!(parts[0].1, 1);
        assert_eq!(parts[1].1, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut s = NullSink;
        for i in 0..10 {
            s.assign(Edge::new(i, i + 1), 0).unwrap();
        }
    }
}
