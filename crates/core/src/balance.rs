//! Per-partition load accounting with the hard balance cap `α·|E|/k`.
//!
//! 2PS-L enforces the cap strictly ("we guarantee that no partition gets more
//! than α·|E|/k edges assigned", paper §III-B step 3); the stateful baselines
//! (HDRF, Greedy) use the same structure for their balance terms.

use tps_graph::types::PartitionId;

/// Edge counts per partition plus the hard capacity.
#[derive(Clone, Debug)]
pub struct PartitionLoads {
    loads: Vec<u64>,
    cap: u64,
}

impl PartitionLoads {
    /// Loads for `k` partitions of a graph with `num_edges` edges under
    /// balance factor `alpha`.
    ///
    /// The cap is `max(⌈|E|/k⌉, ⌊α·|E|/k⌋)`: the first term guarantees
    /// feasibility (all edges *can* be placed) even at `α = 1.0`; the second
    /// is the paper's constraint.
    pub fn new(k: u32, num_edges: u64, alpha: f64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(alpha >= 1.0, "alpha must be >= 1");
        let fair = num_edges.div_ceil(k as u64);
        let soft = (alpha * num_edges as f64 / k as f64).floor() as u64;
        PartitionLoads {
            loads: vec![0; k as usize],
            cap: fair.max(soft),
        }
    }

    /// Loads without any cap (stateless partitioners that only count).
    pub fn uncapped(k: u32) -> Self {
        assert!(k > 0, "k must be positive");
        PartitionLoads {
            loads: vec![0; k as usize],
            cap: u64::MAX,
        }
    }

    /// Number of partitions.
    #[inline]
    pub fn k(&self) -> u32 {
        self.loads.len() as u32
    }

    /// The hard capacity per partition.
    #[inline]
    pub fn cap(&self) -> u64 {
        self.cap
    }

    /// Current load of `p`.
    #[inline]
    pub fn load(&self, p: PartitionId) -> u64 {
        self.loads[p as usize]
    }

    /// Whether `p` is at capacity.
    #[inline]
    pub fn is_full(&self, p: PartitionId) -> bool {
        self.loads[p as usize] >= self.cap
    }

    /// Record one edge on `p`.
    ///
    /// # Panics
    /// Panics in debug builds if `p` is already full (callers must route
    /// through the fallback chain first).
    #[inline]
    pub fn add(&mut self, p: PartitionId) {
        debug_assert!(!self.is_full(p), "partition {p} exceeds the balance cap");
        self.loads[p as usize] += 1;
    }

    /// The least-loaded partition (lowest id wins ties). `O(k)`.
    pub fn least_loaded(&self) -> PartitionId {
        let mut best = 0u32;
        let mut best_load = self.loads[0];
        for (i, &l) in self.loads.iter().enumerate().skip(1) {
            if l < best_load {
                best = i as u32;
                best_load = l;
            }
        }
        best
    }

    /// Largest current load.
    pub fn max_load(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Smallest current load.
    pub fn min_load(&self) -> u64 {
        self.loads.iter().copied().min().unwrap_or(0)
    }

    /// Total edges recorded.
    pub fn total(&self) -> u64 {
        self.loads.iter().sum()
    }

    /// Raw loads.
    pub fn as_slice(&self) -> &[u64] {
        &self.loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_is_feasible_at_alpha_one() {
        // 10 edges, 4 partitions, α = 1.0 → cap must be ⌈10/4⌉ = 3 so that
        // 4 × 3 ≥ 10.
        let l = PartitionLoads::new(4, 10, 1.0);
        assert_eq!(l.cap(), 3);
        assert!(l.cap() as u128 * 4 >= 10);
    }

    #[test]
    fn cap_follows_alpha() {
        let l = PartitionLoads::new(4, 1000, 1.05);
        assert_eq!(l.cap(), 262); // floor(1.05 * 250)
    }

    #[test]
    fn add_and_full() {
        let mut l = PartitionLoads::new(2, 4, 1.0);
        assert_eq!(l.cap(), 2);
        l.add(0);
        assert!(!l.is_full(0));
        l.add(0);
        assert!(l.is_full(0));
        assert_eq!(l.load(0), 2);
        assert_eq!(l.total(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "balance cap")]
    fn debug_add_past_cap_panics() {
        let mut l = PartitionLoads::new(1, 1, 1.0);
        l.add(0);
        l.add(0);
    }

    #[test]
    fn least_loaded_prefers_lowest_id_on_tie() {
        let mut l = PartitionLoads::new(3, 30, 2.0);
        l.add(0);
        assert_eq!(l.least_loaded(), 1);
        l.add(1);
        l.add(2);
        assert_eq!(l.least_loaded(), 0);
    }

    #[test]
    fn uncapped_never_fills() {
        let mut l = PartitionLoads::uncapped(1);
        for _ in 0..1000 {
            l.add(0);
        }
        assert!(!l.is_full(0));
    }

    #[test]
    fn min_max_loads() {
        let mut l = PartitionLoads::new(3, 100, 2.0);
        l.add(1);
        l.add(1);
        l.add(2);
        assert_eq!(l.max_load(), 2);
        assert_eq!(l.min_load(), 0);
    }
}
