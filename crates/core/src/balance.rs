//! Per-partition load accounting with the hard balance cap `α·|E|/k`.
//!
//! 2PS-L enforces the cap strictly ("we guarantee that no partition gets more
//! than α·|E|/k edges assigned", paper §III-B step 3); the stateful baselines
//! (HDRF, Greedy) use the same structure for their balance terms.
//!
//! Three pieces live here:
//!
//! * [`PartitionLoads`] — the serial tracker: plain counters plus the cap.
//! * [`LoadTracker`] — the trait over load state that the phase-2 edge
//!   kernel ([`crate::two_phase`]) is generic over, so the serial runner and
//!   the chunk-parallel runner ([`crate::parallel`]) share one decision
//!   path (and one-thread parallel runs are bit-identical to serial runs).
//! * [`AtomicLoads`] — the lock-free shared commit ledger of the parallel
//!   runner. Worker threads *reserve* capacity deterministically up front
//!   (each thread `t` of `T` owns the quota slice
//!   `⌊(t+1)·cap/T⌋ − ⌊t·cap/T⌋` of every partition's cap, so the quotas
//!   sum to the cap exactly) and then `reserve` each placement here with a
//!   single relaxed `fetch_add`. Because the quota slices partition the cap,
//!   a worker that respects its quota can never push the ledger past the
//!   cap — the atomic counter is the runtime witness of that invariant and
//!   the source of the merged per-partition loads, not a lock.

use std::sync::atomic::{AtomicU64, Ordering};

use tps_graph::types::PartitionId;

/// Load state a phase-2 edge kernel can run against.
///
/// Semantics mirror [`PartitionLoads`]: `least_loaded` returns the lowest
/// current load (lowest id on ties) *regardless of fullness* — the min-load
/// partition can only be full when every partition is, which the cap
/// arithmetic rules out for the serial tracker and makes a counted
/// degenerate case for quota-sliced parallel trackers.
pub trait LoadTracker {
    /// Number of partitions.
    fn k(&self) -> u32;
    /// Current load of `p`.
    fn load(&self, p: PartitionId) -> u64;
    /// Whether `p` is at capacity.
    fn is_full(&self, p: PartitionId) -> bool;
    /// Record one edge on `p`.
    fn add(&mut self, p: PartitionId);
    /// The least-loaded partition (lowest id wins ties).
    fn least_loaded(&self) -> PartitionId;
    /// Largest current load.
    fn max_load(&self) -> u64;
    /// Smallest current load.
    fn min_load(&self) -> u64;
}

impl LoadTracker for PartitionLoads {
    fn k(&self) -> u32 {
        PartitionLoads::k(self)
    }
    fn load(&self, p: PartitionId) -> u64 {
        PartitionLoads::load(self, p)
    }
    fn is_full(&self, p: PartitionId) -> bool {
        PartitionLoads::is_full(self, p)
    }
    fn add(&mut self, p: PartitionId) {
        PartitionLoads::add(self, p)
    }
    fn least_loaded(&self) -> PartitionId {
        PartitionLoads::least_loaded(self)
    }
    fn max_load(&self) -> u64 {
        PartitionLoads::max_load(self)
    }
    fn min_load(&self) -> u64 {
        PartitionLoads::min_load(self)
    }
}

/// Lock-free shared per-partition load counters with the hard cap.
///
/// All mutation is a single `fetch_add` with relaxed ordering — worker
/// threads never contend on a lock and never observe torn counts. The
/// structure reports whether each reservation stayed within the cap; the
/// deterministic quota slices held by the workers (see module docs)
/// guarantee it except in counted degenerate cases (`|E|` not much larger
/// than `k × threads`), which the parallel runner surfaces as a
/// `cap_overshoot` counter rather than hiding.
#[derive(Debug)]
pub struct AtomicLoads {
    loads: Vec<AtomicU64>,
    cap: u64,
}

impl AtomicLoads {
    /// Shared loads for `k` partitions of a graph with `num_edges` edges
    /// under balance factor `alpha` (same cap formula as
    /// [`PartitionLoads::new`]).
    pub fn new(k: u32, num_edges: u64, alpha: f64) -> Self {
        let cap = PartitionLoads::new(k, num_edges, alpha).cap();
        AtomicLoads {
            loads: (0..k).map(|_| AtomicU64::new(0)).collect(),
            cap,
        }
    }

    /// Number of partitions.
    #[inline]
    pub fn k(&self) -> u32 {
        self.loads.len() as u32
    }

    /// The hard capacity per partition.
    #[inline]
    pub fn cap(&self) -> u64 {
        self.cap
    }

    /// Current load of `p` (racy snapshot — exact once workers are joined).
    #[inline]
    pub fn load(&self, p: PartitionId) -> u64 {
        self.loads[p as usize].load(Ordering::Relaxed)
    }

    /// Reserve one edge slot on `p`. Returns `false` when the reservation
    /// pushed `p` past the cap (the slot is still recorded — every edge must
    /// be placed somewhere; callers count the overshoot instead).
    #[inline]
    pub fn reserve(&self, p: PartitionId) -> bool {
        self.loads[p as usize].fetch_add(1, Ordering::Relaxed) < self.cap
    }

    /// The quota slice of the cap owned by thread `t` of `threads`:
    /// `⌊(t+1)·cap/T⌋ − ⌊t·cap/T⌋`. Slices are deterministic, differ by at
    /// most one, and sum to exactly the cap over all threads.
    pub fn quota_slice(cap: u64, t: usize, threads: usize) -> u64 {
        let (cap, t, threads) = (cap as u128, t as u128, threads.max(1) as u128);
        ((cap * (t + 1)) / threads - (cap * t) / threads) as u64
    }

    /// Final per-partition loads (call after all workers joined).
    pub fn snapshot(&self) -> Vec<u64> {
        self.loads
            .iter()
            .map(|l| l.load(Ordering::Relaxed))
            .collect()
    }

    /// Total edges reserved.
    pub fn total(&self) -> u64 {
        self.snapshot().iter().sum()
    }
}

/// Edge counts per partition plus the hard capacity.
#[derive(Clone, Debug)]
pub struct PartitionLoads {
    loads: Vec<u64>,
    cap: u64,
}

impl PartitionLoads {
    /// Loads for `k` partitions of a graph with `num_edges` edges under
    /// balance factor `alpha`.
    ///
    /// The cap is `max(⌈|E|/k⌉, ⌊α·|E|/k⌋)`: the first term guarantees
    /// feasibility (all edges *can* be placed) even at `α = 1.0`; the second
    /// is the paper's constraint.
    pub fn new(k: u32, num_edges: u64, alpha: f64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(alpha >= 1.0, "alpha must be >= 1");
        let fair = num_edges.div_ceil(k as u64);
        let soft = (alpha * num_edges as f64 / k as f64).floor() as u64;
        PartitionLoads {
            loads: vec![0; k as usize],
            cap: fair.max(soft),
        }
    }

    /// Loads without any cap (stateless partitioners that only count).
    pub fn uncapped(k: u32) -> Self {
        assert!(k > 0, "k must be positive");
        PartitionLoads {
            loads: vec![0; k as usize],
            cap: u64::MAX,
        }
    }

    /// Number of partitions.
    #[inline]
    pub fn k(&self) -> u32 {
        self.loads.len() as u32
    }

    /// The hard capacity per partition.
    #[inline]
    pub fn cap(&self) -> u64 {
        self.cap
    }

    /// Current load of `p`.
    #[inline]
    pub fn load(&self, p: PartitionId) -> u64 {
        self.loads[p as usize]
    }

    /// Whether `p` is at capacity.
    #[inline]
    pub fn is_full(&self, p: PartitionId) -> bool {
        self.loads[p as usize] >= self.cap
    }

    /// Record one edge on `p`.
    ///
    /// # Panics
    /// Panics in debug builds if `p` is already full (callers must route
    /// through the fallback chain first).
    #[inline]
    pub fn add(&mut self, p: PartitionId) {
        debug_assert!(!self.is_full(p), "partition {p} exceeds the balance cap");
        self.loads[p as usize] += 1;
    }

    /// The least-loaded partition (lowest id wins ties). `O(k)`.
    pub fn least_loaded(&self) -> PartitionId {
        let mut best = 0u32;
        let mut best_load = self.loads[0];
        for (i, &l) in self.loads.iter().enumerate().skip(1) {
            if l < best_load {
                best = i as u32;
                best_load = l;
            }
        }
        best
    }

    /// Largest current load.
    pub fn max_load(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Smallest current load.
    pub fn min_load(&self) -> u64 {
        self.loads.iter().copied().min().unwrap_or(0)
    }

    /// Total edges recorded.
    pub fn total(&self) -> u64 {
        self.loads.iter().sum()
    }

    /// Raw loads.
    pub fn as_slice(&self) -> &[u64] {
        &self.loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_is_feasible_at_alpha_one() {
        // 10 edges, 4 partitions, α = 1.0 → cap must be ⌈10/4⌉ = 3 so that
        // 4 × 3 ≥ 10.
        let l = PartitionLoads::new(4, 10, 1.0);
        assert_eq!(l.cap(), 3);
        assert!(l.cap() as u128 * 4 >= 10);
    }

    #[test]
    fn cap_follows_alpha() {
        let l = PartitionLoads::new(4, 1000, 1.05);
        assert_eq!(l.cap(), 262); // floor(1.05 * 250)
    }

    #[test]
    fn add_and_full() {
        let mut l = PartitionLoads::new(2, 4, 1.0);
        assert_eq!(l.cap(), 2);
        l.add(0);
        assert!(!l.is_full(0));
        l.add(0);
        assert!(l.is_full(0));
        assert_eq!(l.load(0), 2);
        assert_eq!(l.total(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "balance cap")]
    fn debug_add_past_cap_panics() {
        let mut l = PartitionLoads::new(1, 1, 1.0);
        l.add(0);
        l.add(0);
    }

    #[test]
    fn least_loaded_prefers_lowest_id_on_tie() {
        let mut l = PartitionLoads::new(3, 30, 2.0);
        l.add(0);
        assert_eq!(l.least_loaded(), 1);
        l.add(1);
        l.add(2);
        assert_eq!(l.least_loaded(), 0);
    }

    #[test]
    fn uncapped_never_fills() {
        let mut l = PartitionLoads::uncapped(1);
        for _ in 0..1000 {
            l.add(0);
        }
        assert!(!l.is_full(0));
    }

    #[test]
    fn min_max_loads() {
        let mut l = PartitionLoads::new(3, 100, 2.0);
        l.add(1);
        l.add(1);
        l.add(2);
        assert_eq!(l.max_load(), 2);
        assert_eq!(l.min_load(), 0);
    }

    #[test]
    fn atomic_reserve_reports_cap() {
        let l = AtomicLoads::new(2, 4, 1.0);
        assert_eq!(l.cap(), 2);
        assert!(l.reserve(0));
        assert!(l.reserve(0));
        assert!(!l.reserve(0), "third reservation exceeds the cap");
        assert_eq!(l.load(0), 3, "overshoot is still recorded");
        assert_eq!(l.load(1), 0);
        assert_eq!(l.total(), 3);
    }

    #[test]
    fn atomic_matches_serial_cap_formula() {
        let a = AtomicLoads::new(4, 1000, 1.05);
        let s = PartitionLoads::new(4, 1000, 1.05);
        assert_eq!(a.cap(), s.cap());
        assert_eq!(a.k(), 4);
    }

    #[test]
    fn quota_slices_partition_the_cap() {
        for cap in [0u64, 1, 2, 7, 100, 1003] {
            for threads in [1usize, 2, 3, 8, 17] {
                let slices: Vec<u64> = (0..threads)
                    .map(|t| AtomicLoads::quota_slice(cap, t, threads))
                    .collect();
                assert_eq!(slices.iter().sum::<u64>(), cap, "cap {cap} T {threads}");
                let (lo, hi) = (*slices.iter().min().unwrap(), *slices.iter().max().unwrap());
                assert!(hi - lo <= 1, "uneven slices {slices:?}");
            }
        }
        // One thread owns the full cap — the T=1 ≡ serial precondition.
        assert_eq!(AtomicLoads::quota_slice(262, 0, 1), 262);
    }

    #[test]
    fn atomic_reservation_is_race_free() {
        // 4 OS threads hammer one partition; exactly `cap` reservations may
        // report in-cap regardless of interleaving.
        let l = AtomicLoads::new(1, 1000, 1.0);
        let in_cap: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| (0..500).filter(|_| l.reserve(0)).count() as u64))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(in_cap, 1000);
        assert_eq!(l.load(0), 2000);
    }
}
