//! The [`Partitioner`] trait: the common contract of every edge partitioner
//! in this workspace (2PS-L and all baselines).
//!
//! A partitioner consumes a resettable [`EdgeStream`] (it may take several
//! passes), emits one `(edge, partition)` decision per stream edge into an
//! [`AssignmentSink`], and returns a
//! [`RunReport`] with its phase timings and internal counters. Quality
//! metrics are *not* produced by the partitioner — the harness recomputes
//! them from the sink so they are ground truth.

use std::io;

use tps_graph::stream::EdgeStream;
use tps_metrics::timer::PhaseTimer;

use crate::sink::AssignmentSink;

/// Run parameters shared by all partitioners.
#[derive(Clone, Copy, Debug)]
pub struct PartitionParams {
    /// Number of partitions (`k > 1` in the problem statement; `k = 1` is
    /// accepted and trivially assigns everything to partition 0).
    pub k: u32,
    /// Balance factor `α ≥ 1`: no partition may exceed `α·|E|/k` edges for
    /// cap-enforcing partitioners. The paper evaluates with `α = 1.05`.
    pub alpha: f64,
}

impl PartitionParams {
    /// Parameters with the paper's default `α = 1.05`.
    pub fn new(k: u32) -> Self {
        PartitionParams { k, alpha: 1.05 }
    }

    /// Parameters with an explicit balance factor.
    pub fn with_alpha(k: u32, alpha: f64) -> Self {
        assert!(alpha >= 1.0, "alpha must be >= 1");
        PartitionParams { k, alpha }
    }
}

/// Timing and counter report of one partitioning run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Ordered phase timings (e.g. `degree`, `clustering`, `partition`).
    pub phases: PhaseTimer,
    /// Named counters (e.g. `prepartitioned`, `fallback_hash`).
    pub counters: Vec<(String, u64)>,
}

impl RunReport {
    /// Look up a counter by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Add a counter.
    pub fn count(&mut self, name: &str, value: u64) {
        self.counters.push((name.to_string(), value));
    }
}

/// An edge partitioner.
///
/// Implementations must assign **every** edge of the stream exactly once.
/// Whether the `α` cap is honoured is algorithm-specific (stateless hashing
/// cannot honour it); cap-enforcing algorithms document it.
pub trait Partitioner {
    /// Human-readable algorithm name as used in the paper's plots
    /// (e.g. `"2PS-L"`, `"HDRF"`, `"DBH"`).
    fn name(&self) -> String;

    /// Partition the stream into `params.k` parts, emitting assignments into
    /// `sink`.
    fn partition(
        &mut self,
        stream: &mut dyn EdgeStream,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<RunReport>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_alpha_is_paper_setting() {
        let p = PartitionParams::new(32);
        assert_eq!(p.k, 32);
        assert!((p.alpha - 1.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_alpha_below_one() {
        PartitionParams::with_alpha(4, 0.9);
    }

    #[test]
    fn report_counters() {
        let mut r = RunReport::default();
        r.count("prepartitioned", 10);
        assert_eq!(r.counter("prepartitioned"), 10);
        assert_eq!(r.counter("missing"), 0);
    }
}
