//! Quickstart: partition a graph with 2PS-L and inspect the result.
//!
//! Run: `cargo run --release -p tps-examples --bin quickstart`

use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::sink::QualitySink;
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;

fn main() {
    // 1. Get a graph. Any `EdgeStream` works: a generated dataset (here), a
    //    binary edge-list file (`BinaryEdgeFile::open`), or a text edge list.
    let graph = Dataset::Ok.generate_scaled(0.1);
    println!(
        "graph: {} vertices, {} edges (com-orkut stand-in at 10 % scale)",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Pick partition count and balance factor (α = 1.05 is the paper's
    //    setting and the default).
    let params = PartitionParams::new(32);

    // 3. Partition. The sink receives every (edge, partition) decision; the
    //    QualitySink computes ground-truth metrics from them.
    let mut partitioner = TwoPhasePartitioner::new(TwoPhaseConfig::default());
    let mut sink = QualitySink::new(graph.num_vertices(), params.k);
    let mut stream = graph.stream();
    let report = partitioner
        .partition(&mut stream, &params, &mut sink)
        .expect("partitioning failed");

    // 4. Inspect the result.
    let metrics = sink.finish();
    println!("replication factor: {:.3}", metrics.replication_factor);
    println!("balance: {}", metrics.load_summary());
    println!(
        "pre-partitioned {} of {} edges ({} clusters found)",
        report.counter("prepartitioned"),
        metrics.num_edges,
        report.counter("clusters"),
    );
    for (name, d) in report.phases.phases() {
        println!("  phase {name:<13} {:>8.2} ms", d.as_secs_f64() * 1e3);
    }
    assert!(
        metrics.alpha <= params.alpha + 1e-9,
        "the hard balance cap held"
    );
}
