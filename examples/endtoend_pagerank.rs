//! End-to-end: partitioning + distributed PageRank (the Table IV scenario).
//!
//! Partitions the OK stand-in with three partitioners, runs 100 iterations
//! of PageRank on the simulated 32-worker cluster and reports the total —
//! demonstrating the paper's point that neither the fastest nor the
//! best-quality partitioner minimises the end-to-end time.
//!
//! Run: `cargo run --release -p tps-examples --bin endtoend_pagerank`

use tps_baselines::{DbhPartitioner, SnePartitioner};
use tps_core::job::JobSpec;
use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::sink::VecSink;
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;
use tps_procsim::cost::simulate_pagerank;
use tps_procsim::{ClusterCostModel, DistributedGraph, PageRankConfig};

fn main() {
    let graph = Dataset::Ok.generate_scaled(0.25);
    let k = 32u32;
    let pr = PageRankConfig {
        iterations: 100,
        ..Default::default()
    };
    let cost = ClusterCostModel::spark_like();
    println!(
        "graph: {} vertices, {} edges; k = {k}; PageRank x {}\n",
        graph.num_vertices(),
        graph.num_edges(),
        pr.iterations
    );

    let mut options: Vec<Box<dyn Partitioner>> = vec![
        Box::new(DbhPartitioner::default()), // fastest partitioner
        Box::new(SnePartitioner::default()), // best streaming quality
        Box::new(TwoPhasePartitioner::new(TwoPhaseConfig::default())),
    ];
    println!(
        "{:<8} {:>6} {:>16} {:>15} {:>12}",
        "option", "rf", "partition (s)", "pagerank (s)", "total (s)"
    );
    for p in options.iter_mut() {
        let mut assignments = VecSink::new();
        let mut stream = graph.stream();
        let out = JobSpec::stream(&mut stream)
            .partitioner(p.as_mut())
            .params(&PartitionParams::new(k))
            .num_vertices(graph.num_vertices())
            .extra_sink(&mut assignments)
            .run()
            .expect("partitioning failed");
        let layout =
            DistributedGraph::from_assignments(assignments.assignments(), graph.num_vertices(), k);
        let sim = simulate_pagerank(&layout, &pr, &cost).expect("no spill at this scale");
        // The simulator *executes* PageRank; peek at the top-ranked vertex to
        // prove there are real results behind the timing.
        let (top_v, top_r) = sim
            .result
            .ranks
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(v, r)| (v, *r))
            .unwrap();
        let part_s = out.seconds();
        let pr_s = sim.simulated_time.as_secs_f64();
        println!(
            "{:<8} {:>6.2} {:>16.2} {:>15.2} {:>12.2}   (top vertex {top_v}: {top_r:.1})",
            out.name,
            out.metrics.replication_factor,
            part_s,
            pr_s,
            part_s + pr_s
        );
    }
}
