//! GNN-preprocessing scenario: partitioning for many workers (high k).
//!
//! The paper's motivation (§I): GNN training distributes the graph over a
//! growing number of compute nodes, and at high k classic stateful streaming
//! partitioning becomes so slow that systems fall back to hashing (e.g. the
//! P3 framework) — giving up locality. This example plays that scenario:
//! partition a friendster-like graph for 256 workers with the three options
//! a practitioner has, and compare both the cost of partitioning and the
//! locality (replication factor) the GNN job will pay for every epoch.
//!
//! Run: `cargo run --release -p tps-examples --bin gnn_pipeline`

use tps_baselines::{DbhPartitioner, HdrfPartitioner};
use tps_core::job::JobSpec;
use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;

fn main() {
    let graph = Dataset::Fr.generate_scaled(0.25);
    let workers = 256u32;
    println!(
        "scenario: prepare {} edges for GNN training on {workers} workers\n",
        graph.num_edges()
    );

    let mut options: Vec<Box<dyn Partitioner>> = vec![
        Box::new(DbhPartitioner::default()),  // what P3-style systems do
        Box::new(HdrfPartitioner::default()), // classic stateful streaming
        Box::new(TwoPhasePartitioner::new(TwoPhaseConfig::default())),
    ];

    println!(
        "{:<8} {:>14} {:>22} {:>26}",
        "option", "prep time", "replication factor", "sync volume per epoch"
    );
    for p in options.iter_mut() {
        let mut stream = graph.stream();
        let out = JobSpec::stream(&mut stream)
            .partitioner(p.as_mut())
            .params(&PartitionParams::new(workers))
            .num_vertices(graph.num_vertices())
            .run()
            .expect("partitioning failed");
        // Every replica beyond the first must exchange activations/gradients
        // each epoch — the GNN analogue of the PageRank mirror traffic.
        let mirrors = out.metrics.total_replicas - out.metrics.covered_vertices;
        println!(
            "{:<8} {:>12.2} s {:>22.3} {:>20} msgs",
            out.name,
            out.seconds(),
            out.metrics.replication_factor,
            mirrors * 2
        );
    }
    println!(
        "\n2PS-L keeps the preparation cost in hashing territory while \
         cutting the per-epoch synchronisation that dominates GNN training."
    );
}
