//! Dynamic-graph scenario: keep a partitioning live under edge churn.
//!
//! The paper (§VI, pointing at Fan et al.) suggests transforming 2PS-L into
//! an incremental algorithm. `tps_core::incremental` does exactly that:
//! bootstrap once, then absorb insertions/deletions in O(1) per edge, with a
//! staleness signal for scheduling re-bootstraps.
//!
//! Run: `cargo run --release -p tps-examples --bin dynamic_graph`

use tps_core::incremental::IncrementalTwoPhase;
use tps_core::two_phase::TwoPhaseConfig;
use tps_graph::datasets::Dataset;
use tps_graph::stream::InMemoryGraph;

fn main() {
    // Day 0: bootstrap on 80 % of the edges.
    let graph = Dataset::It.generate_scaled(0.25);
    let all = graph.edges();
    let cut = all.len() * 8 / 10;
    let initial = InMemoryGraph::with_num_vertices(all[..cut].to_vec(), graph.num_vertices());
    let k = 32;
    let start = std::time::Instant::now();
    let mut live = IncrementalTwoPhase::bootstrap(
        &mut initial.stream(),
        k,
        1.05,
        1.3, // 30 % head-room for growth
        TwoPhaseConfig::default(),
    )
    .expect("bootstrap failed");
    println!(
        "bootstrap: {} edges in {:.1?}, rf = {:.3}",
        live.num_edges(),
        start.elapsed(),
        live.replication_factor()
    );

    // Days 1..n: the remaining 20 % arrive as a live stream, while 5 % of
    // the old edges get retracted.
    let start = std::time::Instant::now();
    for &e in &all[cut..] {
        live.insert(e);
    }
    let inserted = all.len() - cut;
    let mut removed = 0;
    for (i, &e) in all[..cut].iter().enumerate() {
        if i % 20 == 0 {
            live.remove(e);
            removed += 1;
        }
    }
    println!(
        "churn: +{inserted} −{removed} edges in {:.1?} ({:.2} µs/op)",
        start.elapsed(),
        start.elapsed().as_secs_f64() * 1e6 / (inserted + removed) as f64
    );
    println!(
        "after churn: {} edges, rf = {:.3}, staleness = {:.2}",
        live.num_edges(),
        live.replication_factor(),
        live.staleness()
    );

    // Compare against a full recompute at the same final state.
    let final_edges: Vec<_> = {
        let mut v = all[cut..].to_vec();
        v.extend(
            all[..cut]
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 20 != 0)
                .map(|(_, &e)| e),
        );
        v
    };
    let final_graph = InMemoryGraph::with_num_vertices(final_edges, graph.num_vertices());
    let mut p = tps_core::two_phase::TwoPhasePartitioner::new(TwoPhaseConfig::default());
    let mut sink = tps_core::sink::QualitySink::new(final_graph.num_vertices(), k);
    tps_core::partitioner::Partitioner::partition(
        &mut p,
        &mut final_graph.stream(),
        &tps_core::partitioner::PartitionParams::new(k),
        &mut sink,
    )
    .unwrap();
    println!(
        "full recompute at the same state: rf = {:.3} (incremental pays {:.1} % quality for O(1) updates)",
        sink.finish().replication_factor,
        (live.replication_factor() / sink.finish().replication_factor - 1.0) * 100.0
    );
}
