//! Out-of-core storage scenario (the Table V question): what does running
//! 2PS-L from a real file on a slow device cost?
//!
//! Writes the UK stand-in to a binary edge-list file, partitions it straight
//! from the file (the true out-of-core path), then replays the same run
//! under the SSD and HDD device models to show how the `3 + passes`
//! streaming passes translate into I/O time.
//!
//! Run: `cargo run --release -p tps-examples --bin storage_budget`

use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::sink::NullSink;
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;
use tps_graph::formats::binary::{write_binary_edge_list, BinaryEdgeFile};
use tps_storage::{DeviceModel, DeviceStream};

fn main() {
    let graph = Dataset::Uk.generate_scaled(0.1);
    let dir = std::env::temp_dir().join(format!("tps-storage-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("uk.bel");
    let info = write_binary_edge_list(&path, graph.num_vertices(), graph.edges().iter().copied())
        .expect("write edge list");
    println!(
        "wrote {} ({} edges, {} bytes)\n",
        path.display(),
        info.num_edges,
        std::fs::metadata(&path).unwrap().len()
    );

    // Partition straight from the file — the real out-of-core code path.
    let mut file_stream = BinaryEdgeFile::open(&path).expect("open edge list");
    let mut partitioner = TwoPhasePartitioner::new(TwoPhaseConfig::default());
    let start = std::time::Instant::now();
    partitioner
        .partition(&mut file_stream, &PartitionParams::new(32), &mut NullSink)
        .expect("partitioning failed");
    let cpu = start.elapsed();
    println!("from file (page cache hot): {cpu:.2?} wall-clock");

    // Replay under the device models to budget cold-storage deployments.
    println!("\ndevice budgets for the same run (CPU + modelled I/O):");
    for device in [DeviceModel::ssd(), DeviceModel::hdd()] {
        let mut stream = DeviceStream::new(graph.stream(), device);
        let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
        let t = std::time::Instant::now();
        p.partition(&mut stream, &PartitionParams::new(32), &mut NullSink)
            .expect("partitioning failed");
        let cpu = t.elapsed();
        let acc = stream.account();
        println!(
            "  {:<11} {} passes, {:>6.1} MB read, I/O {:>6.2} s, total {:>6.2} s",
            device.name,
            acc.passes,
            acc.bytes as f64 / 1e6,
            acc.simulated_io.as_secs_f64(),
            cpu.as_secs_f64() + acc.simulated_io.as_secs_f64()
        );
    }
    println!(
        "\nrule of thumb from the paper: give 2PS-L >= 1 GB/s of sequential \
         read or enough RAM for the page cache."
    );
    std::fs::remove_dir_all(&dir).ok();
}
