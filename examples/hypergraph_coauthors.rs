//! Hypergraph scenario: partitioning a co-authorship network.
//!
//! Papers are hyperedges (their authors are the pins); distributing the
//! corpus across k index shards replicates authors that publish across
//! shards. The paper's future work (§VII) asks for exactly this
//! generalisation of 2PS-L — implemented here as 2PS-HL.
//!
//! Run: `cargo run --release -p tps-examples --bin hypergraph_coauthors`

use tps_hypergraph::baselines::{MinMaxGreedyPartitioner, RandomHyperPartitioner};
use tps_hypergraph::gen::{planted_hypergraph, PlantedHyperConfig};
use tps_hypergraph::{HyperPartitioner, HyperQualityTracker, TwoPhaseHyperPartitioner};

fn main() {
    // A co-authorship-like hypergraph: research groups of ~30 authors,
    // papers with 2–6 authors, 10 % cross-group collaborations.
    let cfg = PlantedHyperConfig {
        vertices: 6_000,
        hyperedges: 20_000,
        community_size: 30,
        mixing: 0.10,
        min_arity: 2,
        max_arity: 6,
    };
    let corpus = planted_hypergraph(&cfg, 42);
    let shards = 16u32;
    println!(
        "corpus: {} authors, {} papers, {} author-slots; {shards} shards\n",
        corpus.num_vertices(),
        corpus.num_hyperedges(),
        corpus.total_pins()
    );

    let mut options: Vec<Box<dyn HyperPartitioner>> = vec![
        Box::new(RandomHyperPartitioner::default()),
        Box::new(MinMaxGreedyPartitioner),
        Box::new(TwoPhaseHyperPartitioner::default()),
    ];
    println!(
        "{:<14} {:>20} {:>14} {:>10}",
        "method", "author replication", "max shard", "time"
    );
    for p in options.iter_mut() {
        let mut tracker = HyperQualityTracker::new(corpus.num_vertices(), shards);
        let mut stream = corpus.stream();
        let start = std::time::Instant::now();
        p.partition(&mut stream, shards, 1.05, &mut |h, part| {
            tracker.record(h, part)
        })
        .expect("partitioning failed");
        let elapsed = start.elapsed();
        let m = tracker.finish();
        println!(
            "{:<14} {:>20.3} {:>14} {:>9.1?}",
            p.name(),
            m.replication_factor,
            m.max_load,
            elapsed
        );
    }
    println!(
        "\nlower replication = fewer cross-shard author lookups per query; \
         2PS-HL keeps the linear-time property of 2PS-L (candidates per \
         paper <= its author count, independent of the shard count)."
    );
}
